//! Facade smoke test: every layer re-export resolves through the `kgnet`
//! root crate, and the assembled platform round-trips a tiny DBLP graph.

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::gml::config::GmlMethodKind;
use kgnet::graph::NcTask;
use kgnet::rdf::{query, RdfStore, Term};
use kgnet::{GnnConfig, KgNet, ManagerConfig};

#[test]
fn layer_reexports_resolve() {
    // kgnet::rdf
    let mut store = RdfStore::new();
    store.insert(Term::iri("http://x/s"), Term::iri("http://x/p"), Term::iri("http://x/o"));
    assert_eq!(store.len(), 1);
    let rows = query(&store, "SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
    assert_eq!(rows.len(), 1);

    // kgnet::graph
    let task = NcTask {
        target_type: "https://www.dblp.org/Publication".into(),
        label_predicate: "https://www.dblp.org/publishedIn".into(),
    };
    assert_eq!(task.target_type, "https://www.dblp.org/Publication");

    // kgnet::gml
    assert_ne!(GmlMethodKind::Gcn, GmlMethodKind::TransE);

    // kgnet::linalg
    let m = kgnet::linalg::Matrix::zeros(2, 3);
    assert_eq!(m.shape(), (2, 3));

    // kgnet::gmlaas
    let store = kgnet::gmlaas::EmbeddingStore::new(4, kgnet::gmlaas::Metric::Cosine);
    assert_eq!(store.len(), 0);
}

#[test]
fn facade_round_trips_tiny_dblp_graph() {
    // kgnet::datagen
    let (kg, _truth) = generate_dblp(&DblpConfig::tiny(13));
    let n_triples = kg.len();
    assert!(n_triples > 0, "generator must emit triples");

    let config = ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() };
    let platform = KgNet::with_graph_and_config(kg, config);

    // The loaded graph is exactly what the generator produced.
    assert_eq!(platform.data().len(), n_triples);
    let stats = platform.stats();
    assert_eq!(stats.n_triples, n_triples);

    // And it is queryable end to end through the facade.
    let rows = platform
        .sparql(
            "PREFIX dblp: <https://www.dblp.org/> \
             SELECT (COUNT(*) AS ?n) WHERE { ?p a dblp:Publication }",
        )
        .unwrap();
    let n = rows.rows[0][0].as_ref().unwrap().as_int().unwrap();
    assert!(n > 0, "tiny DBLP graph must contain publications");
}
