//! Mixed-traffic proof for the serving layer: SPARQL-ML SELECTs execute
//! against pinned MVCC snapshots end-to-end, so four concurrent reader
//! threads serve against one `SharedStore` while training jobs churn on the
//! admission-controlled queue — and every concurrent result is identical to
//! serial execution. A second scenario pins one reader's snapshot across
//! concurrent bulk DELETE+INSERT commits and asserts repeatable reads.

use std::sync::{Arc, Barrier};

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::gmlaas::TrainRequest;
use kgnet::server::{JobState, KgServer, ServerConfig};
use kgnet::{GmlMethodKind, GmlTask, GnnConfig, KgNet, LpTask, ManagerConfig, NcTask};

const PV_QUERY: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    SELECT ?title ?venue WHERE {
      ?paper a dblp:Publication .
      ?paper dblp:title ?title .
      ?paper ?NodeClassifier ?venue .
      ?NodeClassifier a kgnet:NodeClassifier .
      ?NodeClassifier kgnet:TargetNode dblp:Publication .
      ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;

const COUNT_QUERY: &str = "PREFIX dblp: <https://www.dblp.org/> \
    SELECT (COUNT(*) AS ?n) WHERE { ?p a dblp:Publication }";

const TRAIN_NC: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
      {Name: 'paper-venue',
       GML-Task:{ TaskType: kgnet:NodeClassifier,
                  TargetNode: dblp:Publication,
                  NodeLabel: dblp:publishedIn},
       Method: 'GraphSAINT'})}"#;

fn fast_config() -> ManagerConfig {
    ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() }
}

/// The queue-submitted twin of `TRAIN_NC`: same task, method, sampler and
/// hyper-parameters, so the trained model is bit-identical (the trainers are
/// deterministic under any pool size).
fn nc_request() -> TrainRequest {
    let mut req = TrainRequest::new(
        "paper-venue",
        GmlTask::NodeClassification(NcTask {
            target_type: "https://www.dblp.org/Publication".into(),
            label_predicate: "https://www.dblp.org/publishedIn".into(),
        }),
    );
    req.cfg = GnnConfig::fast_test();
    req.forced_method = Some(GmlMethodKind::GraphSaint);
    req
}

/// A background job over a *different* task kind, so its registration
/// cannot perturb which model the NC query selects mid-run.
fn lp_request(name: &str) -> TrainRequest {
    let mut req = TrainRequest::new(
        name,
        GmlTask::LinkPrediction(LpTask {
            source_type: "https://www.dblp.org/Person".into(),
            edge_predicate: "https://www.dblp.org/affiliatedWith".into(),
            dest_type: "https://www.dblp.org/Affiliation".into(),
        }),
    );
    req.cfg = GnnConfig { epochs: 10, ..GnnConfig::fast_test() };
    req.forced_method = Some(GmlMethodKind::Morse);
    req.sampler = "d2h1".into();
    req
}

#[test]
fn four_readers_serve_while_training_jobs_churn() {
    // Serial baseline on an identical graph (the generator is seeded).
    let (kg, _) = generate_dblp(&DblpConfig::tiny(41));
    let mut baseline = KgNet::with_graph_and_config(kg, fast_config());
    baseline.execute(TRAIN_NC).unwrap();
    let expected = baseline.sparql(PV_QUERY).unwrap();
    assert_eq!(expected.len(), 60);
    let expected_count = baseline.sparql(COUNT_QUERY).unwrap();

    // Concurrent server over the same graph: the NC model arrives through
    // the job queue, not through an exclusive execute().
    let (kg, _) = generate_dblp(&DblpConfig::tiny(41));
    let server =
        Arc::new(KgServer::new(kg, ServerConfig { manager: fast_config(), ..Default::default() }));
    let nc_job = server.submit_train(nc_request()).unwrap();
    let done = server.wait(nc_job).expect("job record retained");
    assert!(matches!(done.state, JobState::Done { .. }), "NC training failed: {done:?}");

    // Two more jobs churn in the background while the readers run.
    let lp_a = server.submit_train(lp_request("aff-a")).unwrap();
    let lp_b = server.submit_train(lp_request("aff-b")).unwrap();

    const READERS: usize = 4;
    const ROUNDS: usize = 8;
    let barrier = Arc::new(Barrier::new(READERS));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = server.clone();
            let barrier = barrier.clone();
            let expected = expected.clone();
            let expected_count = expected_count.clone();
            std::thread::spawn(move || {
                let mut session = server.read_session();
                barrier.wait(); // all four issue their first SELECT together
                for _ in 0..ROUNDS {
                    let rows = session.sparql(PV_QUERY).expect("ML SELECT");
                    assert_eq!(rows, expected, "concurrent result diverged from serial");
                    let count = session.sparql(COUNT_QUERY).expect("plain SELECT");
                    assert_eq!(count, expected_count);
                }
                let stats = session.cache_stats();
                assert!(stats.hits >= (ROUNDS - 1) as u64, "plan cache never hit: {stats:?}");
            })
        })
        .collect();
    for reader in readers {
        reader.join().expect("reader thread panicked");
    }

    // The background jobs complete and register their models.
    assert!(matches!(server.wait(lp_a).unwrap().state, JobState::Done { .. }));
    assert!(matches!(server.wait(lp_b).unwrap().state, JobState::Done { .. }));
    let manager = server.manager();
    let guard = manager.read();
    assert_eq!(guard.trainer().model_store().len(), 3);

    // Readers still see the stable NC answer afterwards.
    let mut session = server.read_session();
    assert_eq!(session.sparql(PV_QUERY).unwrap(), expected);
}

#[test]
fn pinned_reader_holds_repeatable_reads_across_bulk_rewrites() {
    use kgnet::rdf::term::RDF_TYPE;
    use kgnet::rdf::Term;

    const ROUNDS: usize = 4;
    const EXTRA_PER_ROUND: usize = 3;
    let pub_class = "https://www.dblp.org/Publication";

    let (kg, _) = generate_dblp(&DblpConfig::tiny(83));
    let server =
        Arc::new(KgServer::new(kg, ServerConfig { manager: fast_config(), ..Default::default() }));

    // Pin a snapshot before any write and take its full fingerprint.
    let mut session = server.read_session();
    let count_before = session.sparql(COUNT_QUERY).unwrap();
    let dump_before = session.snapshot().to_ntriples();
    let pinned_generation = session.generation();

    // Writer thread: each round bulk-DELETEs every publication typing
    // triple and re-INSERTs the same population under fresh IRIs (plus a
    // few extra), committing one new version per round.
    let barrier = Arc::new(Barrier::new(2));
    let writer = {
        let server = server.clone();
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            barrier.wait();
            for round in 0..ROUNDS {
                let mut txn = server.write_session();
                txn.with_store(|st| {
                    let t = st.lookup(&Term::iri(RDF_TYPE)).expect("rdf:type interned");
                    let c = st.lookup(&Term::iri(pub_class)).expect("class interned");
                    let doomed: Vec<(Term, Term, Term)> = st
                        .matches(None, Some(t), Some(c))
                        .into_iter()
                        .map(|(s, p, o)| {
                            (st.resolve(s).clone(), st.resolve(p).clone(), st.resolve(o).clone())
                        })
                        .collect();
                    let population = doomed.len();
                    for (s, p, o) in &doomed {
                        st.remove(s, p, o);
                    }
                    for i in 0..population + EXTRA_PER_ROUND {
                        st.insert(
                            Term::iri(format!("http://churn/{round}/{i}")),
                            Term::iri(RDF_TYPE),
                            Term::iri(pub_class),
                        );
                    }
                });
                txn.commit();
            }
        })
    };

    // While the writer churns versions, the pinned session must keep
    // answering from its frozen one.
    barrier.wait();
    for _ in 0..32 {
        assert_eq!(
            session.sparql(COUNT_QUERY).unwrap(),
            count_before,
            "pinned snapshot leaked a concurrent commit"
        );
    }
    writer.join().expect("writer thread panicked");

    // After every commit has landed: the pinned view is bit-identical to
    // what it was before the first write.
    assert_eq!(session.generation(), pinned_generation);
    assert_eq!(session.sparql(COUNT_QUERY).unwrap(), count_before);
    assert_eq!(session.snapshot().to_ntriples(), dump_before, "pinned snapshot mutated");

    // Refreshing the same session exposes the rewritten population.
    let as_int = |rows: &kgnet::rdf::QueryResult| {
        rows.rows[0][0].as_ref().unwrap().as_int().expect("count is an int")
    };
    session.refresh();
    let after = session.sparql(COUNT_QUERY).unwrap();
    assert_eq!(
        as_int(&after),
        as_int(&count_before) + (ROUNDS * EXTRA_PER_ROUND) as i64,
        "refreshed session must see all committed rounds"
    );
}

/// Deterministic regression of the queue's cancel-vs-complete race, run
/// through the `kgnet-check` scheduler *in a normal build*: the scenario
/// drives the production `QueueState::cancel` / `QueueState::finish`
/// transition logic under an instrumented mutex, first exhaustively over
/// the bounded-preemption tree, then replaying one pinned seed so the
/// exact historical schedule stays reproducible forever. A regression that
/// double-writes the terminal state or mismatches the delivery flag fails
/// here with a replayable schedule, without needing `--cfg kgnet_check`.
#[test]
fn queue_cancel_complete_race_is_exactly_once_and_seed_replayable() {
    use kgnet::server::queue::QueueState;
    use kgnet_check::sync::Mutex;
    use kgnet_check::{explore, replay_seed, Config};

    let scenario = || {
        let q = Arc::new(Mutex::new(QueueState::default()));
        {
            q.lock().register(3, "regression-job");
        }
        let worker = {
            let q = Arc::clone(&q);
            kgnet_check::thread::spawn(move || {
                q.lock().finish(3, JobState::Failed { error: "boom".into() }, 4);
            })
        };
        let delivered = q.lock().cancel(3, 4);
        worker.join().unwrap();

        let st = q.lock();
        let state = st.state_of(3).expect("job lost");
        assert!(state.is_terminal(), "job left non-terminal: {state:?}");
        assert_eq!(st.terminal_count(), 1, "terminal state written more than once");
        assert_eq!(
            delivered,
            state == JobState::Cancelled,
            "cancel delivery disagrees with the winning transition"
        );
    };

    // Exhaustive bounded exploration (the race's schedule space is small).
    let report =
        explore(&Config { max_schedules: 512, random_iters: 64, ..Config::default() }, scenario);
    assert!(report.dfs_exhausted, "bounded tree must be fully enumerated");
    assert!(report.distinct_schedules >= 4, "got {report:?}");

    // Pinned-seed replay: one exact schedule, deterministic across runs.
    replay_seed(0x6b67_0007_c0de_5eed, scenario);
}
