//! Integration contract of the vector-search subsystem through the public
//! facade: recall bounds for the approximate indexes against the exact
//! scan, binary persistence round-trips (save → mmap-load → identical
//! search results), checksum rejection of truncated/corrupt artifacts,
//! and the model-store's skip-and-report directory loading.

use kgnet::ann::{AnnError, FormatError, HnswConfig, PqConfig};
use kgnet::gmlaas::{ArtifactPayload, EmbeddingStore, Metric, ModelStore};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn filled_store(n: usize, dim: usize, metric: Metric, seed: u64) -> EmbeddingStore {
    let mut store = EmbeddingStore::new(dim, metric);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        store.add(format!("e{i}"), v).unwrap();
    }
    store
}

fn recall_at_10(store: &EmbeddingStore, dim: usize, queries: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut hit, mut total) = (0usize, 0usize);
    for _ in 0..queries {
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let exact: Vec<String> = store.search_exact(&q, 10).into_iter().map(|(k, _)| k).collect();
        let approx: Vec<String> = store.search(&q, 10, 8).into_iter().map(|(k, _)| k).collect();
        total += exact.len();
        hit += exact.iter().filter(|k| approx.contains(k)).count();
    }
    hit as f64 / total.max(1) as f64
}

fn temp_file(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("kgnet-ann-it-{}-{name}", std::process::id()))
}

mod recall_bounds {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// HNSW recall@10 vs the exact oracle stays above threshold on
        /// random stores of arbitrary size, width and metric.
        #[test]
        fn hnsw_recall_bound(
            n in 200usize..1200,
            dim_step in 1usize..5,
            metric_pick in 0usize..3,
            seed in 0u64..1000,
        ) {
            let dim = dim_step * 8;
            let metric = [Metric::L2, Metric::Cosine, Metric::Dot][metric_pick];
            let mut store = filled_store(n, dim, metric, seed);
            store.build_hnsw(&HnswConfig::default());
            let recall = recall_at_10(&store, dim, 10, seed ^ 0xABCD);
            prop_assert!(recall >= 0.85, "HNSW recall@10 = {recall} on n={n} dim={dim}");
        }

        /// PQ (with its default refine pass) recall@10 vs the exact oracle
        /// stays above threshold on random stores.
        #[test]
        fn pq_recall_bound(
            n in 200usize..1200,
            dim_step in 1usize..5,
            seed in 0u64..1000,
        ) {
            let dim = dim_step * 8;
            let mut store = filled_store(n, dim, Metric::L2, seed);
            store.build_pq(&PqConfig { ks: 64, ..Default::default() });
            let recall = recall_at_10(&store, dim, 10, seed ^ 0xBEEF);
            prop_assert!(recall >= 0.85, "PQ recall@10 = {recall} on n={n} dim={dim}");
        }
    }
}

#[test]
fn persistence_roundtrip_is_search_identical() {
    // save → mmap-load → every search result identical, for all three
    // index families and the exact scan, across metrics.
    for (metric, tag) in [(Metric::L2, "l2"), (Metric::Cosine, "cos"), (Metric::Dot, "dot")] {
        for family in 0..3usize {
            let path = temp_file(&format!("roundtrip-{tag}-{family}.ann"));
            let mut store = filled_store(700, 16, metric, 77 + family as u64);
            match family {
                0 => store.build_ivf(24, 4, 5),
                1 => store.build_hnsw(&HnswConfig::default()),
                _ => store.build_pq(&PqConfig { ks: 32, ..Default::default() }),
            }
            store.save_binary(&path).unwrap();
            let mapped = EmbeddingStore::load_binary(&path).unwrap();
            assert_eq!(mapped.len(), store.len());
            assert_eq!(mapped.index_kind(), store.index_kind());
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..15 {
                let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                assert_eq!(store.search(&q, 10, 6), mapped.search(&q, 10, 6), "family {family}");
                assert_eq!(store.search_exact(&q, 10), mapped.search_exact(&q, 10));
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn truncated_artifact_is_rejected() {
    let path = temp_file("truncated.ann");
    let mut store = filled_store(300, 8, Metric::L2, 3);
    store.build_hnsw(&HnswConfig::default());
    store.save_binary(&path).unwrap();
    let full = std::fs::read(&path).unwrap();
    for cut in [full.len() - 1, full.len() - 9, full.len() / 2, 40, 0] {
        std::fs::write(&path, &full[..cut]).unwrap();
        assert!(
            EmbeddingStore::load_binary(&path).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_artifact_is_rejected_by_checksum() {
    let path = temp_file("corrupt.ann");
    let mut store = filled_store(300, 8, Metric::L2, 4);
    store.build_pq(&PqConfig { ks: 16, ..Default::default() });
    store.save_binary(&path).unwrap();
    let clean = std::fs::read(&path).unwrap();
    // Flip one byte at several positions across the file body.
    for at in [30, clean.len() / 3, clean.len() / 2, clean.len() - 20] {
        let mut bytes = clean.clone();
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match EmbeddingStore::load_binary(&path) {
            Err(AnnError::Format(FormatError::Checksum { .. }))
            | Err(AnnError::Format(FormatError::Malformed(_)))
            | Err(AnnError::Format(FormatError::Version(_))) => {}
            other => panic!("corruption at byte {at} was accepted: {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn model_store_skips_and_reports_bad_files() {
    let dir = temp_file("modeldir");
    let _ = std::fs::remove_dir_all(&dir);

    // A healthy similarity model persisted through the binary path…
    let store = ModelStore::new();
    let mut emb = filled_store(80, 8, Metric::Cosine, 9);
    emb.build_hnsw(&HnswConfig::default());
    let artifact = sample_similarity_artifact("http://kgnet/sim-ok", emb);
    store.insert(artifact);
    store.save_dir(&dir).unwrap();
    // …plus one unparsable JSON neighbour.
    std::fs::write(dir.join("junk.json"), "{ definitely not json").unwrap();

    let restored = ModelStore::new();
    let report = restored.load_dir(&dir).unwrap();
    assert_eq!(report.loaded, 1);
    assert_eq!(report.skipped.len(), 1);
    assert!(report.skipped[0].0.ends_with("junk.json"));
    let m = restored.get("http://kgnet/sim-ok").unwrap();
    let ArtifactPayload::NodeSimilarity { store: emb } = &m.payload else {
        panic!("payload kind changed")
    };
    assert_eq!(emb.index_kind(), Some("hnsw"));
    assert_eq!(emb.len(), 80);
    let q = emb.get("e12").unwrap().to_vec();
    assert_eq!(emb.search(&q, 3, 4)[0].0, "e12");
    let _ = std::fs::remove_dir_all(&dir);
}

fn sample_similarity_artifact(uri: &str, emb: EmbeddingStore) -> kgnet::gmlaas::ModelArtifact {
    use kgnet::gml::config::{GmlMethodKind, TrainReport};
    kgnet::gmlaas::ModelArtifact {
        uri: uri.to_owned(),
        task_kind: kgnet::gmlaas::TaskKind::NodeSimilarity,
        target_type: "http://x/Paper".into(),
        label_predicate: String::new(),
        destination_type: None,
        method: GmlMethodKind::TransE,
        report: TrainReport {
            method: GmlMethodKind::TransE,
            train_time_s: 1.0,
            peak_mem_bytes: 1024,
            test_metric: 0.9,
            valid_metric: 0.88,
            mrr: 0.5,
            loss_curve: vec![1.0, 0.4],
            n_nodes: 80,
            n_edges: 160,
            inference_time_ms: 0.2,
        },
        sampler: "d1h1".into(),
        cardinality: 80,
        trained_generation: 0,
        payload: ArtifactPayload::NodeSimilarity { store: emb },
    }
}

#[test]
fn dimension_mismatch_surfaces_through_facade() {
    let mut store = EmbeddingStore::new(8, Metric::L2);
    store.add("ok", vec![0.0; 8]).unwrap();
    let err = store.add("bad", vec![0.0; 5]).unwrap_err();
    assert!(matches!(err, AnnError::DimensionMismatch { expected: 8, got: 5 }));
    assert_eq!(store.len(), 1);
}
