//! Cross-crate integration: one SPARQL-ML query with *two* user-defined
//! predicates (a node classifier and a link predictor), the workload shape
//! §III.C says a SPARQL-ML benchmark must cover. The optimizer selects one
//! model per predicate and the executor joins both inferences.

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::{GnnConfig, KgNet, ManagerConfig, MlOutcome};

fn trained_platform() -> KgNet {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(301));
    let config = ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() };
    let mut platform = KgNet::with_graph_and_config(kg, config);
    platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'pv', GML-Task:{ TaskType: kgnet:NodeClassifier,
                    TargetNode: dblp:Publication, NodeLabel: dblp:publishedIn},
                  Method: 'GCN'})}"#,
        )
        .expect("NC training");
    platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'aff', GML-Task:{ TaskType: kgnet:LinkPredictor,
                    SourceNode: dblp:Person, DestinationNode: dblp:Affiliation,
                    TargetEdge: dblp:affiliatedWith},
                  Method: 'MorsE', Sampler: 'd2h1', Hyperparams: {Epochs: 8}})}"#,
        )
        .expect("LP training");
    platform
}

const TWO_PRED: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    SELECT ?paper ?venue ?author ?affiliation WHERE {
      ?paper a dblp:Publication .
      ?paper dblp:authoredBy ?author .
      ?paper ?NC ?venue .
      ?NC a kgnet:NodeClassifier .
      ?NC kgnet:TargetNode dblp:Publication .
      ?NC kgnet:NodeLabel dblp:publishedIn .
      ?author ?LP ?affiliation .
      ?LP a kgnet:LinkPredictor .
      ?LP kgnet:SourceNode dblp:Person .
      ?LP kgnet:DestinationNode dblp:Affiliation .
      ?LP kgnet:TopK-Links 2 . }"#;

#[test]
fn two_predicates_in_one_query() {
    let mut platform = trained_platform();
    platform.reset_inference_stats();

    // The base data join: papers x their authors.
    let base = platform
        .sparql(
            "PREFIX dblp: <https://www.dblp.org/>
             SELECT ?paper ?author WHERE { ?paper a dblp:Publication . ?paper dblp:authoredBy ?author }",
        )
        .unwrap();

    let MlOutcome::Rows(rows) = platform.execute(TWO_PRED).unwrap() else { panic!("rows") };
    // Every (paper, author) pair expands into top-2 affiliations, with one
    // venue per paper.
    assert_eq!(rows.len(), base.len() * 2, "top-2 expansion of the base join");
    assert_eq!(rows.vars, vec!["paper", "venue", "author", "affiliation"]);
    for row in &rows.rows {
        assert!(row[1].as_ref().unwrap().as_iri().unwrap().contains("venue/"));
        assert!(row[3].as_ref().unwrap().as_iri().unwrap().contains("org/aff"));
    }
    // Both predicates served by dictionary-style plans: exactly 2 calls.
    assert_eq!(platform.inference_calls(), 2);
}

#[test]
fn explain_reports_both_steps() {
    let platform = trained_platform();
    let rewritten = platform.explain(TWO_PRED).unwrap();
    assert_eq!(rewritten.steps.len(), 2);
    let vars: Vec<&str> = rewritten.steps.iter().map(|s| s.ud.var.as_str()).collect();
    assert!(vars.contains(&"NC") && vars.contains(&"LP"));
}

#[test]
fn inference_time_bound_can_make_selection_infeasible() {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(303));
    let config = ManagerConfig {
        default_cfg: GnnConfig::fast_test(),
        // Impossible bound: no model can answer in 0 ms.
        max_inference_ms: Some(0.0),
        ..Default::default()
    };
    let mut platform = KgNet::with_graph_and_config(kg, config);
    platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'pv', GML-Task:{ TaskType: kgnet:NodeClassifier,
                    TargetNode: dblp:Publication, NodeLabel: dblp:publishedIn},
                  Method: 'GCN'})}"#,
        )
        .expect("training");
    let err = platform.execute(
        r#"PREFIX dblp: <https://www.dblp.org/>
           PREFIX kgnet: <https://www.kgnet.com/>
           SELECT ?p ?v WHERE {
             ?p a dblp:Publication . ?p ?NC ?v .
             ?NC a kgnet:NodeClassifier .
             ?NC kgnet:TargetNode dblp:Publication .
             ?NC kgnet:NodeLabel dblp:publishedIn . }"#,
    );
    assert!(err.is_err(), "0ms inference bound must be infeasible");
}
