//! Cross-crate integration: the full KGNet lifecycle through the facade —
//! generate KG, train via SPARQL-ML, inspect KGMeta, query with user-defined
//! predicates, re-train a second model, verify optimizer selection, delete.

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::{GnnConfig, KgNet, ManagerConfig, MlOutcome};

fn platform(seed: u64) -> KgNet {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(seed));
    let config = ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() };
    KgNet::with_graph_and_config(kg, config)
}

fn train(platform: &mut KgNet, name: &str, method: &str) -> kgnet::TrainedSummary {
    let q = format!(
        r#"PREFIX dblp: <https://www.dblp.org/>
           PREFIX kgnet: <https://www.kgnet.com/>
           INSERT INTO <kgnet> {{ ?s ?p ?o }} WHERE {{ SELECT * FROM kgnet.TrainGML(
             {{Name: '{name}',
              GML-Task:{{ TaskType: kgnet:NodeClassifier,
                         TargetNode: dblp:Publication,
                         NodeLabel: dblp:publishedIn}},
              Method: '{method}'}})}}"#
    );
    match platform.execute(&q).expect("training") {
        MlOutcome::Trained(s) => s,
        other => panic!("unexpected {other:?}"),
    }
}

const PV: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    SELECT ?paper ?venue WHERE {
      ?paper a dblp:Publication .
      ?paper ?NC ?venue .
      ?NC a kgnet:NodeClassifier .
      ?NC kgnet:TargetNode dblp:Publication .
      ?NC kgnet:NodeLabel dblp:publishedIn . }"#;

#[test]
fn two_models_and_optimizer_picks_more_accurate() {
    let mut p = platform(71);
    let m1 = train(&mut p, "first", "GCN");
    let m2 = train(&mut p, "second", "GraphSAINT");
    // KGMeta holds both.
    let meta = p
        .sparql_kgmeta(
            "PREFIX kgnet: <https://www.kgnet.com/>
             SELECT (COUNT(?m) AS ?n) WHERE { ?m a kgnet:NodeClassifier }",
        )
        .unwrap();
    assert_eq!(meta.rows[0][0].as_ref().unwrap().as_int(), Some(2));

    // The rewriter must choose the more accurate model.
    let expected = if m1.accuracy >= m2.accuracy { &m1.model_uri } else { &m2.model_uri };
    let rewritten = p.explain(PV).unwrap();
    assert_eq!(&rewritten.steps[0].model_uri, expected);
}

#[test]
fn sampled_training_graph_is_smaller_and_query_works() {
    let mut p = platform(73);
    let summary = train(&mut p, "pv", "GraphSAINT");
    assert!(summary.kg_prime_triples < p.stats().n_triples);
    let MlOutcome::Rows(rows) = p.execute(PV).unwrap() else { panic!("rows") };
    assert_eq!(rows.len(), 60);
    // Every prediction is one of the KG's venues.
    for row in &rows.rows {
        let venue = row[1].as_ref().unwrap().as_iri().unwrap().to_owned();
        let check = p
            .sparql(&format!(
                "SELECT (COUNT(*) AS ?n) WHERE {{ <{venue}> a <https://www.dblp.org/Venue> }}"
            ))
            .unwrap();
        assert_eq!(check.rows[0][0].as_ref().unwrap().as_int(), Some(1), "{venue} not a venue");
    }
}

#[test]
fn delete_then_retrain_works() {
    let mut p = platform(79);
    train(&mut p, "gen1", "GCN");
    let out = p
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               DELETE { ?m ?p ?o } WHERE {
                 ?m a kgnet:NodeClassifier .
                 ?m kgnet:TargetNode dblp:Publication . }"#,
        )
        .unwrap();
    assert!(matches!(out, MlOutcome::DeletedModels(u) if u.len() == 1));
    // Retraining re-registers the task.
    train(&mut p, "gen2", "GCN");
    let MlOutcome::Rows(rows) = p.execute(PV).unwrap() else { panic!("rows") };
    assert_eq!(rows.len(), 60);
}

#[test]
fn training_accuracy_is_well_above_chance() {
    let mut p = platform(83);
    // The tiny graph has only 60 papers; give the trainer enough epochs to
    // converge so the margin over chance is meaningful.
    let q = r#"PREFIX dblp: <https://www.dblp.org/>
        PREFIX kgnet: <https://www.kgnet.com/>
        INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
          {Name: 'acc',
           GML-Task:{ TaskType: kgnet:NodeClassifier,
                      TargetNode: dblp:Publication,
                      NodeLabel: dblp:publishedIn},
           Method: 'GraphSAINT',
           Hyperparams: {Epochs: 60}})}"#;
    let MlOutcome::Trained(s) = p.execute(q).expect("training") else {
        panic!("expected trained model")
    };
    // 5 venues in the tiny config: chance = 20%.
    assert!(s.accuracy > 0.4, "accuracy {} too close to chance", s.accuracy);
}

#[test]
fn budget_violation_surfaces_as_error() {
    let mut p = platform(89);
    let err = p.execute(
        r#"PREFIX dblp: <https://www.dblp.org/>
           PREFIX kgnet: <https://www.kgnet.com/>
           INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
             {Name: 'impossible',
              GML-Task:{ TaskType: kgnet:NodeClassifier,
                         TargetNode: dblp:Publication,
                         NodeLabel: dblp:publishedIn},
              Task Budget:{ MaxMemory:1KB }})}"#,
    );
    assert!(err.is_err(), "1KB budget should be infeasible");
}
