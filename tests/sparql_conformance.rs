//! Cross-crate integration: SPARQL engine behaviour on generated KGs, and
//! agreement between store-level scans and SPARQL answers.

use kgnet::datagen::{generate_dblp, generate_yago, DblpConfig, YagoConfig};
use kgnet::rdf::{query, RdfStore, Term};

fn dblp() -> RdfStore {
    generate_dblp(&DblpConfig::tiny(201)).0
}

#[test]
fn counts_agree_with_store_scans() {
    let kg = dblp();
    let pred = kg.lookup(&Term::iri("https://www.dblp.org/authoredBy")).unwrap();
    let scan_count = kg.count(None, Some(pred), None);
    let rows = query(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT (COUNT(*) AS ?n) WHERE { ?p dblp:authoredBy ?a }",
    )
    .unwrap();
    assert_eq!(rows.rows[0][0].as_ref().unwrap().as_int(), Some(scan_count as i64));
}

#[test]
fn join_filter_order_limit_pipeline() {
    let kg = dblp();
    let rows = query(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT ?p ?y WHERE {
           ?p a dblp:Publication .
           ?p dblp:yearOfPublication ?y .
           FILTER(?y >= 2000 && ?y < 2010)
         } ORDER BY ?y LIMIT 5",
    )
    .unwrap();
    assert!(rows.len() <= 5);
    let mut last = i64::MIN;
    for row in &rows.rows {
        let y = row[1].as_ref().unwrap().as_int().unwrap();
        assert!((2000..2010).contains(&y));
        assert!(y >= last);
        last = y;
    }
}

#[test]
fn optional_preserves_unmatched_subjects() {
    let kg = dblp();
    let all = query(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT ?a WHERE { ?a a dblp:Person }",
    )
    .unwrap();
    let with_opt = query(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT DISTINCT ?a ?c WHERE {
           ?a a dblp:Person .
           OPTIONAL { ?a dblp:collaboratesWith ?c } }",
    )
    .unwrap();
    // Every person appears at least once even without collaborators.
    use std::collections::HashSet;
    let people: HashSet<String> =
        all.rows.iter().map(|r| r[0].as_ref().unwrap().to_string()).collect();
    let with_people: HashSet<String> =
        with_opt.rows.iter().map(|r| r[0].as_ref().unwrap().to_string()).collect();
    assert_eq!(people, with_people);
}

#[test]
fn yago_structure_is_queryable() {
    let (kg, truth) = generate_yago(&YagoConfig::tiny(203));
    let rows = query(
        &kg,
        "PREFIX y: <http://yago-knowledge.org/resource/>
         SELECT ?place ?country WHERE {
           ?place a y:Place . ?place y:locatedInCountry ?country } ",
    )
    .unwrap();
    assert_eq!(rows.len(), truth.place_country.len());
}

#[test]
fn updates_roundtrip_through_execute() {
    let mut kg = dblp();
    let before = kg.len();
    kgnet::rdf::execute(&mut kg, "INSERT DATA { <http://x/new> <http://x/p> <http://x/other> }")
        .unwrap();
    assert_eq!(kg.len(), before + 1);
    kgnet::rdf::execute(&mut kg, "DELETE WHERE { <http://x/new> ?p ?o }").unwrap();
    assert_eq!(kg.len(), before);
}
