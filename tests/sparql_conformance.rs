//! Cross-crate integration: SPARQL engine behaviour on generated KGs, and
//! agreement between store-level scans and SPARQL answers.

use kgnet::datagen::{generate_dblp, generate_yago, DblpConfig, YagoConfig};
use kgnet::rdf::{query, RdfStore, Term};

fn dblp() -> RdfStore {
    generate_dblp(&DblpConfig::tiny(201)).0
}

#[test]
fn counts_agree_with_store_scans() {
    let kg = dblp();
    let pred = kg.lookup(&Term::iri("https://www.dblp.org/authoredBy")).unwrap();
    let scan_count = kg.count(None, Some(pred), None);
    let rows = query(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT (COUNT(*) AS ?n) WHERE { ?p dblp:authoredBy ?a }",
    )
    .unwrap();
    assert_eq!(rows.rows[0][0].as_ref().unwrap().as_int(), Some(scan_count as i64));
}

#[test]
fn join_filter_order_limit_pipeline() {
    let kg = dblp();
    let rows = query(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT ?p ?y WHERE {
           ?p a dblp:Publication .
           ?p dblp:yearOfPublication ?y .
           FILTER(?y >= 2000 && ?y < 2010)
         } ORDER BY ?y LIMIT 5",
    )
    .unwrap();
    assert!(rows.len() <= 5);
    let mut last = i64::MIN;
    for row in &rows.rows {
        let y = row[1].as_ref().unwrap().as_int().unwrap();
        assert!((2000..2010).contains(&y));
        assert!(y >= last);
        last = y;
    }
}

#[test]
fn optional_preserves_unmatched_subjects() {
    let kg = dblp();
    let all = query(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT ?a WHERE { ?a a dblp:Person }",
    )
    .unwrap();
    let with_opt = query(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT DISTINCT ?a ?c WHERE {
           ?a a dblp:Person .
           OPTIONAL { ?a dblp:collaboratesWith ?c } }",
    )
    .unwrap();
    // Every person appears at least once even without collaborators.
    use std::collections::HashSet;
    let people: HashSet<String> =
        all.rows.iter().map(|r| r[0].as_ref().unwrap().to_string()).collect();
    let with_people: HashSet<String> =
        with_opt.rows.iter().map(|r| r[0].as_ref().unwrap().to_string()).collect();
    assert_eq!(people, with_people);
}

#[test]
fn yago_structure_is_queryable() {
    let (kg, truth) = generate_yago(&YagoConfig::tiny(203));
    let rows = query(
        &kg,
        "PREFIX y: <http://yago-knowledge.org/resource/>
         SELECT ?place ?country WHERE {
           ?place a y:Place . ?place y:locatedInCountry ?country } ",
    )
    .unwrap();
    assert_eq!(rows.len(), truth.place_country.len());
}

// ---------------------------------------------------------------------------
// Regression tests for the SPARQL-semantics fixes
// ---------------------------------------------------------------------------

fn tiny_store(data: &str) -> RdfStore {
    let mut st = RdfStore::new();
    kgnet::rdf::execute(&mut st, &format!("PREFIX x: <http://x/> INSERT DATA {{ {data} }}"))
        .unwrap();
    st
}

/// Run one query on both the streaming and the materialised evaluator,
/// asserting they agree exactly before returning the result.
fn query_both(st: &RdfStore, text: &str) -> kgnet::rdf::QueryResult {
    let q = kgnet::rdf::sparql::parse_select(text).unwrap();
    let streaming = kgnet::rdf::sparql::evaluate_select(st, &q).unwrap();
    let materialised = kgnet::rdf::sparql::evaluate_select_materialised(st, &q).unwrap();
    assert_eq!(streaming, materialised, "executors disagree on {text}");
    streaming
}

#[test]
fn effective_boolean_value_per_spec() {
    let mut st = RdfStore::new();
    kgnet::rdf::execute(
        &mut st,
        r#"PREFIX x: <http://x/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
           INSERT DATA {
             x:empty x:v "" . x:str x:v "yes" .
             x:false x:v "false"^^xsd:boolean . x:true x:v "true"^^xsd:boolean .
             x:zero x:v 0 . x:three x:v 3 .
           }"#,
    )
    .unwrap();
    let r = query_both(&st, "PREFIX x: <http://x/> SELECT ?s WHERE { ?s x:v ?o . FILTER(?o) }");
    let mut hits: Vec<String> = r.rows.iter().map(|w| w[0].as_ref().unwrap().to_string()).collect();
    hits.sort();
    // Empty strings, xsd:boolean "false" and numeric zero are all falsy.
    assert_eq!(hits, vec!["<http://x/str>", "<http://x/three>", "<http://x/true>"]);
}

#[test]
fn inequality_across_term_kinds_keeps_rows() {
    let st = tiny_store(r#"x:a x:p x:b . x:a x:p "lit" . x:a x:p 7"#);
    // `?o != x:b` must keep the literal and the integer.
    let r =
        query_both(&st, "PREFIX x: <http://x/> SELECT ?o WHERE { x:a x:p ?o . FILTER(?o != x:b) }");
    assert_eq!(r.len(), 2);
    assert!(r.rows.iter().all(|row| !row[0].as_ref().unwrap().is_iri()));
}

#[test]
fn optional_subselect_binds_instead_of_dropping() {
    let st = tiny_store(
        "x:p1 a x:Pub . x:p2 a x:Pub . x:p3 a x:Pub . x:p1 x:cites x:p2 . x:p2 x:cites x:p3",
    );
    let r = query_both(
        &st,
        "PREFIX x: <http://x/> SELECT ?p ?q WHERE {
           ?p a x:Pub . OPTIONAL { { SELECT ?p ?q WHERE { ?p x:cites ?q } } } } ORDER BY ?p",
    );
    assert_eq!(r.len(), 3);
    assert_eq!(r.rows[0][1].as_ref().unwrap().as_iri(), Some("http://x/p2"));
    assert_eq!(r.rows[1][1].as_ref().unwrap().as_iri(), Some("http://x/p3"));
    assert!(r.rows[2][1].is_none(), "p3 cites nothing and must survive unbound");
}

#[test]
fn order_by_on_unprojected_variable_sorts() {
    let st = tiny_store("x:a x:year 2020 . x:b x:year 2023 . x:c x:year 2021");
    let r =
        query_both(&st, "PREFIX x: <http://x/> SELECT ?s WHERE { ?s x:year ?y } ORDER BY DESC(?y)");
    let order: Vec<&str> =
        r.rows.iter().map(|w| w[0].as_ref().unwrap().as_iri().unwrap()).collect();
    assert_eq!(order, vec!["http://x/b", "http://x/c", "http://x/a"]);
}

#[test]
fn limit_short_circuits_on_generated_dblp() {
    let kg = dblp();
    let q = "PREFIX dblp: <https://www.dblp.org/>
             SELECT ?p ?a WHERE { ?p a dblp:Publication . ?p dblp:authoredBy ?a } LIMIT 5";
    let (rows, stats) = kgnet::rdf::query_with_stats(&kg, q).unwrap();
    assert_eq!(rows.len(), 5);
    let (_, full) = kgnet::rdf::query_with_stats(
        &kg,
        "PREFIX dblp: <https://www.dblp.org/>
         SELECT ?p ?a WHERE { ?p a dblp:Publication . ?p dblp:authoredBy ?a }",
    )
    .unwrap();
    assert!(
        stats.triples_scanned * 10 < full.triples_scanned,
        "LIMIT 5 scanned {} triples, unbounded scan visited {}",
        stats.triples_scanned,
        full.triples_scanned
    );
}

// ---------------------------------------------------------------------------
// Streaming vs materialised evaluator equivalence (property test)
// ---------------------------------------------------------------------------

mod evaluator_equivalence {
    use kgnet::rdf::sparql::ast::{
        Expr, GroupPattern, Order, Projection, ProjectionItem, SelectQuery, TermPattern,
        TriplePattern,
    };
    use kgnet::rdf::sparql::{evaluate_select, evaluate_select_materialised};
    use kgnet::rdf::{RdfStore, Term};
    use proptest::prelude::*;
    use proptest::strategy::Just;

    const VARS: [&str; 4] = ["a", "b", "c", "d"];

    fn node(i: usize) -> Term {
        Term::iri(format!("http://x/n{i}"))
    }

    fn pred(i: usize) -> Term {
        Term::iri(format!("http://x/p{i}"))
    }

    /// Object values: graph nodes (for joins) or small integers (for
    /// filters and EBV edge cases).
    fn arb_object() -> impl Strategy<Value = Term> {
        prop_oneof![(0..6usize).prop_map(node), (0..4i64).prop_map(Term::int)]
    }

    fn arb_store() -> impl Strategy<Value = RdfStore> {
        proptest::collection::vec((0..6usize, 0..4usize, arb_object()), 1..40).prop_map(|triples| {
            let mut st = RdfStore::new();
            for (s, p, o) in triples {
                st.insert(node(s), pred(p), o);
            }
            st
        })
    }

    fn arb_term_pattern() -> impl Strategy<Value = TermPattern> {
        prop_oneof![
            (0..4usize).prop_map(|v| TermPattern::Var(VARS[v].to_owned())),
            (0..6usize).prop_map(|i| TermPattern::Ground(node(i))),
        ]
    }

    fn arb_triple() -> impl Strategy<Value = TriplePattern> {
        (
            arb_term_pattern(),
            // Mostly ground predicates, occasionally a variable.
            prop_oneof![
                (0..4usize).prop_map(|i| TermPattern::Ground(pred(i))),
                Just(TermPattern::Var("p".to_owned())),
            ],
            prop_oneof![
                arb_term_pattern(),
                (0..4i64).prop_map(|v| TermPattern::Ground(Term::int(v)))
            ],
        )
            .prop_map(|(s, p, o)| TriplePattern::new(s, p, o))
    }

    fn arb_filter() -> impl Strategy<Value = Expr> {
        let var = |v: usize| Box::new(Expr::Var(VARS[v].to_owned()));
        prop_oneof![
            (0..4usize, 0..4i64)
                .prop_map(move |(v, n)| Expr::Gt(var(v), Box::new(Expr::Const(Term::int(n))))),
            (0..4usize, 0..4usize).prop_map(move |(v, w)| Expr::Ne(var(v), var(w))),
            (0..4usize, 0..6usize)
                .prop_map(move |(v, n)| Expr::Eq(var(v), Box::new(Expr::Const(node(n))))),
            // Bare variable: exercises effective-boolean-value agreement.
            (0..4usize).prop_map(move |v| *var(v)),
            (0..4usize).prop_map(|v| Expr::Bound(VARS[v].to_owned())),
        ]
    }

    fn arb_query() -> impl Strategy<Value = SelectQuery> {
        let pattern = (
            proptest::collection::vec(arb_triple(), 1..=3),
            proptest::collection::vec(arb_filter(), 0..=2),
            proptest::option::of(arb_triple()),
            proptest::option::of(proptest::collection::vec(arb_triple(), 1..=2)),
        )
            .prop_map(|(triples, filters, optional, subselect)| {
                let optionals = optional
                    .map(|t| GroupPattern { triples: vec![t], ..Default::default() })
                    .into_iter()
                    .collect();
                let subselects = subselect
                    .map(|triples| {
                        let vars = GroupPattern { triples: triples.clone(), ..Default::default() }
                            .bindable_vars();
                        SelectQuery {
                            distinct: false,
                            projection: Projection::Items(
                                vars.into_iter().map(ProjectionItem::Var).collect(),
                            ),
                            pattern: GroupPattern { triples, ..Default::default() },
                            order_by: vec![],
                            limit: None,
                            offset: None,
                        }
                    })
                    .into_iter()
                    .collect();
                GroupPattern { triples, filters, optionals, subselects }
            });
        (
            pattern,
            any::<bool>(),
            proptest::option::of(0..4usize),
            proptest::option::of((0..4usize, any::<bool>())),
            (proptest::option::of(0..6usize), proptest::option::of(0..3usize)),
        )
            .prop_map(|(pattern, distinct, proj, order, (limit, offset))| SelectQuery {
                distinct,
                projection: match proj {
                    // Project one variable, or everything.
                    Some(v) => Projection::Items(vec![ProjectionItem::Var(VARS[v].to_owned())]),
                    None => Projection::All,
                },
                pattern,
                order_by: order
                    .map(|(v, desc)| {
                        (VARS[v].to_owned(), if desc { Order::Desc } else { Order::Asc })
                    })
                    .into_iter()
                    .collect(),
                limit,
                offset,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// The streaming pipeline and the materialised reference executor
        /// run the same plan and must produce identical results — same rows,
        /// same order — across BGP joins, FILTER, OPTIONAL, sub-SELECT,
        /// DISTINCT, ORDER BY, LIMIT and OFFSET.
        #[test]
        fn streaming_matches_materialised(store in arb_store(), query in arb_query()) {
            let streaming = evaluate_select(&store, &query);
            let materialised = evaluate_select_materialised(&store, &query);
            match (streaming, materialised) {
                (Ok(s), Ok(m)) => {
                    prop_assert_eq!(s.vars, m.vars);
                    prop_assert_eq!(s.rows, m.rows);
                }
                (s, m) => prop_assert!(false, "evaluator outcomes diverge: {s:?} vs {m:?}"),
            }
        }
    }
}

#[test]
fn updates_roundtrip_through_execute() {
    let mut kg = dblp();
    let before = kg.len();
    kgnet::rdf::execute(&mut kg, "INSERT DATA { <http://x/new> <http://x/p> <http://x/other> }")
        .unwrap();
    assert_eq!(kg.len(), before + 1);
    kgnet::rdf::execute(&mut kg, "DELETE WHERE { <http://x/new> ?p ?o }").unwrap();
    assert_eq!(kg.len(), before);
}
