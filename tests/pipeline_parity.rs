//! Cross-crate integration: the core experimental claim at test scale —
//! training on the meta-sampled KG' must not lose accuracy and must not
//! cost more time or memory than the full KG, for every NC method.

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::gml::config::{GmlMethodKind, GnnConfig};
use kgnet::gml::dataset::build_nc_dataset;
use kgnet::gml::train_nc;
use kgnet::graph::{GmlTask, NcTask, SplitRatios, SplitStrategy};
use kgnet::sampler::{meta_sample_task, SamplingScope};

fn task() -> NcTask {
    NcTask {
        target_type: "https://www.dblp.org/Publication".into(),
        label_predicate: "https://www.dblp.org/publishedIn".into(),
    }
}

#[test]
fn kg_prime_is_cheaper_and_at_least_as_accurate() {
    let (kg, _) = generate_dblp(&DblpConfig::small(101));
    let sampled =
        meta_sample_task(&kg, &GmlTask::NodeClassification(task()), SamplingScope::D1H1).store;
    assert!(sampled.len() < kg.len(), "KG' must be smaller than KG");

    let cfg = GnnConfig { epochs: 20, dropout: 0.0, ..GnnConfig::fast_test() };
    for method in [GmlMethodKind::Gcn, GmlMethodKind::GraphSaint] {
        let full_data =
            build_nc_dataset(&kg, &task(), SplitStrategy::Random, SplitRatios::default(), 1);
        let full = train_nc(method, &full_data, &cfg);
        let prime_data =
            build_nc_dataset(&sampled, &task(), SplitStrategy::Random, SplitRatios::default(), 1);
        let prime = train_nc(method, &prime_data, &cfg);

        assert!(
            prime.report.test_metric >= full.report.test_metric - 0.08,
            "{method}: KG' accuracy {} far below full {}",
            prime.report.test_metric,
            full.report.test_metric
        );
        assert!(
            prime.report.peak_mem_bytes <= full.report.peak_mem_bytes,
            "{method}: KG' used more memory"
        );
        // Same number of labelled targets in both pipelines.
        assert_eq!(full_data.n_targets(), prime_data.n_targets());
    }
}

#[test]
fn sampler_scopes_are_monotone_in_size() {
    let (kg, _) = generate_dblp(&DblpConfig::small(103));
    let t = GmlTask::NodeClassification(task());
    let d1h1 = meta_sample_task(&kg, &t, SamplingScope::D1H1).store.len();
    let d1h2 = meta_sample_task(&kg, &t, SamplingScope::D1H2).store.len();
    let d2h1 = meta_sample_task(&kg, &t, SamplingScope::D2H1).store.len();
    let d2h2 = meta_sample_task(&kg, &t, SamplingScope::D2H2).store.len();
    assert!(d1h1 <= d1h2 && d1h2 <= d2h2, "hop widening must not shrink KG'");
    assert!(d1h1 <= d2h1 && d2h1 <= d2h2, "direction widening must not shrink KG'");
    assert!(d2h2 <= kg.len());
}

#[test]
fn label_edges_never_leak_into_training_graph() {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(107));
    let data = build_nc_dataset(&kg, &task(), SplitStrategy::Random, SplitRatios::default(), 1);
    assert!(data.graph.edge_type_id("<https://www.dblp.org/publishedIn>").is_none());
    // Sanity: other edges are still present.
    assert!(data.graph.edge_type_id("<https://www.dblp.org/authoredBy>").is_some());
}
