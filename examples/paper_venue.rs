//! The Fig. 13 experiment in miniature: train the same node-classification
//! method on the full KG and on the meta-sampled task-specific subgraph
//! KG' (d1h1), and compare accuracy, time and memory.
//!
//! Run with: `cargo run --release --example paper_venue`

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::gml::config::{GmlMethodKind, GnnConfig};
use kgnet::gml::dataset::build_nc_dataset;
use kgnet::gml::train_nc;
use kgnet::graph::{GmlTask, NcTask, SplitRatios, SplitStrategy};
use kgnet::linalg::memtrack;
use kgnet::sampler::{meta_sample_task, SamplingScope};

fn main() {
    let (kg, _) = generate_dblp(&DblpConfig::small(21));
    let task = NcTask {
        target_type: "https://www.dblp.org/Publication".into(),
        label_predicate: "https://www.dblp.org/publishedIn".into(),
    };
    let cfg = GnnConfig { epochs: 30, dropout: 0.0, ..GnnConfig::default() };

    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "pipeline", "accuracy", "time(s)", "peak-mem", "#triples"
    );
    for (label, store) in [
        ("Full KG", None),
        (
            "KGNET(KG')",
            Some(
                meta_sample_task(
                    &kg,
                    &GmlTask::NodeClassification(task.clone()),
                    SamplingScope::D1H1,
                )
                .store,
            ),
        ),
    ] {
        let graph = store.as_ref().unwrap_or(&kg);
        memtrack::reset_peak();
        let t0 = std::time::Instant::now();
        let data = build_nc_dataset(graph, &task, SplitStrategy::Random, SplitRatios::default(), 1);
        let trained = train_nc(GmlMethodKind::GraphSaint, &data, &cfg);
        println!(
            "{:<12} {:>9.1}% {:>10.2} {:>12} {:>10}",
            label,
            trained.report.test_metric * 100.0,
            t0.elapsed().as_secs_f64(),
            memtrack::fmt_bytes(trained.report.peak_mem_bytes),
            graph.len()
        );
    }
    println!("\nThe task-specific subgraph trains faster, in less memory, and at least");
    println!("as accurately — the central claim of the paper's Figs. 13/14.");
}
