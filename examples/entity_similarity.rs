//! The ES (entity-similarity) task of Table I: train entity embeddings,
//! index them in the FAISS-style embedding store, and ask for the nearest
//! papers of a probe — both through the public API and through SPARQL-ML.
//!
//! Run with: `cargo run --release --example entity_similarity`

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::gmlaas::{EmbeddingStore, Metric};
use kgnet::{GnnConfig, KgNet, ManagerConfig, MlOutcome};

fn main() {
    // Direct embedding-store usage (exact vs IVF approximate search).
    let mut store = EmbeddingStore::new(8, Metric::Cosine);
    for i in 0..500 {
        let angle = i as f32 * 0.1;
        store
            .add(
                format!("e{i}"),
                vec![angle.cos(), angle.sin(), (i % 7) as f32, 1.0, 0.0, 0.5, -0.5, (i % 3) as f32],
            )
            .expect("widths match");
    }
    store.build_ivf(16, 4, 42);
    let probe = store.get("e100").unwrap().to_vec();
    println!("IVF search around e100: {:?}\n", store.search(&probe, 4, 4));

    // The same store behind the other ANN families: an HNSW graph and a
    // product-quantization codebook (see `kgnet::ann` for the tunables).
    store.build_hnsw(&kgnet::ann::HnswConfig::default());
    println!("HNSW search around e100: {:?}\n", store.search(&probe, 4, 4));
    store.build_pq(&kgnet::ann::PqConfig { ks: 64, ..Default::default() });
    println!("PQ search around e100:   {:?}\n", store.search(&probe, 4, 4));

    // Through the platform: a NodeSimilarity model over papers.
    let (kg, _) = generate_dblp(&DblpConfig::small(11));
    let config = ManagerConfig {
        default_cfg: GnnConfig { epochs: 25, ..GnnConfig::default() },
        ..Default::default()
    };
    let mut platform = KgNet::with_graph_and_config(kg, config);
    platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'Paper_Similarity',
                  GML-Task:{ TaskType: kgnet:NodeSimilarity,
                             TargetNode: dblp:Publication }})}"#,
        )
        .expect("training failed");

    let MlOutcome::Rows(rows) = platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               SELECT ?similar WHERE {
                 <https://www.dblp.org/rec/paper0> ?Sim ?similar .
                 ?Sim a kgnet:NodeSimilarity .
                 ?Sim kgnet:TargetNode dblp:Publication .
                 ?Sim kgnet:TopK-Links 5 . }"#,
        )
        .expect("query failed")
    else {
        panic!("expected rows")
    };
    println!("Papers most similar to paper0 (TransE embedding space):\n{}", rows.to_table());
}
