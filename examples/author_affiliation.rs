//! Link prediction through SPARQL-ML: train a MorsE author→affiliation
//! model (the paper's Fig. 15 task) and ask for top-k predicted links with
//! the Fig. 10 query.
//!
//! Run with: `cargo run --release --example author_affiliation`

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::{GnnConfig, KgNet, ManagerConfig, MlOutcome};

fn main() {
    let (kg, truth) = generate_dblp(&DblpConfig::small(33));
    let config = ManagerConfig {
        default_cfg: GnnConfig { epochs: 40, ..GnnConfig::default() },
        ..Default::default()
    };
    let mut platform = KgNet::with_graph_and_config(kg, config);

    // Train with the d2h1 sampler the paper found best for link prediction.
    let out = platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'Author_Affiliation_LP',
                  GML-Task:{ TaskType: kgnet:LinkPredictor,
                             SourceNode: dblp:Person,
                             DestinationNode: dblp:Affiliation,
                             TargetEdge: dblp:affiliatedWith },
                  Method: 'MorsE', Sampler: 'd2h1'})}"#,
        )
        .expect("training failed");
    let MlOutcome::Trained(model) = out else { panic!("expected trained model") };
    println!(
        "Trained {} (sampler {}): Hits@10 {:.1}% on held-out affiliation links\n",
        model.method,
        model.sampler,
        model.accuracy * 100.0
    );

    // Fig. 10: predict affiliation links for authors.
    let MlOutcome::Rows(rows) = platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               SELECT ?author ?affiliation
               WHERE {
                 ?author a dblp:Person .
                 ?author ?LinkPredictor ?affiliation .
                 ?LinkPredictor a kgnet:LinkPredictor .
                 ?LinkPredictor kgnet:SourceNode dblp:Person .
                 ?LinkPredictor kgnet:DestinationNode dblp:Affiliation .
                 ?LinkPredictor kgnet:TopK-Links 3 .
               } LIMIT 9"#,
        )
        .expect("query failed")
    else {
        panic!("expected rows")
    };
    println!("Top-3 predicted affiliations per author (first 3 authors):\n{}", rows.to_table());

    // Sanity: compare the first author's top-1 against the generator truth.
    let author0_truth = truth.author_affiliation[0];
    println!("Ground truth for author0: affiliation aff{author0_truth}");
}
