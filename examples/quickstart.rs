//! Quickstart: load a knowledge graph, train a node classifier through a
//! SPARQL-ML INSERT, then query the KG *and* the model with a SPARQL-ML
//! SELECT — the end-to-end loop of the paper's Figs. 2 and 8.
//!
//! Run with: `cargo run --release --example quickstart`

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::{GnnConfig, KgNet, ManagerConfig, MlOutcome};

fn main() {
    // 1. A DBLP-shaped knowledge graph (synthetic stand-in for dblp.org).
    let (kg, _truth) = generate_dblp(&DblpConfig::small(7));
    let config = ManagerConfig {
        default_cfg: GnnConfig { epochs: 25, ..GnnConfig::default() },
        ..Default::default()
    };
    let mut platform = KgNet::with_graph_and_config(kg, config);
    let stats = platform.stats();
    println!(
        "Loaded KG: {} triples, {} node types, {} edge types",
        stats.n_triples, stats.n_node_types, stats.n_edge_types
    );

    // 2. Train a paper -> venue classifier (Fig. 8's TrainGML INSERT).
    //    KGNet meta-samples the task-specific subgraph (d1h1), picks a
    //    method within the budget, trains, and registers KGMeta metadata.
    let out = platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o }
               WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'DBLP_Paper-Venue_Classifier',
                  GML-Task:   { TaskType: kgnet:NodeClassifier,
                                TargetNode: dblp:Publication,
                                NodeLabel: dblp:publishedIn },
                  Task Budget:{ MaxMemory:50GB, MaxTime:1h, Priority:ModelScore }})}"#,
        )
        .expect("training failed");
    let MlOutcome::Trained(model) = out else { panic!("expected a trained model") };
    println!(
        "\nTrained {} on KG' ({} triples, sampler {}): accuracy {:.1}%, {:.2}s, peak {} bytes",
        model.method,
        model.kg_prime_triples,
        model.sampler,
        model.accuracy * 100.0,
        model.train_time_s,
        model.peak_mem_bytes
    );
    println!("Model URI: {}", model.model_uri);

    // 3. Query with a user-defined predicate (the paper's Fig. 2 query).
    let MlOutcome::Rows(rows) = platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               SELECT ?title ?venue
               WHERE {
                 ?paper a dblp:Publication .
                 ?paper dblp:title ?title .
                 ?paper ?NodeClassifier ?venue .
                 ?NodeClassifier a kgnet:NodeClassifier .
                 ?NodeClassifier kgnet:TargetNode dblp:Publication .
                 ?NodeClassifier kgnet:NodeLabel dblp:publishedIn .
               } ORDER BY ?title LIMIT 8"#,
        )
        .expect("query failed")
    else {
        panic!("expected rows")
    };
    println!("\nPredicted venues (8 of many):\n{}", rows.to_table());
    println!(
        "Inference used {} HTTP-style service call(s) — the optimizer chose",
        platform.inference_calls()
    );
    println!("the Fig. 12 dictionary plan instead of one call per paper.");
}
