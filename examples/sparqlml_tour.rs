//! A tour of the SPARQL-ML language: plain SPARQL, TrainGML INSERT, the
//! optimizer's EXPLAIN (Fig. 11 vs Fig. 12 candidate rewrites), KGMeta
//! introspection with plain SPARQL, and model DELETE (Fig. 9).
//!
//! Run with: `cargo run --release --example sparqlml_tour`

use kgnet::datagen::{generate_dblp, DblpConfig};
use kgnet::{GnnConfig, KgNet, ManagerConfig, MlOutcome};

fn main() {
    let (kg, _) = generate_dblp(&DblpConfig::small(3));
    let config = ManagerConfig {
        default_cfg: GnnConfig { epochs: 15, ..GnnConfig::default() },
        ..Default::default()
    };
    let mut platform = KgNet::with_graph_and_config(kg, config);

    // --- 1. Plain SPARQL works untouched.
    let rows = platform
        .sparql(
            "PREFIX dblp: <https://www.dblp.org/>
             SELECT (COUNT(*) AS ?papers) WHERE { ?p a dblp:Publication }",
        )
        .unwrap();
    println!("1. Plain SPARQL:\n{}", rows.to_table());

    // --- 2. Train a model (Fig. 8).
    let out = platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'tour-model',
                  GML-Task:{ TaskType: kgnet:NodeClassifier,
                             TargetNode: dblp:Publication,
                             NodeLabel: dblp:publishedIn },
                  Task Budget:{ MaxMemory:2GB, MaxTime:10m, Priority:ModelScore }})}"#,
        )
        .unwrap();
    if let MlOutcome::Trained(m) = out {
        println!(
            "2. Trained: {} via {} (accuracy {:.1}%)\n",
            m.model_uri,
            m.method,
            m.accuracy * 100.0
        );
    }

    // --- 3. KGMeta is an RDF graph: inspect it with SPARQL (Fig. 7).
    let meta = platform
        .sparql_kgmeta(
            "PREFIX kgnet: <https://www.kgnet.com/>
             SELECT ?model ?acc ?time ?card WHERE {
               ?model a kgnet:NodeClassifier .
               ?model kgnet:ModelAccuracy ?acc .
               ?model kgnet:InferenceTime ?time .
               ?model kgnet:ModelCardinality ?card . }",
        )
        .unwrap();
    println!("3. KGMeta contents:\n{}", meta.to_table());

    // --- 4. EXPLAIN: the optimizer's candidate rewrite (Fig. 11/12).
    const QUERY: &str = r#"
        PREFIX dblp: <https://www.dblp.org/>
        PREFIX kgnet: <https://www.kgnet.com/>
        SELECT ?title ?venue WHERE {
          ?paper a dblp:Publication .
          ?paper dblp:title ?title .
          ?paper ?NodeClassifier ?venue .
          ?NodeClassifier a kgnet:NodeClassifier .
          ?NodeClassifier kgnet:TargetNode dblp:Publication .
          ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;
    let rewritten = platform.explain(QUERY).unwrap();
    println!(
        "4. Chosen plan: {:?}; candidate SPARQL:\n{}\n",
        rewritten.steps[0].plan, rewritten.sparql
    );

    // --- 5. Execute the ML SELECT.
    if let MlOutcome::Rows(rows) = platform.execute(QUERY).unwrap() {
        println!(
            "5. {} rows inferred with {} service call(s)\n",
            rows.len(),
            platform.inference_calls()
        );
    }

    // --- 6. DELETE the model (Fig. 9).
    let out = platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               DELETE { ?m ?p ?o } WHERE {
                 ?m a kgnet:NodeClassifier .
                 ?m kgnet:TargetNode dblp:Publication .
                 ?m kgnet:NodeLabel dblp:publishedIn . }"#,
        )
        .unwrap();
    if let MlOutcome::DeletedModels(uris) = out {
        println!(
            "6. Deleted {} model(s); KGMeta now has {} triples",
            uris.len(),
            platform.manager().kgmeta().len()
        );
    }
}
