//! # KGNet — a GML-enabled knowledge graph platform
//!
//! A from-scratch Rust reproduction of *"Towards a GML-Enabled Knowledge
//! Graph Platform"* (Abdallah & Mansour, ICDE 2023): an RDF engine with a
//! SPARQL subset, the SPARQL-ML language (user-defined predicates backed by
//! trained graph-ML models), GML-as-a-service with budget-constrained
//! automatic method selection, task-specific meta-sampling, the KGMeta
//! metadata graph, and an evaluation harness regenerating every table and
//! figure of the paper on schema-faithful synthetic KGs.
//!
//! Start with [`KgNet`] (re-exported from `kgnet-core`); see the `examples/`
//! directory for end-to-end walkthroughs and `crates/bench` for the
//! experiment harness.

#![forbid(unsafe_code)]

pub use kgnet_core::*;

/// The RDF engine: terms, triple store, SPARQL subset.
pub use kgnet_rdf as rdf;

/// Observability: metric registry, latency histograms, structured
/// tracing, Prometheus-text and JSON exporters.
pub use kgnet_obs as obs;

/// Heterogeneous graphs, the data transformer, splits and statistics.
pub use kgnet_graph as graph;

/// Meta-sampling of task-specific subgraphs.
pub use kgnet_sampler as sampler;

/// GML methods: GCN, RGCN, GraphSAINT, ShadowSAINT, MorsE, KGE family.
pub use kgnet_gml as gml;

/// Vector search: HNSW/PQ/IVF indexes and binary embedding persistence.
pub use kgnet_ann as ann;

/// GML-as-a-service: training manager, model/embedding stores, inference.
pub use kgnet_gmlaas as gmlaas;

/// The SPARQL-ML language layer: parser, KGMeta, optimizer, rewriter.
pub use kgnet_sparqlml as sparqlml;

/// Concurrent serving: shared-store read/write sessions and the
/// admission-controlled training job queue.
pub use kgnet_server as server;

/// The wire-level frontend: dependency-free HTTP/1.1 server exposing
/// `/metrics`, health probes, debug surfaces and the query endpoints.
pub use kgnet_http as http;

/// Synthetic DBLP/YAGO4-shaped KG generators.
pub use kgnet_datagen as datagen;

/// Dense/CSR matrices, autodiff, optimizers, memory tracking.
pub use kgnet_linalg as linalg;
