//! Offline stand-in for the `memmap2` crate covering the surface this
//! workspace uses: a read-only [`Mmap`] over a whole file, dereferencing to
//! `&[u8]`.
//!
//! On Unix targets the mapping is a real `mmap(2)` (`PROT_READ` /
//! `MAP_PRIVATE`), called through locally-declared FFI prototypes — the
//! symbols come from the libc that `std` already links, so no external
//! crate is needed. Anywhere the map cannot be established (non-Unix
//! target, zero-length file, or a failing syscall) the type transparently
//! falls back to reading the file into an owned buffer, so callers get the
//! same `&[u8]` view either way; only the paging behaviour differs.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;

/// An immutable memory map of an entire file.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    /// A live `mmap(2)` region (Unix only).
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Owned fallback: the file's bytes read into memory.
    Owned(Vec<u8>),
}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// As with the real `memmap2`, the caller must ensure the underlying
    /// file is not truncated or mutated for the lifetime of the map;
    /// otherwise reads through the returned slice are undefined (on the
    /// owned fallback path the bytes are snapshotted instead, which is
    /// strictly safer).
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap { inner: Inner::Owned(Vec::new()) });
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        #[cfg(unix)]
        {
            if let Some(ptr) = unix_map(file, len) {
                return Ok(Mmap { inner: Inner::Mapped { ptr, len } });
            }
        }
        let mut buf = Vec::with_capacity(len);
        let mut handle = file;
        handle.read_to_end(&mut buf)?;
        Ok(Mmap { inner: Inner::Owned(buf) })
    }

    /// Length of the mapped region in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this map is backed by a live `mmap(2)` region rather than
    /// the owned-buffer fallback (diagnostics only).
    pub fn is_zero_copy(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Owned(_) => false,
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: `ptr` came from a successful mmap of `len` bytes
                // and stays valid until `Drop` unmaps it.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Owned(buf) => buf,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("zero_copy", &self.is_zero_copy())
            .finish()
    }
}

// SAFETY: the region is immutable for the lifetime of the map (read-only
// protection, private mapping), so shared references from any thread are
// fine, as is moving ownership across threads.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly one munmap for the region mmap returned.
            unsafe {
                munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

#[cfg(unix)]
extern "C" {
    // Prototypes for the libc `std` already links; identical to the ones
    // the `libc` crate would declare on 64-bit Unix.
    fn mmap(
        addr: *mut std::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut std::ffi::c_void;
    fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
}

#[cfg(unix)]
fn unix_map(file: &File, len: usize) -> Option<*const u8> {
    use std::os::unix::io::AsRawFd;
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of an open fd; failure
    // is reported as MAP_FAILED (-1), checked below.
    let ptr =
        unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
    if ptr as isize == -1 || ptr.is_null() {
        None
    } else {
        Some(ptr as *const u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2-stub-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload = b"hello mapped world".repeat(500);
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        // SAFETY: the temp file is private to this test and not mutated
        // while mapped.
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.len(), payload.len());
        drop(map);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        // SAFETY: the temp file is private to this test and not mutated
        // while mapped.
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_empty());
        assert!(!map.is_zero_copy());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn map_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }

    #[cfg(unix)]
    #[test]
    fn unix_maps_are_zero_copy() {
        let path = temp_path("zerocopy");
        std::fs::File::create(&path).unwrap().write_all(&[7u8; 4096]).unwrap();
        let file = File::open(&path).unwrap();
        // SAFETY: the temp file is private to this test and not mutated
        // while mapped.
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_zero_copy());
        assert_eq!(map[4095], 7);
        let _ = std::fs::remove_file(&path);
    }
}
