//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness
//! with the `criterion_group!` / `criterion_main!` entry points,
//! `Criterion::bench_function`, `Bencher::iter` / `iter_batched` and
//! [`black_box`]. Reports min / median / mean per benchmark; no plots, no
//! statistical regression analysis.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortises setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-set-up on every iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time `routine` and print a one-line report.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One untimed warm-up, then the timed samples.
        routine(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            routine(&mut bencher);
        }
        report(id, &bencher.samples);
        self
    }
}

/// Collects one timing sample per `iter*` call.
pub struct Bencher {
    samples: Vec<Duration>,
}

/// Keep timing iterations until one sample accumulates this much wall
/// clock, so `Instant` granularity and call overhead don't dominate
/// nanosecond-scale routines.
const SAMPLE_FLOOR: Duration = Duration::from_millis(1);
const MAX_ITERS_PER_SAMPLE: u32 = 1_000_000;

impl Bencher {
    /// Time `routine`, batching fast routines; one averaged sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut total = Duration::ZERO;
        let mut iters = 0u32;
        while total < SAMPLE_FLOOR && iters < MAX_ITERS_PER_SAMPLE {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.samples.push(total / iters);
    }

    /// Like [`Bencher::iter`] with a fresh input from `setup` per
    /// iteration, setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u32;
        while total < SAMPLE_FLOOR && iters < MAX_ITERS_PER_SAMPLE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.samples.push(total / iters);
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{id:<44} min {:>12} median {:>12} mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
