//! Offline stand-in for `parking_lot`: thin non-poisoning wrappers over the
//! std sync primitives, matching the `parking_lot` guard-returning API for
//! the subset this workspace uses (`Mutex`, `RwLock`).

use std::sync;

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire shared read access without blocking; `None` when a writer
    /// holds or is waiting for the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire exclusive write access without blocking; `None` when any
    /// guard is live.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire the lock without blocking; `None` when it is already held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
