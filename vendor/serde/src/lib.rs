//! Offline stand-in for `serde`.
//!
//! The real serde streams values through visitor-based `Serializer` /
//! `Deserializer` traits; this stand-in routes everything through one
//! in-memory [`content::Content`] tree, while keeping the trait *shapes*
//! (`serialize_struct`, `SerializeStruct::serialize_field`,
//! `de::Error::custom`, …) source-compatible with the subset this workspace
//! uses, so hand-written impls like `kgnet_linalg::Matrix`'s compile
//! unchanged. `serde_json` (also vendored) is the only data format.

pub mod content;
pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// Derive macros live in the macro namespace, so re-exporting them alongside
// the traits of the same name is fine — exactly how real serde does it.
pub use serde_derive::{Deserialize, Serialize};

pub use content::{
    from_content, get_field, to_content, Content, ContentDeserializer, ContentError,
};
