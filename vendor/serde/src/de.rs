//! Deserialization traits and the blanket impls for std types.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;
use std::hash::{BuildHasher, Hash};

use crate::content::{from_content, Content};

/// Error constraint for deserializers.
pub trait Error: Sized {
    /// Build an error from any message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data-format deserializer. In this stand-in every format produces one
/// [`Content`] tree through [`Deserializer::deserialize_content`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produce the full content tree of the input.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A value reconstructible from any data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

fn unexpected<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, got {got:?}"))
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let out = match &content {
                    Content::I64(v) => <$t>::try_from(*v).ok(),
                    Content::U64(v) => <$t>::try_from(*v).ok(),
                    // Whole floats convert only when in range (no silent
                    // saturation).
                    Content::F64(v)
                        if v.fract() == 0.0
                            && *v >= <$t>::MIN as f64
                            && *v <= <$t>::MAX as f64 =>
                    {
                        Some(*v as $t)
                    }
                    _ => None,
                };
                out.ok_or_else(|| unexpected(stringify!($t), &content))
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                match content {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    other => Err(unexpected("float", &other)),
                }
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(unexpected("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(v) => Ok(v),
            other => Err(unexpected("string", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => from_content(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => {
                items.into_iter().map(|c| from_content(c).map_err(D::Error::custom)).collect()
            }
            other => Err(unexpected("sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal : $($name:ident . $idx:tt),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            from_content::<$name>(it.next().expect("length checked"))
                                .map_err(__D::Error::custom)?
                        },)+))
                    }
                    other => Err(unexpected(concat!("sequence of ", $len), &other)),
                }
            }
        }
    )*};
}

deserialize_tuple! {
    (1: A.0)
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
}

impl<'de, V: Deserialize<'de>, H: BuildHasher + Default> Deserialize<'de> for HashMap<String, V, H>
where
    String: Eq + Hash,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, from_content(v).map_err(D::Error::custom)?)))
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, from_content(v).map_err(D::Error::custom)?)))
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}
