//! The in-memory data model every value serialises into and deserialises
//! from, plus the `Content`-backed serializer/deserializer pair the derive
//! macros target.

use std::fmt;

use crate::de::{self, Deserialize, Deserializer};
use crate::ser::{self, Serialize, SerializeStruct, Serializer};

/// A serialised value: the JSON data model plus distinct integer widths.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key-ordered map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a `Map`.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Find `key` among map `entries`, cloning the value (derive-macro helper).
pub fn get_field(entries: &[(String, Content)], key: &str) -> Option<Content> {
    entries.iter().find(|(k, _)| k.as_str() == key).map(|(_, v)| v.clone())
}

/// The error type of the content-tree serializer/deserializer.
#[derive(Debug, Clone)]
pub struct ContentError(pub String);

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Serialize `value` into a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}

/// Deserialize a `T` out of a [`Content`] tree.
pub fn from_content<'de, T: Deserialize<'de>>(content: Content) -> Result<T, ContentError> {
    T::deserialize(ContentDeserializer(content))
}

/// [`Serializer`] building a [`Content`] tree.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;
    type SerializeStruct = ContentStructSerializer;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<ContentStructSerializer, ContentError> {
        Ok(ContentStructSerializer { fields: Vec::with_capacity(len) })
    }
}

/// Struct body under construction by [`ContentSerializer`].
pub struct ContentStructSerializer {
    fields: Vec<(String, Content)>,
}

impl SerializeStruct for ContentStructSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), ContentError> {
        self.fields.push((key.to_owned(), to_content(value)?));
        Ok(())
    }

    fn end(self) -> Result<Content, ContentError> {
        Ok(Content::Map(self.fields))
    }
}

/// [`Deserializer`] reading back out of a [`Content`] tree.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self.0)
    }
}
