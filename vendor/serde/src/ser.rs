//! Serialization traits and the blanket impls for std types.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

use crate::content::{to_content, Content, ContentError};

/// Error constraint for serializers.
pub trait Error: Sized + std::error::Error {
    /// Build an error from any message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data-format serializer. In this stand-in every format consumes one
/// [`Content`] tree through [`Serializer::serialize_content`].
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Struct sub-serializer returned by [`Serializer::serialize_struct`].
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Consume a fully-built content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Begin serializing a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Field-at-a-time struct serialization (`serialize_struct` result).
pub trait SerializeStruct {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A value serialisable into any data format.
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

fn lift<S: Serializer>(r: Result<Content, ContentError>, serializer: S) -> Result<S::Ok, S::Error> {
    match r {
        Ok(content) => serializer.serialize_content(content),
        Err(e) => Err(S::Error::custom(e)),
    }
}

macro_rules! serialize_prim {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::$variant(*self as $cast))
            }
        }
    )*};
}

serialize_prim!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64,
    bool => Bool as bool,
);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_content<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Content, ContentError> {
    Ok(Content::Seq(items.map(to_content).collect::<Result<_, _>>()?))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        lift(seq_content(self.iter()), serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        lift(seq_content(self.iter()), serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        lift(seq_content(self.iter()), serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let build = || -> Result<Content, ContentError> {
                    Ok(Content::Seq(vec![$(to_content(&self.$idx)?),+]))
                };
                lift(build(), serializer)
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

fn map_content<'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a String, &'a V)>,
) -> Result<Content, ContentError> {
    Ok(Content::Map(
        entries
            .map(|(k, v)| Ok((k.clone(), to_content(v)?)))
            .collect::<Result<_, ContentError>>()?,
    ))
}

impl<V: Serialize, H> Serialize for HashMap<String, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort for a deterministic wire form (hash maps iterate randomly).
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        lift(map_content(entries.into_iter()), serializer)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        lift(map_content(self.iter()), serializer)
    }
}
