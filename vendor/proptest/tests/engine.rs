//! Sanity tests for the vendored proptest engine itself.

use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Num(i64),
}

fn arb_token() -> impl Strategy<Value = Token> {
    prop_oneof!["[a-z]{1,6}".prop_map(Token::Word), any::<i32>().prop_map(|v| Token::Num(v as i64)),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f32..2.0) {
        prop_assert!((3..9).contains(&x));
        prop_assert!((-2.0..2.0).contains(&y));
    }

    #[test]
    fn vec_strategy_respects_size(items in proptest::collection::vec(0u32..5, 2..7)) {
        prop_assert!((2..7).contains(&items.len()));
        prop_assert!(items.iter().all(|&v| v < 5));
    }

    #[test]
    fn exact_size_vec(items in proptest::collection::vec(0u32..5, 4)) {
        prop_assert_eq!(items.len(), 4);
    }

    #[test]
    fn string_pattern_matches_class(s in "[a-z ]{0,8}") {
        prop_assert!(s.len() <= 8);
        prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
    }

    #[test]
    fn oneof_and_prop_map_compose(t in arb_token()) {
        match t {
            Token::Word(w) => prop_assert!(!w.is_empty() && w.len() <= 6),
            Token::Num(_) => {}
        }
    }

    #[test]
    fn option_of_produces_both(opt in proptest::option::of(0u32..10)) {
        if let Some(v) = opt {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn assume_rejects_without_failing(n in 0u32..10) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }
}
