//! Collection strategies: [`vec`].

use rand::Rng;

use crate::strategy::Strategy;
use crate::TestRng;

/// A size spec: an exact `usize` or a `usize` range.
pub trait IntoSizeRange {
    /// Pick a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// The [`vec`] strategy.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
