//! Option strategies: [`of`].

use rand::Rng;

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy for `Option<S::Value>`: `Some` three times out of four.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The [`of`] strategy.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
