//! Offline stand-in for `proptest`: a mini property-testing engine covering
//! the surface this workspace uses — the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, strategies for
//! primitive ranges, `any::<T>()`, regex-lite string literals
//! (`"[a-z]{1,6}"`), `prop_oneof!`, `.prop_map(..)`,
//! `proptest::collection::vec`, `proptest::option::of`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! No shrinking: failing inputs are reported verbatim via the panic message
//! of the underlying `assert!`. Generation is deterministic per test name.

pub mod collection;
pub mod option;
pub mod strategy;

pub mod prelude {
    //! Everything a `proptest!` test module needs.
    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

use std::hash::{Hash, Hasher};

pub use strategy::Strategy;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving generation.
pub type TestRng = StdRng;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: usize,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not produce a verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs.
    Reject,
}

/// Deterministic RNG for one property, keyed by its name.
pub fn test_rng(name: &str) -> TestRng {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    TestRng::seed_from_u64(hasher.finish())
}

/// An `any::<T>()` strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for primitive `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

any_impl!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The `proptest! { ... }` block: expands each property into a `#[test]`
/// running `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0usize;
            let mut attempts = 0usize;
            let max_attempts = config.cases * 20 + 100;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                }
            }
        }
    )*};
}

/// Assert inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Union of same-valued strategies, one picked uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$( $crate::strategy::boxed($strat) ),+])
    };
}
