//! The [`Strategy`] trait and its combinators.

use rand::Rng;

use crate::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Box a strategy (helper for `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!` union: one inner strategy picked uniformly per case.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String literals are regex-lite strategies: concatenations of literal
/// characters and `[class]{m,n}` / `[class]{n}` / `[class]` char-class
/// repetitions, where a class lists literal characters and `a-z` ranges.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '[' {
                out.push(c);
                continue;
            }
            // Parse the class body.
            let mut class: Vec<(char, char)> = Vec::new();
            loop {
                let lo = chars.next().expect("unterminated char class");
                if lo == ']' {
                    break;
                }
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars.next().expect("unterminated char range");
                    class.push((lo, hi));
                } else {
                    class.push((lo, lo));
                }
            }
            assert!(!class.is_empty(), "empty char class in strategy pattern");
            // Parse an optional {m,n} / {n} repetition.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repetition"),
                        n.trim().parse::<usize>().expect("bad repetition"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let len = rng.gen_range(min..=max);
            for _ in 0..len {
                let (lo, hi) = class[rng.gen_range(0..class.len())];
                let span = hi as u32 - lo as u32 + 1;
                let pick = lo as u32 + rng.gen_range(0..span);
                out.push(char::from_u32(pick).expect("valid char in class"));
            }
        }
        out
    }
}
