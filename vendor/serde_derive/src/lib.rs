//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` available offline) derives of the vendored
//! serde's `Serialize`/`Deserialize` traits. Supports the shapes this
//! workspace uses: non-generic structs with named fields, and enums with
//! unit, newtype/tuple and struct variants, optionally internally tagged via
//! `#[serde(tag = "...")]` (unit and struct variants only, as in real serde).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    tag: Option<String>,
    kind: Kind,
}

enum Kind {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(id) if id.to_string() == s)
}

/// Skip one `#[...]` attribute, returning its bracket group.
fn take_attr(iter: &mut Iter) -> Option<TokenStream> {
    if matches!(iter.peek(), Some(tt) if is_punct(tt, '#')) {
        iter.next();
        // `#![...]` inner attributes cannot appear here; expect the group.
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                return Some(g.stream());
            }
            other => panic!("serde derive: malformed attribute: {other:?}"),
        }
    }
    None
}

fn skip_visibility(iter: &mut Iter) {
    if matches!(iter.peek(), Some(tt) if is_ident(tt, "pub")) {
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                iter.next();
            }
        }
    }
}

/// Extract `tag = "..."` from a `serde(...)` attribute body, if present.
fn parse_serde_tag(stream: TokenStream) -> Option<String> {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(tt) if is_ident(&tt, "serde") => {}
        _ => return None,
    }
    let Some(TokenTree::Group(g)) = iter.next() else { return None };
    let mut inner = g.stream().into_iter();
    match inner.next() {
        Some(tt) if is_ident(&tt, "tag") => {}
        Some(other) => panic!("serde derive stand-in: unsupported serde attribute `{other}`"),
        None => return None,
    }
    match inner.next() {
        Some(tt) if is_punct(&tt, '=') => {}
        _ => panic!("serde derive stand-in: expected `tag = \"...\"`"),
    }
    match inner.next() {
        Some(TokenTree::Literal(lit)) => {
            let text = lit.to_string();
            Some(text.trim_matches('"').to_owned())
        }
        _ => panic!("serde derive stand-in: expected string literal tag"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut tag = None;
    loop {
        if let Some(attr) = take_attr(&mut iter) {
            if tag.is_none() {
                tag = parse_serde_tag(attr);
            }
            continue;
        }
        if matches!(iter.peek(), Some(tt) if is_ident(tt, "pub")) {
            skip_visibility(&mut iter);
            continue;
        }
        break;
    }
    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive stand-in: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive stand-in: expected type name, got {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(tt) if is_punct(&tt, '<') => {
            panic!("serde derive stand-in: generic types are not supported (`{name}`)")
        }
        other => panic!("serde derive stand-in: expected braced body for `{name}`, got {other:?}"),
    };
    let kind = match kw.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("serde derive stand-in: cannot derive for `{other}`"),
    };
    Item { name, tag, kind }
}

/// Consume a type up to a top-level `,` (only `<...>` needs manual depth
/// tracking — parens/brackets/braces arrive as single groups).
fn skip_type(iter: &mut Iter) {
    let mut depth = 0i32;
    while let Some(tt) = iter.peek() {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if is_punct(tt, ',') && depth == 0 {
            iter.next();
            return;
        }
        iter.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        while take_attr(&mut iter).is_some() {}
        skip_visibility(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match iter.next() {
                    Some(tt) if is_punct(&tt, ':') => {}
                    other => {
                        panic!("serde derive stand-in: expected `:` after field, got {other:?}")
                    }
                }
                skip_type(&mut iter);
            }
            Some(other) => panic!("serde derive stand-in: unexpected field token {other:?}"),
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while take_attr(&mut iter).is_some() {}
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let shape = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        iter.next();
                        Shape::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        iter.next();
                        Shape::Struct(fields)
                    }
                    _ => Shape::Unit,
                };
                if matches!(iter.peek(), Some(tt) if is_punct(tt, ',')) {
                    iter.next();
                }
                variants.push(Variant { name, shape });
            }
            Some(other) => panic!("serde derive stand-in: unexpected variant token {other:?}"),
        }
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        while take_attr(&mut iter).is_some() {}
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut iter);
    }
    count
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const SER_ERR: &str = "<S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<D::Error as ::serde::de::Error>::custom";

fn tuple_bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("__f{i}")).collect()
}

/// `("key".to_owned(), ::serde::to_content(expr).map_err(...)?)`
fn field_entry(key: &str, expr: &str) -> String {
    format!("(\"{key}\".to_owned(), ::serde::to_content({expr}).map_err({SER_ERR})?)")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut out = format!(
                "let mut state = ::serde::Serializer::serialize_struct(serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                out += &format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut state, \"{f}\", &self.{f})?;\n"
                );
            }
            out += "::serde::ser::SerializeStruct::end(state)";
            out
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let arm = match (&v.shape, &item.tag) {
                    (Shape::Unit, None) => format!(
                        "{name}::{vname} => serializer.serialize_content(::serde::Content::Str(\"{vname}\".to_owned())),\n"
                    ),
                    (Shape::Unit, Some(tag)) => format!(
                        "{name}::{vname} => serializer.serialize_content(::serde::Content::Map(vec![(\"{tag}\".to_owned(), ::serde::Content::Str(\"{vname}\".to_owned()))])),\n"
                    ),
                    (Shape::Tuple(1), None) => format!(
                        "{name}::{vname}(__f0) => {{\nlet inner = ::serde::to_content(__f0).map_err({SER_ERR})?;\nserializer.serialize_content(::serde::Content::Map(vec![(\"{vname}\".to_owned(), inner)]))\n}}\n"
                    ),
                    (Shape::Tuple(arity), None) => {
                        let binds = tuple_bindings(*arity);
                        let items = binds
                            .iter()
                            .map(|b| format!("::serde::to_content({b}).map_err({SER_ERR})?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{vname}({}) => {{\nlet inner = ::serde::Content::Seq(vec![{items}]);\nserializer.serialize_content(::serde::Content::Map(vec![(\"{vname}\".to_owned(), inner)]))\n}}\n",
                            binds.join(", ")
                        )
                    }
                    (Shape::Tuple(_), Some(_)) => panic!(
                        "serde derive stand-in: tuple variant `{vname}` cannot be internally tagged"
                    ),
                    (Shape::Struct(fields), tag) => {
                        let binds = fields.join(", ");
                        let mut entries: Vec<String> = Vec::new();
                        if let Some(tag) = tag {
                            entries.push(format!(
                                "(\"{tag}\".to_owned(), ::serde::Content::Str(\"{vname}\".to_owned()))"
                            ));
                        }
                        for f in fields {
                            entries.push(field_entry(f, f));
                        }
                        let map = format!("::serde::Content::Map(vec![{}])", entries.join(", "));
                        let value = if tag.is_some() {
                            map
                        } else {
                            format!("::serde::Content::Map(vec![(\"{vname}\".to_owned(), {map})])")
                        };
                        format!(
                            "{name}::{vname} {{ {binds} }} => serializer.serialize_content({value}),\n"
                        )
                    }
                };
                arms += &arm;
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S) -> ::std::result::Result<S::Ok, S::Error> {{\n\
         {body}\n}}\n}}"
    )
}

/// `::serde::get_field(&entries, "key")` unwrapped into a value of the
/// field's type, erroring on absence.
fn extract_field(entries_expr: &str, key: &str, owner: &str) -> String {
    format!(
        "match ::serde::get_field({entries_expr}, \"{key}\") {{\n\
         Some(v) => ::serde::from_content(v).map_err({DE_ERR})?,\n\
         None => return ::std::result::Result::Err({DE_ERR}(\"missing field `{key}` in `{owner}`\")),\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: {},", extract_field("&entries", f, name)))
                .collect::<String>();
            format!(
                "match content {{\n\
                 ::serde::Content::Map(entries) => ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                 other => ::std::result::Result::Err({DE_ERR}(format!(\"expected map for `{name}`, got {{other:?}}\"))),\n\
                 }}"
            )
        }
        Kind::Enum(variants) => match &item.tag {
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            arms += &format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                            );
                        }
                        Shape::Struct(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| format!("{f}: {},", extract_field("&entries", f, vname)))
                                .collect::<String>();
                            arms += &format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),\n"
                            );
                        }
                        Shape::Tuple(_) => panic!(
                            "serde derive stand-in: tuple variant `{vname}` cannot be internally tagged"
                        ),
                    }
                }
                format!(
                    "match content {{\n\
                     ::serde::Content::Map(entries) => {{\n\
                     let tag = match ::serde::get_field(&entries, \"{tag}\") {{\n\
                     Some(::serde::Content::Str(s)) => s,\n\
                     _ => return ::std::result::Result::Err({DE_ERR}(\"missing `{tag}` tag for `{name}`\")),\n\
                     }};\n\
                     match tag.as_str() {{\n{arms}\
                     other => ::std::result::Result::Err({DE_ERR}(format!(\"unknown `{name}` variant {{other}}\"))),\n\
                     }}\n}}\n\
                     other => ::std::result::Result::Err({DE_ERR}(format!(\"expected map for `{name}`, got {{other:?}}\"))),\n\
                     }}"
                )
            }
            None => {
                let mut unit_arms = String::new();
                let mut keyed_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            unit_arms += &format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                            );
                        }
                        Shape::Tuple(1) => {
                            keyed_arms += &format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::from_content(value).map_err({DE_ERR})?)),\n"
                            );
                        }
                        Shape::Tuple(arity) => {
                            let binds = tuple_bindings(*arity);
                            let inits = binds
                                .iter()
                                .map(|b| format!("let {b} = ::serde::from_content(items.next().expect(\"arity checked\")).map_err({DE_ERR})?;\n"))
                                .collect::<String>();
                            keyed_arms += &format!(
                                "\"{vname}\" => match value {{\n\
                                 ::serde::Content::Seq(seq) if seq.len() == {arity} => {{\n\
                                 let mut items = seq.into_iter();\n\
                                 {inits}\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n}}\n\
                                 other => ::std::result::Result::Err({DE_ERR}(format!(\"expected {arity}-tuple for `{vname}`, got {{other:?}}\"))),\n\
                                 }},\n",
                                binds.join(", ")
                            );
                        }
                        Shape::Struct(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| format!("{f}: {},", extract_field("&entries", f, vname)))
                                .collect::<String>();
                            keyed_arms += &format!(
                                "\"{vname}\" => match value {{\n\
                                 ::serde::Content::Map(entries) => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),\n\
                                 other => ::std::result::Result::Err({DE_ERR}(format!(\"expected map for `{vname}`, got {{other:?}}\"))),\n\
                                 }},\n"
                            );
                        }
                    }
                }
                format!(
                    "match content {{\n\
                     ::serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
                     other => ::std::result::Result::Err({DE_ERR}(format!(\"unknown `{name}` variant {{other}}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(mut entries) if entries.len() == 1 => {{\n\
                     let (key, value) = entries.pop().expect(\"length checked\");\n\
                     match key.as_str() {{\n{keyed_arms}\
                     other => ::std::result::Result::Err({DE_ERR}(format!(\"unknown `{name}` variant {{other}}\"))),\n\
                     }}\n}}\n\
                     other => ::std::result::Result::Err({DE_ERR}(format!(\"expected `{name}` variant, got {{other:?}}\"))),\n\
                     }}"
                )
            }
        },
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) -> ::std::result::Result<Self, D::Error> {{\n\
         let content = ::serde::Deserializer::deserialize_content(deserializer)?;\n\
         {body}\n}}\n}}"
    )
}
