//! The JSON value tree: [`Value`], [`Number`], [`Map`].

use std::fmt;

use serde::{Content, Deserialize, Deserializer, Serialize, Serializer};

/// Any JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// This number as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Any number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_signed {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                // Infallible RHS conversion: a non-integer Value (None) can
                // never compare equal.
                self.as_i64() == Some(*other as i64)
            }
        }
    )*};
}

value_eq_signed!(i8, i16, i32, i64, isize);

macro_rules! value_eq_unsigned {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
    )*};
}

value_eq_unsigned!(u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        // Like real serde_json: any number compares through f64.
        self.as_f64() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::text::write_content(&self.clone().into_content()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone().into_content())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Value::from_content(deserializer.deserialize_content()?))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

#[derive(Debug, Clone, Copy)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// A float number; `None` for NaN / infinities.
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number(N::F(v)))
    }

    /// As `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// As `u64` if integral, non-negative and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::I(v) => u64::try_from(v).ok(),
            N::U(v) => Some(v),
            N::F(_) => None,
        }
    }

    /// Any number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::I(v) => Some(v as f64),
            N::U(v) => Some(v as f64),
            N::F(v) => Some(v),
        }
    }

    /// `true` iff stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }

    pub(crate) fn into_content(self) -> Content {
        match self.0 {
            N::I(v) => Content::I64(v),
            N::U(v) => Content::U64(v),
            N::F(v) => Content::F64(v),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        // Like real serde_json: integers never equal floats.
        match (self.is_f64(), other.is_f64()) {
            (false, false) => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                (None, None) => self.as_u64() == other.as_u64(),
                _ => false,
            },
            (true, true) => self.as_f64() == other.as_f64(),
            _ => false,
        }
    }
}

macro_rules! number_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                #[allow(unused_comparisons)]
                if (v as i128) >= 0 {
                    Number(N::U(v as u64))
                } else {
                    Number(N::I(v as i64))
                }
            }
        }
    )*};
}

number_from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::I(v) => write!(f, "{v}"),
            N::U(v) => write!(f, "{v}"),
            N::F(v) => write!(f, "{v:?}"),
        }
    }
}

/// An insertion-ordered string-keyed map (`serde_json::Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert, replacing (and returning) any previous value under `key`.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<V> Map<String, V> {
    /// Value under `key`.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `true` iff `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove and return the value under `key`.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a Map<K, V> {
    type Item = &'a (K, V);
    type IntoIter = std::slice::Iter<'a, (K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}
