//! JSON text: a strict recursive-descent parser and a compact printer, both
//! over the vendored serde's `Content` tree.

use serde::Content;

/// Print `content` as compact JSON.
pub fn write_content(content: &Content) -> String {
    let mut out = String::new();
    write_into(content, &mut out);
    out
}

fn write_into(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps a trailing `.0` so floats re-parse as floats.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_into(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse strict JSON text into a `Content` tree.
pub fn parse(input: &str) -> Result<Content, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Content, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Content, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    /// Four hex digits starting at `at`, as a code unit.
    fn hex_escape(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape(self.pos + 1)?;
                            self.pos += 4;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow; combine into one scalar.
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err("unpaired surrogate in \\u escape".to_owned());
                                }
                                let low = self.hex_escape(self.pos + 3)?;
                                self.pos += 6;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate in \\u escape".to_owned());
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(char::from_u32(c).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|e| format!("bad number `{text}`: {e}"))
    }
}
