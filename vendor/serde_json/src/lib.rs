//! Offline stand-in for `serde_json`: the [`Value`] / [`Map`] / [`Number`]
//! data model, a strict JSON text parser and printer, and
//! [`to_string`] / [`from_str`] bridging any vendored-serde
//! `Serialize` / `Deserialize` type through the content tree.

mod text;
mod value;

use std::fmt;

use serde::{Content, Deserialize, Serialize};

pub use value::{Map, Number, Value};

/// Errors from (de)serializing JSON text.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = serde::to_content(value).map_err(|e| Error(e.to_string()))?;
    Ok(text::write_content(&content))
}

/// Deserialize a `T` from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let content = text::parse(input).map_err(Error)?;
    serde::from_content(content).map_err(|e| Error(e.to_string()))
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    let content = serde::to_content(value).map_err(|e| Error(e.to_string()))?;
    Ok(Value::from_content(content))
}

/// Reconstruct a `T` out of a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    serde::from_content(value.into_content()).map_err(|e| Error(e.to_string()))
}

impl Value {
    pub(crate) fn from_content(content: Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::I64(v) => Value::Number(Number::from(v)),
            Content::U64(v) => Value::Number(Number::from(v)),
            Content::F64(v) => Number::from_f64(v).map_or(Value::Null, Value::Number),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => {
                let mut map = Map::new();
                for (k, v) in entries {
                    map.insert(k, Value::from_content(v));
                }
                Value::Object(map)
            }
        }
    }

    pub(crate) fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Number(n) => n.into_content(),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(map) => {
                Content::Map(map.into_iter().map(|(k, v)| (k, v.into_content())).collect())
            }
        }
    }
}
