//! Sanity tests for the vendored serde_json: JSON text round-trips, escape
//! handling (including surrogate pairs), numbers, and derive shapes.

use serde::{Deserialize, Serialize};
use serde_json::Value;

#[test]
fn surrogate_pair_escapes_decode() {
    let v: Value = serde_json::from_str(r#"{"name":"😀"}"#).unwrap();
    assert_eq!(v["name"], "\u{1F600}");
}

#[test]
fn unpaired_surrogate_is_an_error() {
    assert!(serde_json::from_str::<Value>(r#""\ud83d""#).is_err());
    assert!(serde_json::from_str::<Value>(r#""\ud83dA""#).is_err());
}

#[test]
fn string_escapes_roundtrip() {
    let original = "line\nquote\"back\\slash\ttab\u{1F600}\u{7}";
    let json = serde_json::to_string(&original.to_owned()).unwrap();
    let back: String = serde_json::from_str(&json).unwrap();
    assert_eq!(back, original);
}

#[test]
fn numbers_roundtrip_with_type_fidelity() {
    let json = serde_json::to_string(&(-3i64, 7u64, 2.5f64, 4.0f64)).unwrap();
    let (a, b, c, d): (i64, u64, f64, f64) = serde_json::from_str(&json).unwrap();
    assert_eq!((a, b, c, d), (-3, 7, 2.5, 4.0));
    // Floats keep a trailing `.0` so they re-parse as floats.
    let v: Value = serde_json::from_str(&serde_json::to_string(&4.0f64).unwrap()).unwrap();
    assert!(matches!(v, Value::Number(n) if n.is_f64()));
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Plain {
    id: u32,
    name: String,
    weights: Vec<f32>,
    maybe: Option<String>,
}

#[test]
fn derived_struct_roundtrips() {
    let original =
        Plain { id: 9, name: "a \"quoted\" name".into(), weights: vec![1.5, -2.0], maybe: None };
    let json = serde_json::to_string(&original).unwrap();
    let back: Plain = serde_json::from_str(&json).unwrap();
    assert_eq!(back, original);
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op")]
enum Tagged {
    Ping,
    Put { key: String, value: u64 },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Untagged {
    Unit,
    Newtype(String),
    Pair(u32, u32),
    Struct { x: i64 },
}

#[test]
fn derived_enums_roundtrip() {
    for original in [Tagged::Ping, Tagged::Put { key: "k".into(), value: 3 }] {
        let json = serde_json::to_string(&original).unwrap();
        assert!(json.contains("\"op\""), "internally tagged: {json}");
        let back: Tagged = serde_json::from_str(&json).unwrap();
        assert_eq!(back, original);
    }
    for original in [
        Untagged::Unit,
        Untagged::Newtype("x".into()),
        Untagged::Pair(1, 2),
        Untagged::Struct { x: -5 },
    ] {
        let json = serde_json::to_string(&original).unwrap();
        let back: Untagged = serde_json::from_str(&json).unwrap();
        assert_eq!(back, original);
    }
}

#[test]
fn value_int_equality_has_no_false_positives() {
    // Regression: a failed conversion on both sides must not compare equal.
    assert!(Value::Null != u64::MAX);
    assert!(Value::String("x".into()) != u64::MAX);
    let big: Value = serde_json::from_str(&u64::MAX.to_string()).unwrap();
    assert_eq!(big, u64::MAX);
    assert!(big != u64::MAX - 1);
    assert!(big != 0i64);
}

#[test]
fn numeric_equality_matches_real_serde_json() {
    // Value vs f64 compares through f64, like real serde_json...
    let int3: Value = serde_json::from_str("3").unwrap();
    assert_eq!(int3, 3.0f64);
    // ...but Number-to-Number never equates ints with floats.
    let float3: Value = serde_json::from_str("3.0").unwrap();
    assert!(int3 != float3);
}

#[test]
fn out_of_range_floats_error_instead_of_saturating() {
    // Regression: `1e300` must not deserialize into u8 as 255.
    assert!(serde_json::from_str::<u8>("1e300").is_err());
    assert!(serde_json::from_str::<u64>("-1.0").is_err());
    assert_eq!(serde_json::from_str::<u8>("25.0").unwrap(), 25);
}

#[test]
fn missing_field_is_an_error() {
    let err = serde_json::from_str::<Plain>(r#"{"id":1,"name":"x","weights":[]}"#);
    assert!(err.is_err(), "missing `maybe` must not default");
}
