//! Completion latches: the synchronisation primitive blocked threads poll
//! (workers, which keep stealing while they wait) or sleep on (external
//! threads, which park on a condvar).

use kgnet_sync::atomic::{AtomicUsize, Ordering};
use kgnet_sync::{Condvar, Mutex};

/// Something a thread can wait for: workers poll [`Probe::probe`] between
/// stealing jobs, external threads call [`Probe::block_on`].
pub(crate) trait Probe {
    /// True once the awaited event has happened.
    fn probe(&self) -> bool;
    /// Sleep until the event happens (no helping).
    fn block_on(&self);
}

/// Counts outstanding jobs; waiters proceed when the count reaches zero.
pub(crate) struct CountLatch {
    count: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    /// Latch with `count` outstanding events.
    pub(crate) fn new(count: usize) -> Self {
        CountLatch { count: AtomicUsize::new(count), mutex: Mutex::new(()), cond: Condvar::new() }
    }

    /// Record one more outstanding event.
    pub(crate) fn increment(&self) {
        self.count.fetch_add(1, Ordering::AcqRel);
    }

    /// Record the completion of one event, waking sleepers on the last one.
    pub(crate) fn decrement(&self) {
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Taking the mutex orders this notification after any concurrent
            // probe-then-wait in `block_on`, so the wakeup cannot be lost.
            let _guard = self.mutex.lock();
            self.cond.notify_all();
        }
    }
}

impl Probe for CountLatch {
    fn probe(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }

    fn block_on(&self) {
        let mut guard = self.mutex.lock();
        while self.count.load(Ordering::Acquire) != 0 {
            guard = self.cond.wait(guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn latch_counts_down() {
        let latch = CountLatch::new(2);
        assert!(!latch.probe());
        latch.decrement();
        assert!(!latch.probe());
        latch.decrement();
        assert!(latch.probe());
    }

    #[test]
    fn block_on_wakes_external_waiter() {
        let latch = Arc::new(CountLatch::new(1));
        let l2 = Arc::clone(&latch);
        let t = std::thread::spawn(move || l2.block_on());
        std::thread::sleep(std::time::Duration::from_millis(10));
        latch.decrement();
        t.join().unwrap();
        assert!(latch.probe());
    }
}
