//! Offline stand-in for `rayon`: a real work-stealing thread pool over
//! `std::thread`, covering the API subset this workspace uses.
//!
//! What's here, and faithful to the upstream crate:
//!
//! * [`join`] — potentially-parallel fork/join of two closures;
//! * [`scope`]/[`Scope::spawn`] — structured tasks that may borrow the stack;
//! * [`spawn`] — fire-and-forget `'static` tasks;
//! * [`ThreadPool`]/[`ThreadPoolBuilder`] — dedicated pools with
//!   [`ThreadPool::install`];
//! * a global pool, lazily started, sized by `RAYON_NUM_THREADS` (or the
//!   machine's available parallelism);
//! * the parallel-iterator subset in [`iter`]: `par_iter`, `par_chunks`,
//!   `par_chunks_mut`, ranges, `map`/`for_each`/`sum`/`reduce`/`collect`/
//!   `enumerate`.
//!
//! Scheduling is a classic work-stealing design: each worker owns a LIFO
//! deque and steals FIFO from its peers, so the deepest splits run locally
//! (cache-friendly) while thieves pick up the largest pending subtrees. A
//! worker that blocks on a `join`/`scope` result *helps* — it keeps
//! executing queued jobs until its latch opens — which makes arbitrarily
//! nested parallelism deadlock-free.
//!
//! Determinism note: with `RAYON_NUM_THREADS=1` (or a one-thread
//! [`ThreadPool`]) every operation degenerates to strict sequential
//! execution in submission order. The combining tree of `sum`/`reduce`
//! depends only on input length and pool size — never on runtime
//! interleaving — so repeated runs on the same pool are bit-identical, and
//! order-preserving operations (`map`+`collect`, `for_each` over disjoint
//! chunks) are bit-identical across *any* pool size.

mod latch;
mod registry;
mod scope;

pub mod iter;

/// The traits needed to call the parallel-iterator methods.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

pub use registry::{
    current_num_threads, current_thread_index, global_pool_stats, PoolStats, ThreadPool,
    ThreadPoolBuildError, ThreadPoolBuilder,
};
pub use scope::{scope, Scope};

use kgnet_sync::{Arc, Mutex};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use latch::CountLatch;
use registry::{Job, Registry};

/// The queued half of a `join`: the closure waits in a pool queue until it
/// is claimed — by a thief, or by the submitting thread once it finishes the
/// other half. The `Mutex<Option<_>>` is the claim: `take()` transfers
/// ownership to exactly one executor, and a queue entry that loses the race
/// simply becomes a no-op.
struct JobSlot<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<std::thread::Result<R>>>,
    latch: CountLatch,
}

impl<F, R> JobSlot<F, R>
where
    F: FnOnce() -> R,
{
    fn new(func: F) -> Self {
        JobSlot {
            func: Mutex::new(Some(func)),
            result: Mutex::new(None),
            latch: CountLatch::new(1),
        }
    }

    /// Execute if not yet claimed (the path taken by a thief).
    fn run_queued(&self) {
        let Some(func) = self.func.lock().take() else { return };
        let result = catch_unwind(AssertUnwindSafe(func));
        *self.result.lock() = Some(result);
        self.latch.decrement();
    }
}

/// Ensures the queued half of a `join` can no longer touch the caller's
/// stack if `oper_a` unwinds: on drop, either claim-and-discard the closure
/// or wait for the thief that is running it.
struct JoinAbortGuard<'a, F, R> {
    slot: &'a Arc<JobSlot<F, R>>,
    registry: &'a Arc<Registry>,
    armed: bool,
}

impl<F, R> Drop for JoinAbortGuard<'_, F, R> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Some(func) = self.slot.func.lock().take() {
            drop(func);
            self.slot.latch.decrement();
        } else {
            self.registry.wait_until(&self.slot.latch);
        }
    }
}

/// Run both closures, potentially in parallel, and return both results.
///
/// `oper_b` is published to the current pool while the calling thread runs
/// `oper_a`; if no other worker has claimed it by then, the caller runs it
/// inline (so a busy pool degrades to plain sequential execution rather
/// than blocking). Panics from either closure propagate to the caller. On a
/// one-thread pool this is exactly `(oper_a(), oper_b())`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = Registry::current();
    if registry.num_threads() == 1 {
        return (oper_a(), oper_b());
    }

    let slot = Arc::new(JobSlot::new(oper_b));
    {
        let slot = Arc::clone(&slot);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || slot.run_queued());
        // SAFETY: `join` does not return (or unwind — see JoinAbortGuard)
        // until the closure in the slot has been claimed and executed or
        // discarded, so the borrows erased here never outlive their data. A
        // stale queue entry left behind after an inline claim only touches
        // the slot's claim mutex (kept alive by its Arc) and is a no-op.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(job)
        };
        registry.push(job);
    }

    let mut guard = JoinAbortGuard { slot: &slot, registry: &registry, armed: true };
    let ra = oper_a();
    guard.armed = false;
    drop(guard);

    let claimed = slot.func.lock().take();
    match claimed {
        Some(func) => {
            // Not stolen: run inline on the submitting thread.
            let result = catch_unwind(AssertUnwindSafe(func));
            *slot.result.lock() = Some(result);
            slot.latch.decrement();
        }
        None => registry.wait_until(&slot.latch),
    }

    let rb = slot.result.lock().take().expect("join: missing result for stolen closure");
    match rb {
        Ok(rb) => (ra, rb),
        Err(panic) => resume_unwind(panic),
    }
}

/// Queue fire-and-forget work on the current pool. Panics in `op` are
/// swallowed (matching rayon's "does not propagate" contract closely enough
/// for this workspace; upstream aborts the process instead).
pub fn spawn<F>(op: F)
where
    F: FnOnce() + Send + 'static,
{
    let job: Job = Box::new(move || {
        let _ = catch_unwind(AssertUnwindSafe(op));
    });
    Registry::current().push(job);
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = join(|| 6 * 7, || "b".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "b");
    }

    fn par_fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        if n < 10 {
            return par_fib(n - 1) + par_fib(n - 2);
        }
        let (a, b) = join(|| par_fib(n - 1), || par_fib(n - 2));
        a + b
    }

    #[test]
    fn nested_join_computes_fib() {
        assert_eq!(par_fib(20), 6765);
    }

    #[test]
    fn join_borrows_stack_data() {
        let xs = [1u64, 2, 3, 4, 5];
        let (front, back) = join(|| xs[..2].iter().sum::<u64>(), || xs[2..].iter().sum::<u64>());
        assert_eq!(front + back, 15);
    }

    #[test]
    fn join_propagates_panic_from_second_closure() {
        let caught = std::panic::catch_unwind(|| {
            join(|| 1, || panic!("boom in b"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn join_propagates_panic_from_first_closure() {
        let caught = std::panic::catch_unwind(|| {
            join(|| panic!("boom in a"), || 1);
        });
        assert!(caught.is_err());
    }

    #[test]
    fn scope_spawn_completes_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scope_nested_spawns_complete() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_propagates_task_panic() {
        let caught = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("task panic"));
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn dedicated_pool_install_and_size() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let n = pool.install(current_num_threads);
        assert_eq!(n, 3);
        // Outside install we are back to the global default.
        assert!(current_thread_index().is_none());
    }

    #[test]
    fn one_thread_pool_runs_everything() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let total: u64 = pool.install(|| {
            let xs: Vec<u64> = (0..1000).collect();
            xs.par_iter().map(|&x| x * 2).sum()
        });
        assert_eq!(total, 999 * 1000);
    }

    #[test]
    fn pool_join_executes_on_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.join(|| par_fib(15), || par_fib(16));
        assert_eq!((a, b), (610, 987));
    }

    #[test]
    fn pool_scope_and_spawn() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn nested_pools_target_correct_registry() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let (o, i) = outer.install(|| {
            let o = current_num_threads();
            let i = inner.install(current_num_threads);
            (o, i)
        });
        assert_eq!((o, i), (2, 3));
    }

    #[test]
    fn spawn_fire_and_forget_runs() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let before = HITS.load(Ordering::SeqCst);
        spawn(|| {
            HITS.fetch_add(1, Ordering::SeqCst);
        });
        for _ in 0..2000 {
            if HITS.load(Ordering::SeqCst) > before {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("spawned job never ran");
    }

    #[test]
    fn pool_stats_track_work_and_stay_coherent() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let idle = pool.stats();
        assert_eq!(idle.n_threads, 3);
        assert_eq!(idle.jobs_executed, 0);
        // Scope-spawned tasks can only run on the pool's workers (the
        // caller blocks on the scope latch), so execution is guaranteed to
        // be counted — unlike `join`, whose queued half the caller may
        // claim inline.
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        let busy = pool.stats();
        assert!(busy.jobs_executed > 0, "no jobs counted: {busy:?}");
        assert!(busy.busy_nanos > 0, "no busy time recorded: {busy:?}");
        assert!(busy.wall_nanos >= idle.wall_nanos);
        // The invariant ResourceUsage attribution relies on.
        assert!(busy.busy_nanos <= busy.wall_nanos.saturating_mul(3), "stats: {busy:?}");
        assert_eq!(busy.busy_nanos + busy.idle_nanos, busy.wall_nanos * 3);
        assert!(busy.utilization() >= 0.0 && busy.utilization() <= 1.0);
        // Quiescent pool: nothing left queued.
        assert_eq!(busy.injector_depth + busy.deque_depth, 0);
        // The global pool answers too.
        let g = global_pool_stats();
        assert!(g.n_threads >= 1);
    }

    #[test]
    fn build_global_second_call_errors() {
        // The global pool may already exist (other tests use it); all this
        // asserts is that at most one build_global can ever succeed.
        let first = ThreadPoolBuilder::new().num_threads(2).build_global();
        let second = ThreadPoolBuilder::new().num_threads(2).build_global();
        assert!(second.is_err() || first.is_ok());
        assert!(ThreadPoolBuilder::new().num_threads(2).build_global().is_err());
    }

    #[test]
    fn heavy_fanout_under_contention() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let sums: Vec<u64> = pool.install(|| {
            let rows: Vec<u64> = (0..512).collect();
            rows.par_iter().map(|&r| (0..1000u64).map(|c| r * c % 97).sum()).collect()
        });
        assert_eq!(sums.len(), 512);
        let reference: u64 =
            (0..512u64).map(|r| (0..1000u64).map(|c| r * c % 97).sum::<u64>()).sum();
        assert_eq!(sums.iter().sum::<u64>(), reference);
    }
}
