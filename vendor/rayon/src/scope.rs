//! Structured fork-join scopes: spawn borrowed tasks, wait for all of them.

use kgnet_sync::{Arc, Mutex};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::latch::CountLatch;
use crate::registry::{Job, Registry};

struct ScopeState {
    registry: Arc<Registry>,
    /// Starts at 1 for the scope body itself; each spawn adds one.
    latch: CountLatch,
    /// First panic raised by a spawned task, rethrown when the scope ends.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A spawn handle passed to the closure of [`scope`]; tasks may borrow
/// anything that outlives `'scope`.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

/// Create a fork-join scope: `op` may spawn tasks borrowing from the
/// enclosing stack frame, and `scope` only returns once every spawned task
/// (including nested spawns) has completed. Panics from tasks are rethrown.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let registry = Registry::current();
    let state = Arc::new(ScopeState {
        registry: Arc::clone(&registry),
        latch: CountLatch::new(1),
        panic: Mutex::new(None),
    });
    let scope = Scope { state: Arc::clone(&state), _marker: PhantomData };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Whatever happened in the body, every spawned task must finish before
    // the borrows in `'scope` can expire.
    state.latch.decrement();
    registry.wait_until(&state.latch);
    if let Some(panic) = state.panic.lock().take() {
        resume_unwind(panic);
    }
    match result {
        Ok(r) => r,
        Err(panic) => resume_unwind(panic),
    }
}

impl<'scope> Scope<'scope> {
    /// Queue a task on the scope's pool. The task may itself spawn onto the
    /// scope it receives.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.latch.increment();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope { state: Arc::clone(&state), _marker: PhantomData };
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                state.panic.lock().get_or_insert(panic);
            }
            state.latch.decrement();
        });
        // SAFETY: `scope` waits on the latch before returning, so this job
        // runs to completion while every `'scope` borrow it captures is
        // still live; the erased lifetime is never actually exceeded.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.state.registry.push(job);
    }
}
