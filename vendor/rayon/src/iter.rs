//! Parallel iterators: the subset of rayon's `iter` module this workspace
//! uses, built on recursive [`crate::join`] splitting.
//!
//! Pipelines are driven by splitting an indexed *producer* (slice, chunk
//! list, range) down to leaf ranges, folding each leaf sequentially with a
//! *consumer*, and combining adjacent partial results in index order. The
//! split tree depends only on input length and pool size — not on runtime
//! interleaving — so order-preserving operations (`map` + `collect`,
//! `for_each` over `par_chunks_mut`) produce bit-identical results on any
//! pool size, and `sum`/`reduce` are reproducible for a fixed pool size.

use std::marker::PhantomData;
use std::ops::Range;

use crate::join;

// ---------------------------------------------------------------------------
// Plumbing: producers, consumers, and the recursive driver.
// ---------------------------------------------------------------------------

/// A splittable, indexed source of items (internal plumbing, public only so
/// source types can name it in trait impls).
pub trait Producer: Sized + Send {
    /// Item produced.
    type Item: Send;
    /// Sequential iterator over one leaf range.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Items remaining in this producer.
    fn len(&self) -> usize;
    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Sequential traversal of a leaf.
    fn seq_iter(self) -> Self::IntoIter;
}

/// Folds leaf iterators and combines adjacent partial results in index
/// order (internal plumbing). Consumers are tiny `Copy` handles (shared
/// references to closures), duplicated freely across the split tree.
pub trait Consumer<Item>: Copy + Send {
    /// Partial (and final) result type.
    type Result: Send;
    /// Fold one sequential leaf.
    fn consume_iter<I: Iterator<Item = Item>>(self, iter: I) -> Self::Result;
    /// Combine an adjacent left/right pair, left side first.
    fn combine(self, left: Self::Result, right: Self::Result) -> Self::Result;
}

fn drive_producer<P: Producer, C: Consumer<P::Item>>(
    producer: P,
    consumer: C,
    min_len: usize,
) -> C::Result {
    // Aim for ~4 leaves per worker so stealing can rebalance uneven leaf
    // costs, but never split below the requested minimum leaf size.
    let pieces = 4 * crate::current_num_threads();
    let threshold = producer.len().div_ceil(pieces.max(1)).max(min_len).max(1);
    drive_rec(producer, consumer, threshold)
}

fn drive_rec<P: Producer, C: Consumer<P::Item>>(
    producer: P,
    consumer: C,
    threshold: usize,
) -> C::Result {
    if producer.len() <= threshold {
        consumer.consume_iter(producer.seq_iter())
    } else {
        let mid = producer.len() / 2;
        let (left, right) = producer.split_at(mid);
        let (l, r) = join(
            move || drive_rec(left, consumer, threshold),
            move || drive_rec(right, consumer, threshold),
        );
        consumer.combine(l, r)
    }
}

// ---------------------------------------------------------------------------
// The iterator traits.
// ---------------------------------------------------------------------------

/// A potentially-parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Item yielded.
    type Item: Send;

    /// Drive the pipeline with a consumer (internal plumbing).
    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result;

    /// Transform every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Run `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.drive(ForEachConsumer { f: &f });
    }

    /// Sum all items. The combining tree is fixed by input length and pool
    /// size, so results are reproducible run-to-run on the same pool.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        self.drive(SumConsumer { _marker: PhantomData::<fn() -> S> })
    }

    /// Reduce items with `op`, seeding each leaf fold with `identity()`.
    /// `op` must be associative and `identity()` its neutral element.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.drive(ReduceConsumer { identity: &identity, op: &op })
    }

    /// Collect into a collection, preserving item order (`Vec` supported).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Number of items.
    fn count(self) -> usize {
        self.map(|_| 1usize).sum()
    }
}

/// Collections buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build from the given iterator, preserving item order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.drive(CollectConsumer { _marker: PhantomData::<fn() -> T> })
    }
}

/// Source iterators backed by an indexed, random-access producer; these
/// additionally support [`IndexedParallelIterator::enumerate`] and leaf-size
/// control.
pub trait IndexedParallelIterator: ParallelIterator {
    /// The backing producer type (internal plumbing).
    type Producer: Producer<Item = Self::Item>;

    /// Minimum leaf size currently configured.
    fn min_len(&self) -> usize;
    /// Convert into the backing producer.
    fn into_producer(self) -> Self::Producer;

    /// Pair every item with its index (chunk index for chunked sources).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Never split below `min` items per leaf (bounds scheduling overhead
    /// for cheap per-item work).
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }
}

// ---------------------------------------------------------------------------
// Consumers.
// ---------------------------------------------------------------------------

struct ForEachConsumer<'f, F> {
    f: &'f F,
}

impl<F> Clone for ForEachConsumer<'_, F> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<F> Copy for ForEachConsumer<'_, F> {}

impl<T, F> Consumer<T> for ForEachConsumer<'_, F>
where
    F: Fn(T) + Sync,
{
    type Result = ();

    fn consume_iter<I: Iterator<Item = T>>(self, iter: I) {
        for item in iter {
            (self.f)(item);
        }
    }

    fn combine(self, (): (), (): ()) {}
}

struct MapConsumer<'f, C, F> {
    inner: C,
    f: &'f F,
}

impl<C: Copy, F> Clone for MapConsumer<'_, C, F> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C: Copy, F> Copy for MapConsumer<'_, C, F> {}

impl<T, R, C, F> Consumer<T> for MapConsumer<'_, C, F>
where
    R: Send,
    C: Consumer<R>,
    F: Fn(T) -> R + Sync,
{
    type Result = C::Result;

    fn consume_iter<I: Iterator<Item = T>>(self, iter: I) -> C::Result {
        self.inner.consume_iter(iter.map(self.f))
    }

    fn combine(self, left: C::Result, right: C::Result) -> C::Result {
        self.inner.combine(left, right)
    }
}

struct SumConsumer<S> {
    _marker: PhantomData<fn() -> S>,
}

impl<S> Clone for SumConsumer<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for SumConsumer<S> {}

impl<T, S> Consumer<T> for SumConsumer<S>
where
    T: Send,
    S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
{
    type Result = S;

    fn consume_iter<I: Iterator<Item = T>>(self, iter: I) -> S {
        iter.sum()
    }

    fn combine(self, left: S, right: S) -> S {
        std::iter::once(left).chain(std::iter::once(right)).sum()
    }
}

struct ReduceConsumer<'f, ID, OP> {
    identity: &'f ID,
    op: &'f OP,
}

impl<ID, OP> Clone for ReduceConsumer<'_, ID, OP> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<ID, OP> Copy for ReduceConsumer<'_, ID, OP> {}

impl<T, ID, OP> Consumer<T> for ReduceConsumer<'_, ID, OP>
where
    T: Send,
    ID: Fn() -> T + Sync,
    OP: Fn(T, T) -> T + Sync,
{
    type Result = T;

    fn consume_iter<I: Iterator<Item = T>>(self, iter: I) -> T {
        iter.fold((self.identity)(), |a, b| (self.op)(a, b))
    }

    fn combine(self, left: T, right: T) -> T {
        (self.op)(left, right)
    }
}

struct CollectConsumer<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for CollectConsumer<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for CollectConsumer<T> {}

impl<T: Send> Consumer<T> for CollectConsumer<T> {
    type Result = Vec<T>;

    fn consume_iter<I: Iterator<Item = T>>(self, iter: I) -> Vec<T> {
        iter.collect()
    }

    fn combine(self, mut left: Vec<T>, right: Vec<T>) -> Vec<T> {
        left.extend(right);
        left
    }
}

// ---------------------------------------------------------------------------
// Adaptors.
// ---------------------------------------------------------------------------

/// Mapped parallel iterator; see [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive<C: Consumer<R>>(self, consumer: C) -> C::Result {
        let f = self.f;
        self.base.drive(MapConsumer { inner: consumer, f: &f })
    }
}

/// Index-pairing adaptor; see [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

/// Producer for [`Enumerate`].
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = std::iter::Zip<std::ops::RangeFrom<usize>, P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            EnumerateProducer { base: l, offset: self.offset },
            EnumerateProducer { base: r, offset: self.offset + mid },
        )
    }

    fn seq_iter(self) -> Self::IntoIter {
        (self.offset..).zip(self.base.seq_iter())
    }
}

impl<I: IndexedParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result {
        let min_len = self.base.min_len();
        let producer = EnumerateProducer { base: self.base.into_producer(), offset: 0 };
        drive_producer(producer, consumer, min_len)
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type Producer = EnumerateProducer<I::Producer>;

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn into_producer(self) -> Self::Producer {
        EnumerateProducer { base: self.base.into_producer(), offset: 0 }
    }
}

/// Leaf-size bounding adaptor; see [`IndexedParallelIterator::with_min_len`].
pub struct MinLen<I> {
    base: I,
    min: usize,
}

impl<I: IndexedParallelIterator> ParallelIterator for MinLen<I> {
    type Item = I::Item;

    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result {
        let min_len = self.min_len();
        drive_producer(self.base.into_producer(), consumer, min_len)
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for MinLen<I> {
    type Producer = I::Producer;

    fn min_len(&self) -> usize {
        self.base.min_len().max(self.min)
    }

    fn into_producer(self) -> Self::Producer {
        self.base.into_producer()
    }
}

// ---------------------------------------------------------------------------
// Sources: slices, chunks, mutable chunks, ranges.
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`; see [`IntoParallelRefIterator::par_iter`].
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

/// Producer for [`Iter`].
pub struct IterProducer<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for IterProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(mid);
        (IterProducer { slice: l }, IterProducer { slice: r })
    }

    fn seq_iter(self) -> Self::IntoIter {
        self.slice.iter()
    }
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result {
        drive_producer(IterProducer { slice: self.slice }, consumer, 1)
    }
}

impl<'a, T: Sync> IndexedParallelIterator for Iter<'a, T> {
    type Producer = IterProducer<'a, T>;

    fn min_len(&self) -> usize {
        1
    }

    fn into_producer(self) -> Self::Producer {
        IterProducer { slice: self.slice }
    }
}

/// Parallel iterator over immutable chunks; see [`ParallelSlice::par_chunks`].
pub struct Chunks<'a, T: Sync> {
    slice: &'a [T],
    chunk: usize,
}

/// Producer for [`Chunks`].
pub struct ChunksProducer<'a, T: Sync> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            ChunksProducer { slice: l, chunk: self.chunk },
            ChunksProducer { slice: r, chunk: self.chunk },
        )
    }

    fn seq_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.chunk)
    }
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result {
        drive_producer(ChunksProducer { slice: self.slice, chunk: self.chunk }, consumer, 1)
    }
}

impl<'a, T: Sync> IndexedParallelIterator for Chunks<'a, T> {
    type Producer = ChunksProducer<'a, T>;

    fn min_len(&self) -> usize {
        1
    }

    fn into_producer(self) -> Self::Producer {
        ChunksProducer { slice: self.slice, chunk: self.chunk }
    }
}

/// Parallel iterator over mutable chunks; see
/// [`ParallelSliceMut::par_chunks_mut`].
pub struct ChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

/// Producer for [`ChunksMut`].
pub struct ChunksMutProducer<'a, T: Send> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksMutProducer { slice: l, chunk: self.chunk },
            ChunksMutProducer { slice: r, chunk: self.chunk },
        )
    }

    fn seq_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.chunk)
    }
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> C::Result {
        drive_producer(ChunksMutProducer { slice: self.slice, chunk: self.chunk }, consumer, 1)
    }
}

impl<'a, T: Send> IndexedParallelIterator for ChunksMut<'a, T> {
    type Producer = ChunksMutProducer<'a, T>;

    fn min_len(&self) -> usize {
        1
    }

    fn into_producer(self) -> Self::Producer {
        ChunksMutProducer { slice: self.slice, chunk: self.chunk }
    }
}

/// Parallel iterator over an index range.
pub struct RangeIter {
    range: Range<usize>,
}

/// Producer for [`RangeIter`].
pub struct RangeProducer {
    range: Range<usize>,
}

impl Producer for RangeProducer {
    type Item = usize;
    type IntoIter = Range<usize>;

    fn len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = self.range.start + mid;
        (RangeProducer { range: self.range.start..at }, RangeProducer { range: at..self.range.end })
    }

    fn seq_iter(self) -> Self::IntoIter {
        self.range
    }
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn drive<C: Consumer<usize>>(self, consumer: C) -> C::Result {
        drive_producer(RangeProducer { range: self.range }, consumer, 1)
    }
}

impl IndexedParallelIterator for RangeIter {
    type Producer = RangeProducer;

    fn min_len(&self) -> usize {
        1
    }

    fn into_producer(self) -> Self::Producer {
        RangeProducer { range: self.range }
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits.
// ---------------------------------------------------------------------------

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item yielded.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = Iter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        Iter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = Iter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        Iter { slice: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> Self::Iter {
        RangeIter { range: self }
    }
}

/// `par_iter()` on shared references (blanket over [`IntoParallelIterator`]
/// for `&Self`, so it covers slices and `Vec`s).
pub trait IntoParallelRefIterator<'data> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item yielded (a shared reference).
    type Item: Send + 'data;
    /// Iterate in parallel by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_chunks()` over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized pieces (last may be short).
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Chunks { slice: self, chunk: chunk_size }
    }
}

/// `par_chunks_mut()` over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable `chunk_size`-sized pieces.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut { slice: self, chunk: chunk_size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_iter_sum_matches_sequential() {
        let xs: Vec<u64> = (0..10_000).collect();
        let par: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(par, xs.iter().sum::<u64>());
    }

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..5_000).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 5_000);
        for (i, &v) in doubled.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let idx: Vec<usize> = (0..hits.len()).collect();
        idx.par_iter().for_each(|&i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn par_chunks_sees_every_chunk() {
        let xs: Vec<u32> = (0..1000).collect();
        let partials: Vec<u64> =
            xs.par_chunks(64).map(|c| c.iter().map(|&v| v as u64).sum()).collect();
        assert_eq!(partials.len(), 1000usize.div_ceil(64));
        assert_eq!(partials.iter().sum::<u64>(), (0..1000u64).sum());
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_disjoint_chunks() {
        let mut xs = vec![0usize; 1003];
        xs.par_chunks_mut(100).enumerate().for_each(|(ci, chunk)| {
            for v in chunk {
                *v = ci;
            }
        });
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v, i / 100);
        }
    }

    #[test]
    fn enumerate_indices_are_global() {
        let xs = [7u8; 777];
        let idx: Vec<usize> = xs.as_slice().par_iter().enumerate().map(|(i, _)| i).collect();
        let want: Vec<usize> = (0..777).collect();
        assert_eq!(idx, want);
    }

    #[test]
    fn range_into_par_iter_count_and_sum() {
        assert_eq!((0..12345usize).into_par_iter().count(), 12345);
        let s: usize = (0..1000usize).into_par_iter().map(|i| i % 7).sum();
        assert_eq!(s, (0..1000usize).map(|i| i % 7).sum());
    }

    #[test]
    fn reduce_computes_max() {
        let xs: Vec<i64> = (0..4096).map(|i| (i * 37) % 1013).collect();
        let max = xs.par_iter().map(|&x| x).reduce(|| i64::MIN, i64::max);
        assert_eq!(max, *xs.iter().max().unwrap());
    }

    #[test]
    fn with_min_len_bounds_leaves() {
        // Functional check only: results must be unaffected by leaf size.
        let xs: Vec<u64> = (0..513).collect();
        let a: u64 = xs.par_iter().with_min_len(128).map(|&x| x).sum();
        let b: u64 = xs.par_iter().with_min_len(1).map(|&x| x).sum();
        let seq: u64 = xs.iter().sum();
        assert_eq!(a, seq);
        assert_eq!(b, seq);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let xs: Vec<u32> = Vec::new();
        assert_eq!(xs.par_iter().count(), 0);
        let collected: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(collected.is_empty());
        let mut ys: Vec<u32> = Vec::new();
        ys.par_chunks_mut(8).for_each(|c| {
            for v in c {
                *v = 1;
            }
        });
    }

    #[test]
    fn float_sum_is_reproducible_on_same_pool() {
        let xs: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
        let a: f32 = xs.par_iter().map(|&x| x).sum();
        let b: f32 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
