//! The work-stealing scheduler.
//!
//! A [`Registry`] owns one LIFO deque per worker thread plus a shared FIFO
//! injector for jobs submitted from outside the pool. Workers pop their own
//! deque from the back (depth-first, cache-friendly), steal from the front
//! of other deques (breadth-first, taking the largest pending subtrees), and
//! park on a condvar when the whole pool is idle. Waiting for a latch from a
//! worker thread *helps*: the worker keeps executing other jobs until the
//! latch opens, which is what makes nested `join`/`scope` calls deadlock-free.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::OnceLock;

use kgnet_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use kgnet_sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// Plain std atomic for the measurement-only counters below: they carry no
// synchronisation role, so they must not become schedule points when the
// workspace is compiled under the `kgnet_check` model checker (which
// instruments every `kgnet_sync::atomic` operation).
use std::sync::atomic::AtomicU64 as StatU64;

use crate::latch::Probe;

/// A type-erased unit of work. Lifetime erasure happens at the `join`/`scope`
/// layer, which guarantees the job runs (or is claimed and dropped) before
/// the borrows it captures expire.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

pub(crate) struct Registry {
    /// One deque per worker: owner pushes/pops the back, thieves pop the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted from threads that are not workers of this pool.
    injector: Mutex<VecDeque<Job>>,
    /// Queued-but-unclaimed job count; gates worker sleep.
    pending: AtomicUsize,
    /// Cumulative successful steals (observability; exercised by tests).
    steals: AtomicUsize,
    terminate: AtomicBool,
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
    n_threads: usize,
    /// When the pool started; anchors `PoolStats::wall_nanos`.
    started: Instant,
    /// Jobs claimed and executed by this pool's workers.
    jobs_executed: StatU64,
    /// Per-worker nanoseconds spent executing jobs (outermost jobs only, so
    /// helping-while-waiting never double-counts an interval).
    busy_nanos: Vec<StatU64>,
}

/// Point-in-time scheduler counters for one pool, sampled without blocking
/// (queue depths come from an atomic plus a try-lock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub n_threads: usize,
    /// Jobs executed by the pool's workers since the pool started.
    pub jobs_executed: u64,
    /// Cumulative successful steals between workers.
    pub steals: u64,
    /// Jobs waiting in the external-submission injector right now.
    pub injector_depth: usize,
    /// Jobs waiting in the workers' own deques right now.
    pub deque_depth: usize,
    /// Total worker nanoseconds spent executing jobs (≤ `wall_nanos` ×
    /// `n_threads` by construction).
    pub busy_nanos: u64,
    /// Total worker nanoseconds *not* spent executing jobs.
    pub idle_nanos: u64,
    /// Nanoseconds since the pool started.
    pub wall_nanos: u64,
}

impl PoolStats {
    /// Busy fraction of the pool's total thread-time, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.busy_nanos + self.idle_nanos;
        if capacity == 0 {
            return 0.0;
        }
        self.busy_nanos as f64 / capacity as f64
    }
}

struct WorkerCtx {
    registry: Arc<Registry>,
    index: usize,
}

thread_local! {
    /// Set once at worker startup; identifies the pool a thread serves.
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
    /// Nesting depth of timed job execution on this thread. A worker that
    /// helps while waiting runs jobs *inside* a job; only the outermost
    /// interval is timed, keeping per-worker busy time ≤ wall time.
    static BUSY_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Stack of `ThreadPool::install` scopes (innermost last). Job execution
    /// also pushes the owning registry so nested operations stay in-pool.
    static INSTALLED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// Pops the top of the `INSTALLED` stack on drop (unwind-safe).
struct InstallGuard;

impl InstallGuard {
    fn push(registry: Arc<Registry>) -> InstallGuard {
        INSTALLED.with(|s| s.borrow_mut().push(registry));
        InstallGuard
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|s| s.borrow_mut().pop());
    }
}

/// Times one job execution into the worker's busy counter. Only the
/// outermost timer on a thread holds a start instant; recording happens on
/// drop so a panicking job still accounts its time.
struct BusyTimer<'a> {
    registry: &'a Registry,
    index: usize,
    t0: Option<Instant>,
}

impl<'a> BusyTimer<'a> {
    fn start(registry: &'a Registry, index: usize) -> BusyTimer<'a> {
        let outermost = BUSY_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth == 0
        });
        BusyTimer { registry, index, t0: outermost.then(Instant::now) }
    }
}

impl Drop for BusyTimer<'_> {
    fn drop(&mut self) {
        BUSY_DEPTH.with(|d| d.set(d.get() - 1));
        if let Some(t0) = self.t0 {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.registry.busy_nanos[self.index]
                .fetch_add(nanos, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl Registry {
    fn new(n_threads: usize) -> (Arc<Registry>, Vec<kgnet_sync::thread::JoinHandle<()>>) {
        let n_threads = n_threads.max(1);
        let registry = Arc::new(Registry {
            deques: (0..n_threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
            n_threads,
            started: Instant::now(),
            jobs_executed: StatU64::new(0),
            busy_nanos: (0..n_threads).map(|_| StatU64::new(0)).collect(),
        });
        let handles = (0..n_threads)
            .map(|index| {
                let registry = Arc::clone(&registry);
                kgnet_sync::thread::Builder::new()
                    .name(format!("kgnet-rayon-{index}"))
                    .spawn(move || worker_loop(registry, index))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        (registry, handles)
    }

    /// The registry operations on the current thread should target: the
    /// innermost `install` scope, else the pool this thread serves as a
    /// worker, else the lazily-started global pool.
    pub(crate) fn current() -> Arc<Registry> {
        if let Some(r) = INSTALLED.with(|s| s.borrow().last().cloned()) {
            return r;
        }
        if let Some(r) = WORKER.with(|w| w.borrow().as_ref().map(|ctx| Arc::clone(&ctx.registry))) {
            return r;
        }
        Arc::clone(global_registry())
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// Number of successful steals so far (tests/observability).
    pub(crate) fn steal_count(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// Index of the current thread within this pool, if it is one of its
    /// workers.
    pub(crate) fn current_worker_index(self: &Arc<Self>) -> Option<usize> {
        WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .and_then(|ctx| Arc::ptr_eq(&ctx.registry, self).then_some(ctx.index))
        })
    }

    /// Queue a job: onto the local deque when called from one of this pool's
    /// workers, onto the shared injector otherwise.
    pub(crate) fn push(self: &Arc<Self>, job: Job) {
        match self.current_worker_index() {
            Some(i) => self.deques[i].lock().push_back(job),
            None => self.injector.lock().push_back(job),
        }
        self.pending.fetch_add(1, Ordering::Release);
        // Lock-then-notify orders the wakeup after a worker's probe-then-wait,
        // so a worker deciding to sleep cannot miss this job.
        drop(self.sleep_mutex.lock());
        self.sleep_cond.notify_one();
    }

    /// Take one queued job: own deque back, then injector front, then steal
    /// from the front of the other workers' deques.
    fn find_work(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            let job = self.deques[i].lock().pop_back();
            if let Some(job) = job {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        let job = self.injector.lock().pop_front();
        if let Some(job) = job {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if me == Some(victim) {
                continue;
            }
            let job = self.deques[victim].lock().pop_front();
            if let Some(job) = job {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Run a job in the context of this registry (nested `join`/`par_iter`
    /// calls inside the job target the pool that owns it, not whatever
    /// `install` scope the executing thread happens to be inside).
    fn execute(self: &Arc<Self>, job: Job) {
        let _guard = InstallGuard::push(Arc::clone(self));
        match self.current_worker_index() {
            Some(index) => {
                self.jobs_executed.fetch_add(1, Ordering::Relaxed);
                let _timer = BusyTimer::start(self, index);
                job();
            }
            None => job(),
        }
    }

    /// Sample this pool's scheduler counters without blocking: queue depths
    /// come from the `pending` atomic plus a try-lock on the injector, so a
    /// stats scrape can never stall the scheduler (and vice versa).
    pub(crate) fn stats(&self) -> PoolStats {
        let wall = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let capacity = wall.saturating_mul(self.n_threads as u64);
        let busy: u64 = self
            .busy_nanos
            .iter()
            .map(|b| b.load(std::sync::atomic::Ordering::Relaxed))
            .sum::<u64>()
            .min(capacity);
        let pending = self.pending.load(Ordering::Acquire);
        let injector_depth = self.injector_depth();
        PoolStats {
            n_threads: self.n_threads,
            jobs_executed: self.jobs_executed.load(std::sync::atomic::Ordering::Relaxed),
            steals: self.steal_count() as u64,
            injector_depth,
            deque_depth: pending.saturating_sub(injector_depth),
            busy_nanos: busy,
            idle_nanos: capacity - busy,
            wall_nanos: wall,
        }
    }

    /// Injector length without blocking. Under the model checker the facade
    /// mutex has no try path, so take the lock — determinism is the point
    /// there, not scrape latency.
    #[cfg(not(kgnet_check))]
    fn injector_depth(&self) -> usize {
        self.injector.try_lock().map_or(0, |g| g.len())
    }

    #[cfg(kgnet_check)]
    fn injector_depth(&self) -> usize {
        self.injector.lock().len()
    }

    /// Wait for `probe` to open. Workers of this pool keep executing queued
    /// jobs while they wait; other threads sleep on the latch.
    pub(crate) fn wait_until<P: Probe>(self: &Arc<Self>, probe: &P) {
        match self.current_worker_index() {
            Some(i) => {
                let mut idle = 0u32;
                while !probe.probe() {
                    if let Some(job) = self.find_work(Some(i)) {
                        self.execute(job);
                        idle = 0;
                    } else if idle < 64 {
                        idle += 1;
                        std::hint::spin_loop();
                    } else {
                        kgnet_sync::thread::yield_now();
                    }
                }
            }
            None => probe.block_on(),
        }
    }

    /// Run `op` with this registry installed as the current one.
    pub(crate) fn install<R>(self: &Arc<Self>, op: impl FnOnce() -> R) -> R {
        let _guard = InstallGuard::push(Arc::clone(self));
        op()
    }

    fn terminate(&self) {
        self.terminate.store(true, Ordering::Release);
        drop(self.sleep_mutex.lock());
        self.sleep_cond.notify_all();
    }
}

fn worker_loop(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerCtx { registry: Arc::clone(&registry), index });
    });
    loop {
        if let Some(job) = registry.find_work(Some(index)) {
            registry.execute(job);
            continue;
        }
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        let guard = registry.sleep_mutex.lock();
        if registry.pending.load(Ordering::Acquire) == 0
            && !registry.terminate.load(Ordering::Acquire)
        {
            // The lock-then-notify protocol in `push`/`terminate` prevents
            // lost wakeups, so the timeout is purely a belt-and-braces
            // backstop; it is long enough that an idle pool (e.g. the global
            // one, which lives for the process) costs ~2 wakeups/s/worker.
            let _ = registry.sleep_cond.wait_timeout(guard, Duration::from_millis(500));
        }
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide pool, started on first use. Thread count comes from
/// `RAYON_NUM_THREADS` when set to a positive integer, else from
/// `std::thread::available_parallelism`.
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| {
        let n = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        // Global workers are detached: they live for the process.
        let (registry, _handles) = Registry::new(n);
        registry
    })
}

/// Error returned when a [`ThreadPoolBuilder`] cannot build a pool.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool: {}", self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a dedicated [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Builder with default settings (thread count = `RAYON_NUM_THREADS` or
    /// the machine's available parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the worker-thread count. Zero means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    fn resolved_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(|| {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        })
    }

    /// Build a dedicated pool whose workers are joined when the pool drops.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let (registry, handles) = Registry::new(self.resolved_threads());
        Ok(ThreadPool { registry, handles })
    }

    /// Install this configuration as the global pool. Errors if the global
    /// pool has already been initialised.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = self.resolved_threads();
        let mut fresh = false;
        GLOBAL.get_or_init(|| {
            fresh = true;
            let (registry, _handles) = Registry::new(n);
            registry
        });
        if fresh {
            Ok(())
        } else {
            Err(ThreadPoolBuildError { msg: "the global thread pool is already initialised" })
        }
    }
}

/// A dedicated work-stealing thread pool.
///
/// Operations run "inside" the pool via [`ThreadPool::install`]: the closure
/// executes on the caller's thread, but every `join`, `scope` and parallel
/// iterator reached from it schedules onto this pool's workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<kgnet_sync::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Execute `op` with this pool as the scheduling target for any nested
    /// parallelism, returning its result.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        self.registry.install(op)
    }

    /// [`crate::join`] targeted at this pool.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| crate::join(oper_a, oper_b))
    }

    /// [`crate::scope`] targeted at this pool.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&crate::Scope<'scope>) -> R + Send,
        R: Send,
    {
        self.install(|| crate::scope(op))
    }

    /// Queue fire-and-forget work on this pool.
    pub fn spawn(&self, op: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(op));
        });
        self.registry.push(job);
    }

    /// Cumulative number of successful steals (observability hook for tests
    /// and benches; not part of the real rayon API).
    pub fn steal_count(&self) -> usize {
        self.registry.steal_count()
    }

    /// Sample this pool's scheduler counters (observability hook; not part
    /// of the real rayon API). Never blocks on the scheduler's own locks.
    pub fn stats(&self) -> PoolStats {
        self.registry.stats()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Scheduler counters of the process-wide global pool (starting it if
/// needed). Observability hook; not part of the real rayon API.
pub fn global_pool_stats() -> PoolStats {
    global_registry().stats()
}

/// Number of threads in the current scheduling context's pool.
pub fn current_num_threads() -> usize {
    Registry::current().num_threads()
}

/// Index of the current thread within the current pool, if it is one of its
/// worker threads.
pub fn current_thread_index() -> Option<usize> {
    Registry::current().current_worker_index()
}
