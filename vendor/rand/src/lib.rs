//! Offline stand-in for the `rand 0.8` crate covering the surface this
//! workspace uses: the [`Rng`] / [`SeedableRng`] traits, a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64), uniform range
//! sampling for the primitive integer and float types, and
//! [`seq::SliceRandom`] (`choose` / `shuffle`).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// A random value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }

    /// A sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding one `u64` through splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}
