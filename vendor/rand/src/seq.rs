//! Sequence helpers: [`SliceRandom`].

use crate::{Rng, RngCore};

fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(uniform_index(rng, self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, uniform_index(rng, i + 1));
        }
    }
}
