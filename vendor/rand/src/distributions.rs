//! Distributions: [`Standard`] for primitives and uniform range sampling.

use crate::Rng;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the full domain (unit interval
/// for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform range sampling (`Rng::gen_range`).
pub mod uniform {
    use crate::Rng;

    /// A primitive sampleable uniformly between two bounds. The single
    /// generic [`SampleRange`] impl below pins range-literal inference to
    /// the surrounding expression's type, as in real rand.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform sample in `[lo, hi)` (`hi` included when `inclusive`).
        fn sample_between<R: Rng + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            inclusive: bool,
        ) -> Self;
    }

    /// A range usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for ::std::ops::Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_between(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for ::std::ops::RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "cannot sample empty range");
            T::sample_between(rng, start, end, true)
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: Rng + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty: $mantissa:literal),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: Rng + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    _inclusive: bool,
                ) -> Self {
                    // Draw the unit at the target type's own mantissa width
                    // so it stays strictly below 1.0 after any rounding.
                    let unit = ((rng.next_u64() >> (64 - $mantissa)) as $t)
                        * (1.0 / (1u64 << $mantissa) as $t);
                    lo + (hi - lo) * unit
                }
            }
        )*};
    }

    uniform_float!(f32: 24, f64: 53);
}
