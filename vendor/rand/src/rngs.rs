//! Concrete RNGs: a deterministic [`StdRng`].

use crate::{RngCore, SeedableRng};

/// The standard RNG: xoshiro256++, deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(buf);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 0x94d0_49bb_1331_11eb, 1];
        }
        StdRng { s }
    }
}
