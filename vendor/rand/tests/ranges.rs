//! Sanity tests for the vendored rand: range contracts, determinism, and
//! slice helpers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

#[test]
fn seeding_is_deterministic() {
    let mut a = StdRng::seed_from_u64(42);
    let mut b = StdRng::seed_from_u64(42);
    let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
    let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
    assert_eq!(xs, ys);
    let mut c = StdRng::seed_from_u64(43);
    assert_ne!(xs, (0..8).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
}

#[test]
fn int_ranges_respect_bounds() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..10_000 {
        let v = rng.gen_range(-3i32..5);
        assert!((-3..5).contains(&v));
        let w = rng.gen_range(0usize..=3);
        assert!(w <= 3);
    }
    // Both endpoints of a small inclusive range are reachable.
    let hits: std::collections::HashSet<u8> = (0..200).map(|_| rng.gen_range(0u8..=1)).collect();
    assert_eq!(hits.len(), 2);
}

#[test]
fn f32_range_excludes_upper_bound() {
    // Regression: the unit must be drawn at f32 mantissa width, otherwise
    // f64->f32 rounding can return exactly the exclusive upper bound.
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..2_000_000 {
        let v = rng.gen_range(0.0f32..1.0);
        assert!((0.0..1.0).contains(&v), "got {v}");
    }
}

#[test]
fn gen_bool_matches_probability_roughly() {
    let mut rng = StdRng::seed_from_u64(5);
    let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
    assert!((20_000..30_000).contains(&hits), "got {hits}");
}

#[test]
fn shuffle_is_a_permutation_and_choose_stays_in_slice() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut xs: Vec<u32> = (0..100).collect();
    xs.shuffle(&mut rng);
    let mut sorted = xs.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    assert!(xs.choose(&mut rng).is_some());
    let empty: [u32; 0] = [];
    assert!(empty.choose(&mut rng).is_none());
}
