//! Deterministic model-check suite for the MVCC core: reader pin vs
//! commit vs abort.
//!
//! Compiled only under `--cfg kgnet_check`, where the `kgnet-sync` facade
//! routes every lock, condvar and atomic inside [`SharedStore`] to the
//! `kgnet-check` scheduler — so `explore` drives the *production*
//! writer-gate/commit/pin code through thousands of distinct
//! interleavings, failing with a replayable schedule on any torn read,
//! lost version or deadlock. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg kgnet_check" cargo test -p kgnet-rdf --test model_check
//! ```
//!
//! Budgets come from `kgnet_check::Config::default()` and can be capped in
//! CI via `KGNET_CHECK_MAX_SCHEDULES` / `KGNET_CHECK_RANDOM_ITERS`; the
//! coverage floors below only apply when no cap is set.

#![cfg(kgnet_check)]

use std::sync::Arc;

use kgnet_check::{explore, Config, Report};
use kgnet_rdf::{RdfStore, SharedStore, Term};
use kgnet_sync::thread;

/// Wider budgets than the library default: these scenarios are cheap
/// (tens of microseconds per schedule), so buy real interleaving coverage.
/// `KGNET_CHECK_*` env caps still override for bounded CI runs.
fn cfg() -> Config {
    Config {
        preemption_bound: Some(3),
        max_schedules: 20_000,
        random_iters: 20_000,
        ..Config::default()
    }
}

/// Assert a distinct-schedule floor, unless CI capped the budgets.
fn assert_coverage(suite: &str, reports: &[Report], floor: usize) {
    let distinct: usize = reports.iter().map(|r| r.distinct_schedules).sum();
    let runs: usize = reports.iter().map(|r| r.schedules).sum();
    println!("model-check[{suite}]: {runs} schedules run, {distinct} distinct");
    let capped = std::env::var_os("KGNET_CHECK_MAX_SCHEDULES").is_some()
        || std::env::var_os("KGNET_CHECK_RANDOM_ITERS").is_some();
    if !capped {
        assert!(distinct >= floor, "{suite}: only {distinct} distinct schedules (floor {floor})");
    }
}

fn iri(n: u32) -> Term {
    Term::iri(format!("http://kgnet/e{n}"))
}

fn seed_store() -> RdfStore {
    let mut st = RdfStore::new();
    st.insert(iri(0), iri(1), iri(2));
    st
}

/// A pinned snapshot observes one frozen generation — never a torn or
/// in-flight version — no matter how a concurrent commit interleaves.
#[test]
fn pinned_reads_frozen_across_concurrent_commit() {
    let report = explore(&cfg(), || {
        let store = SharedStore::new(seed_store());
        let writer = {
            let store = store.clone();
            thread::spawn(move || {
                let mut txn = store.begin();
                txn.store_mut().insert(iri(3), iri(1), iri(4));
                txn.commit()
            })
        };

        let reader = {
            let store = store.clone();
            thread::spawn(move || {
                // Every concurrently-pinned snapshot is internally coherent:
                // its length matches its generation (1 triple before the
                // commit, 2 after), never a half-applied mix.
                let side = store.snapshot();
                let coherent = side.len() == 1 || side.len() == 2;
                assert!(coherent, "side snapshot saw a half-applied commit");
                (side.generation(), side.len())
            })
        };

        let snap = store.snapshot();
        let gen0 = snap.generation();
        let len0 = snap.len();
        assert!(len0 == 1 || len0 == 2, "snapshot saw a half-applied commit");

        // Re-reads through the same pin are repeatable whatever the writer
        // does in between.
        let snap2 = store.snapshot();
        assert_eq!(snap.generation(), gen0, "pinned generation drifted");
        assert_eq!(snap.len(), len0, "pinned contents drifted");

        // A later pin is same-or-newer, and its contents match its
        // generation exactly (no plan-of-one-version/data-of-another).
        assert!(snap2.generation() >= gen0);
        let expect2 = if snap2.generation() == gen0 { len0 } else { len0 + 1 };
        assert_eq!(snap2.len(), expect2, "generation and contents disagree");

        let committed = writer.join().unwrap();
        assert!(committed > gen0 || len0 == 2, "commit did not advance the generation");
        let (side_gen, side_len) = reader.join().unwrap();
        assert_eq!(side_len, if side_gen == committed { 2 } else { 1 });

        // After the join the commit must be visible to new pins, while the
        // old pin still answers from its frozen version.
        let fresh = store.snapshot();
        assert_eq!(fresh.len(), 2, "committed triple lost");
        assert_eq!(snap.len(), len0, "old pin observed the commit");
    });
    assert_coverage("rdf/pin-vs-commit", &[report], 8_000);
}

/// An aborted transaction is invisible: no generation bump, no data, no
/// retained version left behind — under every interleaving with a reader.
#[test]
fn abort_leaves_no_trace_under_concurrent_reader() {
    let report = explore(&cfg(), || {
        let store = SharedStore::new(seed_store());
        let pin = store.snapshot();
        let writer = {
            let store = store.clone();
            thread::spawn(move || {
                let mut txn = store.begin();
                txn.store_mut().insert(iri(3), iri(1), iri(4));
                txn.abort();
            })
        };
        let reader = {
            let store = store.clone();
            thread::spawn(move || {
                // A second independent pin must also never observe the
                // aborted insert, at any interleaving point.
                let side = store.snapshot();
                assert_eq!(side.len(), 1, "aborted insert became visible");
                side.generation()
            })
        };

        let gen0 = pin.generation();
        assert_eq!(pin.len(), 1);
        assert_eq!(reader.join().unwrap(), gen0, "abort bumped the published generation");
        writer.join().unwrap();

        let after = store.snapshot();
        assert_eq!(after.generation(), gen0, "abort published a version");
        assert_eq!(after.len(), 1, "aborted insert leaked");

        drop(after);
        drop(pin);
        let rows = store.retained_versions();
        assert_eq!(rows.len(), 1, "aborted/unpinned versions must be freed: {rows:?}");
        assert!(rows[0].is_current);
        assert_eq!(rows[0].pins, 0);
    });
    assert_coverage("rdf/pin-vs-abort", &[report], 2_000);
}

/// Two concurrent writers serialise through the writer gate: both commits
/// land, generations are distinct, and no insert is lost.
#[test]
fn concurrent_writers_serialise_without_lost_commits() {
    let report = explore(&cfg(), || {
        let store = SharedStore::new(seed_store());
        let writers: Vec<_> = (0..2)
            .map(|i| {
                let store = store.clone();
                thread::spawn(move || {
                    let mut txn = store.begin();
                    txn.store_mut().insert(iri(10 + i), iri(1), iri(2));
                    txn.commit()
                })
            })
            .collect();
        let gens: Vec<u64> = writers.into_iter().map(|t| t.join().unwrap()).collect();
        assert_ne!(gens[0], gens[1], "serialised commits reused a generation");

        let snap = store.snapshot();
        assert_eq!(snap.len(), 3, "a commit was lost");
        assert_eq!(snap.generation(), gens[0].max(gens[1]));
    });
    assert_coverage("rdf/writer-vs-writer", &[report], 3_000);
}
