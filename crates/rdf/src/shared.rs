//! A concurrently shareable [`RdfStore`]: the engine-side half of the
//! platform's read/write split.
//!
//! [`SharedStore`] wraps the store in an [`Arc`]`<`[`RwLock`]`>` so any
//! number of read sessions evaluate SPARQL against `&RdfStore` at the same
//! time while writers (data updates, bulk loads) take the exclusive side.
//! Every mutation goes through the store's own insert/remove methods and
//! therefore bumps the [`RdfStore::generation`] epoch counter, which is what
//! keeps the `predicate_stats` planner cache and any prepared-query caches
//! coherent: a reader that captured a generation can tell whether its cached
//! plans are still valid without re-reading the data.
//!
//! Consistency contract: everything observed through one read guard — the
//! generation, triple count, scans, full query evaluations — comes from a
//! single store snapshot; the generation cannot change while the guard is
//! held (property-tested below under real writer threads).

use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::store::RdfStore;

/// A cheaply cloneable handle to one RDF store shared between concurrent
/// readers and exclusive writers.
#[derive(Clone, Default)]
pub struct SharedStore {
    inner: Arc<RwLock<RdfStore>>,
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let guard = self.read();
        f.debug_struct("SharedStore")
            .field("triples", &guard.len())
            .field("generation", &guard.generation())
            .finish()
    }
}

impl SharedStore {
    /// Share an existing store.
    pub fn new(store: RdfStore) -> Self {
        SharedStore { inner: Arc::new(RwLock::new(store)) }
    }

    /// Acquire shared read access. Any number of readers proceed in
    /// parallel; the snapshot is frozen for the guard's lifetime.
    pub fn read(&self) -> RwLockReadGuard<'_, RdfStore> {
        self.inner.read()
    }

    /// Acquire exclusive write access. Mutations through the guard bump the
    /// store's generation, invalidating statistics and plan caches.
    pub fn write(&self) -> RwLockWriteGuard<'_, RdfStore> {
        self.inner.write()
    }

    /// The current mutation epoch (acquires a read lock briefly).
    pub fn generation(&self) -> u64 {
        self.read().generation()
    }

    /// Triple count (acquires a read lock briefly).
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Recover the store when this is the last handle; otherwise the shared
    /// handle is returned unchanged.
    pub fn try_unwrap(self) -> Result<RdfStore, SharedStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner()),
            Err(inner) => Err(SharedStore { inner }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use proptest::prelude::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    #[test]
    fn clone_shares_one_store() {
        let shared = SharedStore::new(RdfStore::new());
        let other = shared.clone();
        shared.write().insert(iri("a"), iri("p"), iri("b"));
        assert_eq!(other.len(), 1);
        assert_eq!(other.generation(), shared.generation());
    }

    #[test]
    fn try_unwrap_returns_store_only_when_unique() {
        let shared = SharedStore::new(RdfStore::new());
        let other = shared.clone();
        let Err(shared) = shared.try_unwrap() else { panic!("two handles alive") };
        drop(other);
        let Ok(store) = shared.try_unwrap() else { panic!("last handle must unwrap") };
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_readers_see_frozen_generation() {
        let shared = SharedStore::new(RdfStore::new());
        let writer = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                for i in 0..200u32 {
                    shared.write().insert(iri(&format!("s{i}")), iri("p"), iri("o"));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let g = shared.read();
                        let before = g.generation();
                        let len = g.len();
                        let scanned = g.scan_iter(None, None, None).count();
                        assert_eq!(len, scanned, "scan disagrees with len under one guard");
                        assert_eq!(before, g.generation(), "generation moved under a read guard");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(shared.len(), 200);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Interleaved reads, writes and scans: every read guard observes a
        /// consistent snapshot (generation frozen, len == full-scan count,
        /// per-predicate scans never exceed len), and the final store equals
        /// the sequential application of the writer's operations.
        #[test]
        fn interleaved_ops_keep_reads_consistent(
            ops in proptest::collection::vec(
                ("[a-d]{1,2}", "[p-r]", "[x-z]{1,2}", any::<bool>()), 1..40),
        ) {
            let shared = SharedStore::new(RdfStore::new());
            let writer = {
                let shared = shared.clone();
                let ops = ops.clone();
                std::thread::spawn(move || {
                    for (s, p, o, insert) in ops {
                        let mut st = shared.write();
                        if insert {
                            st.insert(iri(&s), iri(&p), iri(&o));
                        } else {
                            st.remove(&iri(&s), &iri(&p), &iri(&o));
                        }
                    }
                })
            };
            let readers: Vec<_> = (0..2).map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..60 {
                        let g = shared.read();
                        let generation = g.generation();
                        let len = g.len();
                        assert_eq!(g.scan_iter(None, None, None).count(), len);
                        for pred in g.predicates() {
                            assert!(g.scan_iter(None, Some(pred), None).count() <= len);
                        }
                        assert_eq!(g.generation(), generation);
                    }
                })
            }).collect();
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }

            // Serial reference.
            let mut reference = std::collections::BTreeSet::new();
            for (s, p, o, insert) in &ops {
                if *insert {
                    reference.insert((s.clone(), p.clone(), o.clone()));
                } else {
                    reference.remove(&(s.clone(), p.clone(), o.clone()));
                }
            }
            let Ok(store) = shared.try_unwrap() else { panic!("all threads joined") };
            prop_assert_eq!(store.len(), reference.len());
            for (s, p, o) in &reference {
                prop_assert!(store.contains(&iri(s), &iri(p), &iri(o)));
            }
        }
    }
}
