//! MVCC snapshot publishing: the engine-side half of the platform's
//! read/write split, where writers never block readers.
//!
//! [`SharedStore`] holds the *current* immutable store version behind an
//! `Arc<RwLock<Arc<RdfStore>>>`. Readers call [`SharedStore::snapshot`] to
//! pin the current version — a single `Arc` clone under a momentary read
//! lock — and then evaluate against that [`Snapshot`] for as long as they
//! like with **zero** locks held. Writers call [`SharedStore::begin`] (or
//! the [`SharedStore::commit`] convenience) to build the *next* version
//! privately on a copy-on-write clone and publish it as one atomic pointer
//! swap. The [`RdfStore::generation`] epoch doubles as the version id.
//!
//! Writers are serialised by an internal gate (one pending version at a
//! time, so no committed change can be lost), but a writer holding the gate
//! never blocks snapshot acquisition: the `RwLock` is only touched for the
//! nanoseconds of the pointer read/swap itself.
//!
//! Consistency contract: everything observed through one [`Snapshot`] — the
//! generation, triple count, scans, full query evaluations — comes from a
//! single frozen version. A concurrent commit, however large, is either
//! entirely visible to a *later* snapshot or not visible at all; a pinned
//! snapshot never observes a torn intermediate state (property-tested below
//! under real writer threads).

use std::collections::BTreeMap;
use std::ops::Deref;

use kgnet_sync::profile::SyncSite;
use kgnet_sync::tracked::{lock_tracked, read_tracked, write_tracked};
use kgnet_sync::{Arc, Condvar, Mutex, RwLock};

use crate::store::RdfStore;

/// The published-version pointer: every snapshot pin and version flip.
static CURRENT_SITE: SyncSite = SyncSite::new("rdf.store.current");
/// The retention tracker: every pin/unpin/GC report.
static TRACKER_SITE: SyncSite = SyncSite::new("rdf.store.tracker");
/// The writer semaphore: contended exactly when writers queue behind an
/// open transaction.
static WRITER_GATE_SITE: SyncSite = SyncSite::new("rdf.writer_gate");

/// An immutable, cheaply clonable pin of one published store version.
///
/// Dereferences to [`RdfStore`], so every `&RdfStore` consumer (SPARQL
/// evaluation, sampling, statistics) works on a snapshot unchanged. Holding
/// a snapshot keeps that version's shards alive but holds no lock: writers
/// publish new versions freely while old pins stay readable.
#[derive(Clone)]
pub struct Snapshot {
    inner: Arc<RdfStore>,
    /// Present when the snapshot was pinned from a [`SharedStore`]: held
    /// purely so its `Clone`/`Drop` keep the per-version pin count in the
    /// store's retention tracker accurate.
    _pin: Option<VersionPin>,
}

impl Snapshot {
    /// Freeze a standalone store into a snapshot (version 0 of nothing in
    /// particular; mostly useful in tests and one-shot pipelines). Untracked:
    /// it never appears in [`SharedStore::retained_versions`].
    pub fn freeze(store: RdfStore) -> Self {
        Snapshot { inner: Arc::new(store), _pin: None }
    }
}

impl Deref for Snapshot {
    type Target = RdfStore;

    fn deref(&self) -> &RdfStore {
        &self.inner
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("triples", &self.len())
            .field("generation", &self.generation())
            .finish()
    }
}

/// Serialises writers: at most one [`WriteTxn`] exists per store at a time.
/// A plain mutex+condvar semaphore rather than a lock guard so the permit
/// can be *owned* (stored in a session struct) instead of borrowed.
#[derive(Default)]
struct WriterGate {
    busy: Mutex<bool>,
    cv: Condvar,
}

impl WriterGate {
    fn acquire(self: &Arc<Self>) -> WriterPermit {
        // Contention is hand-classified at the *semaphore* level: the inner
        // mutex is only ever held for the flag flip, so what matters is
        // whether the slot was free on arrival or the caller had to park
        // behind another writer's whole transaction.
        let mut busy = self.busy.lock();
        if !*busy {
            WRITER_GATE_SITE.record_uncontended();
        } else {
            let t0 = std::time::Instant::now();
            while *busy {
                busy = self.cv.wait(busy);
            }
            WRITER_GATE_SITE
                .record_contended(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        *busy = true;
        WriterPermit { gate: Arc::clone(self) }
    }
}

/// Owned writer slot; releasing it (on drop) wakes the next queued writer.
struct WriterPermit {
    gate: Arc<WriterGate>,
}

impl Drop for WriterPermit {
    fn drop(&mut self) {
        *self.gate.busy.lock() = false;
        self.gate.cv.notify_one();
    }
}

/// Per-version retention bookkeeping: generation → live pins + size.
#[derive(Default)]
struct VersionTracker {
    versions: BTreeMap<u64, TrackedVersion>,
}

struct TrackedVersion {
    pins: usize,
    approx_bytes: usize,
}

impl VersionTracker {
    fn pin(&mut self, generation: u64, approx_bytes: usize) {
        self.versions.entry(generation).or_insert(TrackedVersion { pins: 0, approx_bytes }).pins +=
            1;
    }

    fn unpin(&mut self, generation: u64) {
        if let Some(entry) = self.versions.get_mut(&generation) {
            entry.pins -= 1;
            if entry.pins == 0 {
                // Last pin gone: the version is reclaimable (its `Arc` drops
                // as soon as it is no longer current), so stop reporting it.
                self.versions.remove(&generation);
            }
        }
    }
}

/// Keeps one pin registered in the owning store's [`VersionTracker`] for as
/// long as the snapshot (or any clone of it) is alive.
struct VersionPin {
    tracker: Arc<Mutex<VersionTracker>>,
    generation: u64,
    approx_bytes: usize,
}

impl Clone for VersionPin {
    fn clone(&self) -> Self {
        lock_tracked(&self.tracker, &TRACKER_SITE).pin(self.generation, self.approx_bytes);
        VersionPin {
            tracker: Arc::clone(&self.tracker),
            generation: self.generation,
            approx_bytes: self.approx_bytes,
        }
    }
}

impl Drop for VersionPin {
    fn drop(&mut self) {
        lock_tracked(&self.tracker, &TRACKER_SITE).unpin(self.generation);
    }
}

/// One row of [`SharedStore::retained_versions`]: a store version currently
/// kept alive, why (pins / being current), and roughly how big it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedVersion {
    /// The version id ([`RdfStore::generation`] epoch).
    pub generation: u64,
    /// Live [`Snapshot`] pins holding this version. The current version
    /// reports `0` when nobody has it pinned — it is retained regardless.
    pub pins: usize,
    /// Approximate index memory retained by this version (shards are
    /// copy-on-write shared between versions, so sums overcount).
    pub approx_bytes: usize,
    /// Whether this is the published (most recent committed) version.
    pub is_current: bool,
}

/// A cheaply cloneable handle publishing MVCC versions of one RDF store.
#[derive(Clone, Default)]
pub struct SharedStore {
    current: Arc<RwLock<Arc<RdfStore>>>,
    gate: Arc<WriterGate>,
    tracker: Arc<Mutex<VersionTracker>>,
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("SharedStore")
            .field("triples", &snap.len())
            .field("generation", &snap.generation())
            .finish()
    }
}

impl SharedStore {
    /// Publish an existing store as the initial version.
    pub fn new(store: RdfStore) -> Self {
        SharedStore {
            current: Arc::new(RwLock::new(Arc::new(store))),
            gate: Arc::new(WriterGate::default()),
            tracker: Arc::new(Mutex::new(VersionTracker::default())),
        }
    }

    /// Pin the current version. One `Arc` clone under a momentary read
    /// lock; after that the snapshot holds no lock whatsoever.
    pub fn snapshot(&self) -> Snapshot {
        let inner = Arc::clone(&read_tracked(&self.current, &CURRENT_SITE));
        let generation = inner.generation();
        let approx_bytes = inner.approx_bytes();
        lock_tracked(&self.tracker, &TRACKER_SITE).pin(generation, approx_bytes);
        Snapshot {
            inner,
            _pin: Some(VersionPin { tracker: Arc::clone(&self.tracker), generation, approx_bytes }),
        }
    }

    /// GC telemetry: every store version currently retained, with its live
    /// pin count and approximate index footprint. The published version is
    /// always listed (marked [`RetainedVersion::is_current`]); an older
    /// version appears exactly while at least one [`Snapshot`] pins it, and
    /// vanishes when the last pin drops.
    pub fn retained_versions(&self) -> Vec<RetainedVersion> {
        // Read `current` before locking the tracker — the two locks are
        // never held together anywhere in this module.
        let (current_generation, current_bytes) = {
            let cur = read_tracked(&self.current, &CURRENT_SITE);
            (cur.generation(), cur.approx_bytes())
        };
        let tracker = lock_tracked(&self.tracker, &TRACKER_SITE);
        let mut rows: Vec<RetainedVersion> = tracker
            .versions
            .iter()
            .map(|(&generation, entry)| RetainedVersion {
                generation,
                pins: entry.pins,
                approx_bytes: entry.approx_bytes,
                is_current: generation == current_generation,
            })
            .collect();
        if !rows.iter().any(|r| r.is_current) {
            rows.push(RetainedVersion {
                generation: current_generation,
                pins: 0,
                approx_bytes: current_bytes,
                is_current: true,
            });
        }
        rows.sort_by_key(|r| r.generation);
        rows
    }

    /// Open a write transaction on a private copy-on-write clone of the
    /// current version. Blocks while another transaction is open (writers
    /// are serialised); never blocks readers. Dropping the transaction
    /// without [`WriteTxn::commit`] discards the pending version.
    pub fn begin(&self) -> WriteTxn {
        // Acquire the gate *before* reading `current`: only the permit
        // holder publishes, so the clone is guaranteed to be of the latest
        // committed version and no committed change can be lost.
        let permit = self.gate.acquire();
        let base = Arc::clone(&read_tracked(&self.current, &CURRENT_SITE));
        let pending = (*base).clone();
        WriteTxn {
            current: Arc::clone(&self.current),
            base_generation: pending.generation(),
            pending,
            _permit: permit,
        }
    }

    /// Apply one batch of mutations and publish them as a single version
    /// flip: `begin` → mutate → commit.
    pub fn commit<R>(&self, f: impl FnOnce(&mut RdfStore) -> R) -> R {
        let mut txn = self.begin();
        let out = f(txn.store_mut());
        txn.commit();
        out
    }

    /// The current version id (momentary read lock).
    pub fn generation(&self) -> u64 {
        self.snapshot().generation()
    }

    /// Triple count of the current version (momentary read lock).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when the current version holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Recover the store when this is the last handle; otherwise the shared
    /// handle is returned unchanged. Outstanding [`Snapshot`]s do not block
    /// recovery — the current version is copy-on-write extracted from under
    /// them.
    pub fn try_unwrap(self) -> Result<RdfStore, SharedStore> {
        match Arc::try_unwrap(self.current) {
            Ok(lock) => {
                let version = lock.into_inner();
                Ok(Arc::try_unwrap(version).unwrap_or_else(|shared| (*shared).clone()))
            }
            Err(current) => Err(SharedStore { current, gate: self.gate, tracker: self.tracker }),
        }
    }
}

/// An exclusive, owned write transaction: the next store version being
/// built privately. Readers keep pinning and scanning the published version
/// while this exists; nothing becomes visible until [`WriteTxn::commit`].
pub struct WriteTxn {
    current: Arc<RwLock<Arc<RdfStore>>>,
    pending: RdfStore,
    base_generation: u64,
    _permit: WriterPermit,
}

impl WriteTxn {
    /// The pending version, readable: a transaction sees its own writes.
    pub fn store(&self) -> &RdfStore {
        &self.pending
    }

    /// The pending version, mutable. Mutations stay private until commit.
    pub fn store_mut(&mut self) -> &mut RdfStore {
        &mut self.pending
    }

    /// The generation of the version this transaction branched from.
    pub fn base_generation(&self) -> u64 {
        self.base_generation
    }

    /// Atomically publish the pending version; returns its generation.
    /// Every snapshot pinned afterwards sees all of this transaction's
    /// mutations; every snapshot pinned before sees none of them.
    pub fn commit(self) -> u64 {
        let generation = self.pending.generation();
        *write_tracked(&self.current, &CURRENT_SITE) = Arc::new(self.pending);
        generation
    }

    /// Discard the pending version: nothing is published, the store stays
    /// at the version it was. Equivalent to dropping the transaction.
    pub fn abort(self) {}
}

impl std::fmt::Debug for WriteTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteTxn")
            .field("base_generation", &self.base_generation)
            .field("pending_generation", &self.pending.generation())
            .field("pending_triples", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use proptest::prelude::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    #[test]
    fn clone_shares_one_store() {
        let shared = SharedStore::new(RdfStore::new());
        let other = shared.clone();
        shared.commit(|st| st.insert(iri("a"), iri("p"), iri("b")));
        assert_eq!(other.len(), 1);
        assert_eq!(other.generation(), shared.generation());
    }

    #[test]
    fn try_unwrap_returns_store_only_when_unique() {
        let shared = SharedStore::new(RdfStore::new());
        let other = shared.clone();
        let Err(shared) = shared.try_unwrap() else { panic!("two handles alive") };
        drop(other);
        let Ok(store) = shared.try_unwrap() else { panic!("last handle must unwrap") };
        assert!(store.is_empty());
    }

    #[test]
    fn try_unwrap_succeeds_under_outstanding_snapshot() {
        let shared = SharedStore::new(RdfStore::new());
        shared.commit(|st| st.insert(iri("a"), iri("p"), iri("b")));
        let pin = shared.snapshot();
        let Ok(store) = shared.try_unwrap() else { panic!("snapshots must not block unwrap") };
        assert_eq!(store.len(), 1);
        assert_eq!(pin.len(), 1);
    }

    #[test]
    fn pinned_snapshot_is_frozen_across_commits() {
        let shared = SharedStore::new(RdfStore::new());
        shared.commit(|st| {
            st.insert(iri("p1"), iri("cites"), iri("p2"));
            st.insert(iri("p2"), iri("cites"), iri("p3"));
        });
        let pin = shared.snapshot();
        let dump = pin.to_ntriples();
        let generation = pin.generation();

        // Bulk DELETE+INSERT commits while the pin is held.
        shared.commit(|st| {
            st.remove(&iri("p1"), &iri("cites"), &iri("p2"));
            st.remove(&iri("p2"), &iri("cites"), &iri("p3"));
            for i in 0..50u32 {
                st.insert(iri(&format!("n{i}")), iri("p"), iri("o"));
            }
        });

        // The pin is bit-identical; a fresh snapshot sees the new version.
        assert_eq!(pin.generation(), generation);
        assert_eq!(pin.len(), 2);
        assert_eq!(pin.to_ntriples(), dump);
        let fresh = shared.snapshot();
        assert_eq!(fresh.len(), 50);
        assert!(fresh.generation() > generation);
    }

    #[test]
    fn retained_versions_track_pins_and_free_on_last_drop() {
        let shared = SharedStore::new(RdfStore::new());
        shared.commit(|st| st.insert(iri("a"), iri("p"), iri("b")));
        let pin = shared.snapshot();
        let old_generation = pin.generation();
        let pin2 = pin.clone();

        shared.commit(|st| {
            for i in 0..10u32 {
                st.insert(iri(&format!("n{i}")), iri("p"), iri("o"));
            }
        });

        let retained = shared.retained_versions();
        assert_eq!(retained.len(), 2, "old pinned version + current: {retained:?}");
        let old = &retained[0];
        assert_eq!(old.generation, old_generation);
        assert_eq!(old.pins, 2, "snapshot clones each count as a pin");
        assert!(!old.is_current);
        assert!(old.approx_bytes > 0);
        let cur = &retained[1];
        assert!(cur.is_current);
        assert_eq!(cur.pins, 0);
        assert!(cur.approx_bytes > old.approx_bytes);

        drop(pin);
        assert_eq!(shared.retained_versions().len(), 2, "one pin still live");
        drop(pin2);
        let retained = shared.retained_versions();
        assert_eq!(retained.len(), 1, "last pin dropped frees the old version");
        assert!(retained[0].is_current);
    }

    #[test]
    fn pinning_the_current_version_reports_one_row() {
        let shared = SharedStore::new(RdfStore::new());
        shared.commit(|st| st.insert(iri("a"), iri("p"), iri("b")));
        let pin = shared.snapshot();
        let retained = shared.retained_versions();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].pins, 1);
        assert!(retained[0].is_current);
        drop(pin);
        assert_eq!(shared.retained_versions()[0].pins, 0);
    }

    #[test]
    fn abort_discards_the_pending_version() {
        let shared = SharedStore::new(RdfStore::new());
        shared.commit(|st| st.insert(iri("keep"), iri("p"), iri("o")));
        let generation = shared.generation();

        let mut txn = shared.begin();
        txn.store_mut().insert(iri("scrapped"), iri("p"), iri("o"));
        txn.store_mut().remove(&iri("keep"), &iri("p"), &iri("o"));
        assert_eq!(txn.store().len(), 1, "transaction reads its own writes");
        txn.abort();

        assert_eq!(shared.generation(), generation);
        assert_eq!(shared.len(), 1);
        assert!(shared.snapshot().contains(&iri("keep"), &iri("p"), &iri("o")));
        // The gate was released: the next writer proceeds.
        let published = shared.commit(|st| st.insert(iri("next"), iri("p"), iri("o")));
        assert!(published);
    }

    #[test]
    fn open_transaction_never_blocks_snapshots() {
        let shared = SharedStore::new(RdfStore::new());
        shared.commit(|st| st.insert(iri("a"), iri("p"), iri("b")));
        let mut txn = shared.begin();
        txn.store_mut().insert(iri("pending"), iri("p"), iri("o"));
        // With the writer gate held and a dirty pending version, readers
        // still pin and scan the published version without blocking.
        let snap = shared.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(!snap.contains(&iri("pending"), &iri("p"), &iri("o")));
        txn.commit();
        assert_eq!(shared.snapshot().len(), 2);
    }

    #[test]
    fn commits_are_atomic_never_torn() {
        // The writer flips between state A {x} and state B {y} with a
        // remove+insert batch per commit. Any snapshot must see exactly one
        // of the two markers — both or neither means a torn publication.
        let shared = SharedStore::new(RdfStore::new());
        shared.commit(|st| st.insert(iri("x"), iri("state"), iri("on")));
        let writer = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                for _ in 0..300 {
                    shared.commit(|st| {
                        st.remove(&iri("x"), &iri("state"), &iri("on"));
                        st.insert(iri("y"), iri("state"), iri("on"));
                    });
                    shared.commit(|st| {
                        st.remove(&iri("y"), &iri("state"), &iri("on"));
                        st.insert(iri("x"), iri("state"), iri("on"));
                    });
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..300 {
                        let snap = shared.snapshot();
                        let has_x = snap.contains(&iri("x"), &iri("state"), &iri("on"));
                        let has_y = snap.contains(&iri("y"), &iri("state"), &iri("on"));
                        assert!(has_x ^ has_y, "torn commit: x={has_x} y={has_y}");
                        assert_eq!(snap.len(), 1);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn serialised_writers_lose_no_commits() {
        let shared = SharedStore::new(RdfStore::new());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        shared
                            .commit(|st| st.insert(iri(&format!("w{w}-{i}")), iri("p"), iri("o")));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(shared.len(), 200, "a concurrent commit was lost");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Interleaved batched commits vs pinned snapshots: every snapshot
        /// is internally consistent (len == full-scan count) and *stays*
        /// bit-identical while the writer churns; the final store equals the
        /// sequential application of the writer's operations.
        #[test]
        fn interleaved_commits_keep_snapshots_frozen(
            ops in proptest::collection::vec(
                ("[a-d]{1,2}", "[p-r]", "[x-z]{1,2}", any::<bool>()), 1..40),
        ) {
            let shared = SharedStore::new(RdfStore::new());
            let writer = {
                let shared = shared.clone();
                let ops = ops.clone();
                std::thread::spawn(move || {
                    // Commit in small batches: each batch is one version flip.
                    for batch in ops.chunks(3) {
                        shared.commit(|st| {
                            for (s, p, o, insert) in batch {
                                if *insert {
                                    st.insert(iri(s), iri(p), iri(o));
                                } else {
                                    st.remove(&iri(s), &iri(p), &iri(o));
                                }
                            }
                        });
                    }
                })
            };
            let readers: Vec<_> = (0..2).map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..30 {
                        let snap = shared.snapshot();
                        let generation = snap.generation();
                        let len = snap.len();
                        let dump = snap.to_ntriples();
                        assert_eq!(snap.scan_iter(None, None, None).count(), len);
                        for pred in snap.predicates() {
                            assert!(snap.scan_iter(None, Some(pred), None).count() <= len);
                        }
                        // Re-inspect the same pin: nothing may have moved.
                        assert_eq!(snap.generation(), generation);
                        assert_eq!(snap.len(), len);
                        assert_eq!(snap.to_ntriples(), dump, "pinned snapshot mutated");
                    }
                })
            }).collect();
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }

            // Serial reference.
            let mut reference = std::collections::BTreeSet::new();
            for (s, p, o, insert) in &ops {
                if *insert {
                    reference.insert((s.clone(), p.clone(), o.clone()));
                } else {
                    reference.remove(&(s.clone(), p.clone(), o.clone()));
                }
            }
            let Ok(store) = shared.try_unwrap() else { panic!("all threads joined") };
            prop_assert_eq!(store.len(), reference.len());
            for (s, p, o) in &reference {
                prop_assert!(store.contains(&iri(s), &iri(p), &iri(o)));
            }
        }
    }
}
