//! N-Triples parsing: the bulk-load format for real KG dumps (DBLP and
//! YAGO4 are published as N-Triples; this is how a user would load them
//! into the platform).

use crate::error::SparqlError;
use crate::store::RdfStore;
use crate::term::{unescape_literal, Term};

/// Parse one N-Triples document into a new store.
pub fn parse_ntriples(text: &str) -> Result<RdfStore, SparqlError> {
    let mut store = RdfStore::new();
    load_ntriples(&mut store, text)?;
    Ok(store)
}

/// Load N-Triples lines into an existing store. Returns the number of
/// triples added (duplicates and comment/blank lines are skipped).
pub fn load_ntriples(store: &mut RdfStore, text: &str) -> Result<usize, SparqlError> {
    let mut added = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, p, o) =
            parse_line(line).map_err(|message| SparqlError::Lex { position: lineno, message })?;
        if store.insert(s, p, o) {
            added += 1;
        }
    }
    Ok(added)
}

fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut cursor = Cursor { bytes: line.as_bytes(), text: line, pos: 0 };
    let s = cursor.term()?;
    cursor.skip_ws();
    let p = cursor.term()?;
    cursor.skip_ws();
    let o = cursor.term()?;
    cursor.skip_ws();
    if cursor.peek() != Some(b'.') {
        return Err("missing terminating '.'".into());
    }
    cursor.pos += 1;
    cursor.skip_ws();
    if cursor.pos != line.len() {
        return Err("trailing content after '.'".into());
    }
    Ok((s, p, o))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                let start = self.pos + 1;
                let end =
                    self.text[start..].find('>').map(|i| start + i).ok_or("unterminated IRI")?;
                self.pos = end + 1;
                Ok(Term::iri(&self.text[start..end]))
            }
            Some(b'_') => {
                if self.bytes.get(self.pos + 1) != Some(&b':') {
                    return Err("expected '_:' blank node".into());
                }
                let start = self.pos + 2;
                let mut end = start;
                while end < self.bytes.len()
                    && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
                {
                    end += 1;
                }
                self.pos = end;
                Ok(Term::blank(&self.text[start..end]))
            }
            Some(b'"') => {
                let start = self.pos + 1;
                let mut i = start;
                while i < self.bytes.len() {
                    match self.bytes[i] {
                        b'\\' => i += 2,
                        b'"' => break,
                        _ => i += 1,
                    }
                }
                if i >= self.bytes.len() {
                    return Err("unterminated literal".into());
                }
                let lexical = unescape_literal(&self.text[start..i]);
                self.pos = i + 1;
                // Optional datatype / language tag.
                let mut datatype = None;
                let mut lang = None;
                if self.peek() == Some(b'^') && self.bytes.get(self.pos + 1) == Some(&b'^') {
                    self.pos += 2;
                    if self.peek() != Some(b'<') {
                        return Err("expected datatype IRI".into());
                    }
                    let dstart = self.pos + 1;
                    let dend = self.text[dstart..]
                        .find('>')
                        .map(|i| dstart + i)
                        .ok_or("unterminated datatype IRI")?;
                    datatype = Some(self.text[dstart..dend].to_owned());
                    self.pos = dend + 1;
                } else if self.peek() == Some(b'@') {
                    let lstart = self.pos + 1;
                    let mut lend = lstart;
                    while lend < self.bytes.len()
                        && (self.bytes[lend].is_ascii_alphanumeric() || self.bytes[lend] == b'-')
                    {
                        lend += 1;
                    }
                    lang = Some(self.text[lstart..lend].to_owned());
                    self.pos = lend;
                }
                Ok(Term::Literal { lexical, datatype, lang })
            }
            other => Err(format!("unexpected term start: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let doc = "\
            # a comment\n\
            <http://x/a> <http://x/p> <http://x/b> .\n\
            \n\
            <http://x/a> <http://x/name> \"Ada\" .\n\
            <http://x/a> <http://x/age> \"36\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
            <http://x/a> <http://x/bio> \"salut\"@fr .\n\
            _:b0 <http://x/p> <http://x/a> .\n";
        let store = parse_ntriples(doc).unwrap();
        assert_eq!(store.len(), 5);
        assert!(store.contains(
            &Term::iri("http://x/a"),
            &Term::iri("http://x/age"),
            &Term::int(36)
        ));
        assert!(store.contains(
            &Term::iri("http://x/a"),
            &Term::iri("http://x/bio"),
            &Term::Literal { lexical: "salut".into(), datatype: None, lang: Some("fr".into()) }
        ));
    }

    #[test]
    fn escaped_quotes_in_literals() {
        let doc = r#"<http://x/a> <http://x/q> "say \"hi\"\n" ."#;
        let store = parse_ntriples(doc).unwrap();
        let (_, _, o) = store.iter().next().unwrap();
        assert_eq!(store.resolve(o).as_literal(), Some("say \"hi\"\n"));
    }

    #[test]
    fn roundtrips_store_serialisation() {
        let mut original = RdfStore::new();
        original.insert(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::str("line1\nline2"),
        );
        original.insert(Term::iri("http://x/s"), Term::iri("http://x/q"), Term::int(-5));
        original.insert(Term::blank("n1"), Term::iri("http://x/p"), Term::iri("http://x/s"));
        let text = original.to_ntriples();
        let restored = parse_ntriples(&text).unwrap();
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.to_ntriples(), text);
    }

    #[test]
    fn bad_lines_error_with_line_number() {
        match parse_ntriples("<http://x/a> <http://x/p>\n") {
            Err(SparqlError::Lex { position, .. }) => assert_eq!(position, 0),
            Err(other) => panic!("unexpected {other:?}"),
            Ok(_) => panic!("expected a parse error"),
        }
        assert!(parse_ntriples("<http://x/a> <http://x/p> <http://x/b>").is_err());
        assert!(parse_ntriples("<http://x/a> <http://x/p> \"open .").is_err());
    }

    #[test]
    fn duplicates_are_counted_once() {
        let mut store = RdfStore::new();
        let doc = "<http://x/a> <http://x/p> <http://x/b> .\n\
                   <http://x/a> <http://x/p> <http://x/b> .\n";
        let added = load_ntriples(&mut store, doc).unwrap();
        assert_eq!(added, 1);
    }
}
