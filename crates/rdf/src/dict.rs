//! Term dictionary: interns [`Term`]s into dense `u32` identifiers.
//!
//! Every triple in the store is a compact `[TermId; 3]`, which keeps the
//! indexes small and makes joins integer comparisons — the same design used
//! by production RDF engines (Virtuoso's IRI_ID, oxigraph's encoded terms).

use rustc_hash::FxHashMap;

use crate::term::Term;

/// A dense identifier for an interned [`Term`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Bidirectional term <-> id mapping.
///
/// `Clone` supports the store's copy-on-write versioning: an `Arc`-shared
/// dictionary is deep-copied only when a new version interns its first new
/// term.
#[derive(Default, Clone)]
pub struct TermDict {
    by_term: FxHashMap<Term, TermId>,
    by_id: Vec<Term>,
}

impl TermDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.by_term.get(&term) {
            return id;
        }
        let id = TermId(self.by_id.len() as u32);
        self.by_id.push(term.clone());
        self.by_term.insert(term, id);
        id
    }

    /// Look up an existing term without interning.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Resolve an id back to its term. Panics on a foreign id.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.by_id[id.0 as usize]
    }

    /// Resolve an id if it belongs to this dictionary.
    pub fn try_resolve(&self, id: TermId) -> Option<&Term> {
        self.by_id.get(id.0 as usize)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate all `(id, term)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.by_id.iter().enumerate().map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.intern(Term::iri("http://x/a"));
        let b = d.intern(Term::iri("http://x/a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut d = TermDict::new();
        let a = d.intern(Term::iri("http://x/a"));
        let b = d.intern(Term::str("http://x/a")); // same text, different kind
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut d = TermDict::new();
        let terms = [Term::iri("i"), Term::str("s"), Term::int(4), Term::blank("b")];
        for t in &terms {
            let id = d.intern(t.clone());
            assert_eq!(d.resolve(id), t);
            assert_eq!(d.get(t), Some(id));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let d = TermDict::new();
        assert_eq!(d.get(&Term::iri("missing")), None);
        assert!(d.is_empty());
    }
}
