//! Error types for the RDF/SPARQL engine.

use std::fmt;

/// Errors raised while parsing or evaluating SPARQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the query string.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// Grammar error.
    Parse {
        /// Human-readable description.
        message: String,
    },
    /// Evaluation-time error (unbound variable in a template, bad filter...).
    Eval {
        /// Human-readable description.
        message: String,
    },
}

impl SparqlError {
    /// Build a parse error.
    pub fn parse(message: impl Into<String>) -> Self {
        SparqlError::Parse { message: message.into() }
    }

    /// Build an evaluation error.
    pub fn eval(message: impl Into<String>) -> Self {
        SparqlError::Eval { message: message.into() }
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { position, message } => {
                write!(f, "lexical error at byte {position}: {message}")
            }
            SparqlError::Parse { message } => write!(f, "parse error: {message}"),
            SparqlError::Eval { message } => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for SparqlError {}
