//! RDF terms: IRIs, literals and blank nodes.

use std::fmt;

/// Common XSD datatype IRIs.
pub mod xsd {
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
}

/// The `rdf:type` predicate IRI (`a` in SPARQL/Turtle).
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// An RDF term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference.
    Iri(String),
    /// A literal with optional datatype and language tag.
    Literal {
        /// The lexical form.
        lexical: String,
        /// Datatype IRI, when typed.
        datatype: Option<String>,
        /// Language tag, when tagged.
        lang: Option<String>,
    },
    /// A blank node with a local label.
    Blank(String),
}

impl Term {
    /// IRI constructor.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Plain string literal constructor.
    pub fn str(value: impl Into<String>) -> Self {
        Term::Literal { lexical: value.into(), datatype: None, lang: None }
    }

    /// `xsd:integer` literal constructor.
    pub fn int(value: i64) -> Self {
        Term::Literal {
            lexical: value.to_string(),
            datatype: Some(xsd::INTEGER.to_owned()),
            lang: None,
        }
    }

    /// `xsd:double` literal constructor.
    pub fn double(value: f64) -> Self {
        Term::Literal {
            lexical: value.to_string(),
            datatype: Some(xsd::DOUBLE.to_owned()),
            lang: None,
        }
    }

    /// Blank node constructor.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(label.into())
    }

    /// The IRI string, when this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(v) => Some(v),
            _ => None,
        }
    }

    /// The lexical form, when this term is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// Parse the literal as an integer, when possible.
    pub fn as_int(&self) -> Option<i64> {
        self.as_literal()?.parse().ok()
    }

    /// Parse the literal as a double, when possible.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_literal()?.parse().ok()
    }

    /// True for IRI terms.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for literal terms.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// True for blank nodes.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// Numeric interpretation used by SPARQL comparison operators.
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, .. } => lexical.parse().ok(),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    /// N-Triples-style rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(v) => write!(f, "<{v}>"),
            Term::Literal { lexical, datatype, lang } => {
                write!(f, "\"{}\"", escape_literal(lexical))?;
                if let Some(l) = lang {
                    write!(f, "@{l}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
            Term::Blank(label) => write!(f, "_:{label}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Escape `"` and `\` and control characters for N-Triples output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Undo [`escape_literal`].
pub fn unescape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Term::iri("http://x/a").as_iri(), Some("http://x/a"));
        assert_eq!(Term::int(42).as_int(), Some(42));
        assert_eq!(Term::double(1.5).as_f64(), Some(1.5));
        assert_eq!(Term::str("hi").as_literal(), Some("hi"));
        assert!(Term::blank("b0").is_blank());
    }

    #[test]
    fn display_ntriples_forms() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::str("hi").to_string(), "\"hi\"");
        assert_eq!(Term::int(7).to_string(), "\"7\"^^<http://www.w3.org/2001/XMLSchema#integer>");
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
    }

    #[test]
    fn escape_roundtrip() {
        let nasty = "line1\nline2\t\"quoted\" \\slash";
        assert_eq!(unescape_literal(&escape_literal(nasty)), nasty);
    }

    #[test]
    fn numeric_comparisons() {
        assert_eq!(Term::int(3).numeric(), Some(3.0));
        assert_eq!(Term::str("2.5").numeric(), Some(2.5));
        assert_eq!(Term::iri("x").numeric(), None);
    }
}
