//! The triple store: three orderings (SPO/POS/OSP) over interned triples.
//!
//! This is the reproduction's Virtuoso stand-in: the KGNet platform loads
//! knowledge graphs here, the meta-sampler extracts task-specific subgraphs
//! from it through pattern scans, and the SPARQL engine evaluates basic
//! graph patterns against its indexes.

use std::collections::{btree_set, BTreeSet};
use std::ops::Bound;

use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHashSet};

use crate::dict::{TermDict, TermId};
use crate::term::{Term, RDF_TYPE};

/// A triple of interned term ids `(subject, predicate, object)`.
pub type Triple = (TermId, TermId, TermId);

/// One position of a triple pattern: bound to a term id or a wildcard.
pub type PatternSlot = Option<TermId>;

/// Cached index statistics for one predicate, used by the query planner to
/// order joins by estimated cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredicateStats {
    /// Triples using this predicate.
    pub triples: usize,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: usize,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: usize,
}

/// Lazily computed per-predicate statistics, invalidated wholesale whenever
/// the store mutates (tracked by a generation counter).
#[derive(Debug, Default)]
struct StatsCache {
    generation: u64,
    by_pred: FxHashMap<u32, PredicateStats>,
}

/// An in-memory RDF store with SPO, POS and OSP indexes.
#[derive(Default)]
pub struct RdfStore {
    dict: TermDict,
    spo: BTreeSet<(u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32)>,
    /// Bumped on every successful insert/remove; stats cached per generation.
    generation: u64,
    stats: Mutex<StatsCache>,
}

impl RdfStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term dictionary (for id resolution).
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Intern a term without asserting any triple.
    pub fn intern(&mut self, term: Term) -> TermId {
        self.dict.intern(term)
    }

    /// Look up an already-interned term.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.dict.get(term)
    }

    /// Resolve a term id.
    pub fn resolve(&self, id: TermId) -> &Term {
        self.dict.resolve(id)
    }

    /// Insert a triple of terms. Returns `true` when newly added.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Insert a triple of pre-interned ids. Returns `true` when newly added.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let added = self.spo.insert((s.0, p.0, o.0));
        if added {
            self.pos.insert((p.0, o.0, s.0));
            self.osp.insert((o.0, s.0, p.0));
            self.generation += 1;
        }
        added
    }

    /// Remove a triple of terms. Returns `true` when it existed.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.get(s), self.dict.get(p), self.dict.get(o)) {
            (Some(s), Some(p), Some(o)) => self.remove_ids(s, p, o),
            _ => false,
        }
    }

    /// Remove a triple of ids. Returns `true` when it existed.
    pub fn remove_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let removed = self.spo.remove(&(s.0, p.0, o.0));
        if removed {
            self.pos.remove(&(p.0, o.0, s.0));
            self.osp.remove(&(o.0, s.0, p.0));
            self.generation += 1;
        }
        removed
    }

    /// Mutation counter; bumped whenever a triple is added or removed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Membership test on ids.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(&(s.0, p.0, o.0))
    }

    /// Membership test on terms.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.get(s), self.dict.get(p), self.dict.get(o)) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(s, p, o),
            _ => false,
        }
    }

    /// Iterate every triple in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| (TermId(s), TermId(p), TermId(o)))
    }

    /// Lazily match a triple pattern, yielding each match in index order.
    ///
    /// Index choice: `S??`/`SP?`/`SPO` use SPO; `?P?`/`?PO` use POS;
    /// `??O`/`S?O` use OSP; `???` scans SPO. Because the iterator walks the
    /// underlying B-tree range on demand, short-circuiting consumers (e.g. a
    /// `LIMIT k` query) stop the index scan as soon as they have enough
    /// matches.
    pub fn scan_iter(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot) -> ScanIter<'_> {
        let inner = match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                ScanInner::One(self.contains_ids(s, p, o).then_some((s, p, o)))
            }
            (Some(s), Some(p), None) => ScanInner::Spo(range2(&self.spo, s.0, p.0)),
            (Some(s), None, None) => ScanInner::Spo(range1(&self.spo, s.0)),
            (None, Some(p), Some(o)) => ScanInner::Pos(range2(&self.pos, p.0, o.0)),
            (None, Some(p), None) => ScanInner::Pos(range1(&self.pos, p.0)),
            (None, None, Some(o)) => ScanInner::Osp(range1(&self.osp, o.0)),
            (Some(s), None, Some(o)) => ScanInner::Osp(range2(&self.osp, o.0, s.0)),
            (None, None, None) => ScanInner::Full(self.spo.iter()),
        };
        ScanIter { inner }
    }

    /// Match a triple pattern, pushing each match into `out`.
    pub fn scan(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot, out: &mut Vec<Triple>) {
        out.extend(self.scan_iter(s, p, o));
    }

    /// Collected matches for a pattern.
    pub fn matches(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot) -> Vec<Triple> {
        self.scan_iter(s, p, o).collect()
    }

    /// Count matches for a pattern without materialising terms.
    pub fn count(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot) -> usize {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains_ids(s, p, o)),
            (None, None, None) => self.spo.len(),
            _ => self.scan_iter(s, p, o).count(),
        }
    }

    /// Index statistics for one predicate: triple count plus distinct
    /// subject/object counts, i.e. the fan-outs the join planner divides by
    /// when a variable position is already bound.
    ///
    /// Computed on first request per predicate and cached; the cache is
    /// invalidated wholesale when the store mutates.
    pub fn predicate_stats(&self, p: TermId) -> PredicateStats {
        // parking_lot mutex: no poisoning, so a reader that panics (e.g. a
        // cancelled training job sharing the store) cannot wedge the cache.
        let mut cache = self.stats.lock();
        if cache.generation != self.generation {
            cache.by_pred.clear();
            cache.generation = self.generation;
        }
        if let Some(&stats) = cache.by_pred.get(&p.0) {
            return stats;
        }
        // POS range for p is sorted by object: distinct objects fall out of
        // run-length counting, distinct subjects need a set.
        let mut stats = PredicateStats::default();
        let mut last_object = None;
        let mut subjects = FxHashSet::default();
        for &(_, o, s) in range1(&self.pos, p.0) {
            stats.triples += 1;
            if last_object != Some(o) {
                stats.distinct_objects += 1;
                last_object = Some(o);
            }
            subjects.insert(s);
        }
        stats.distinct_subjects = subjects.len();
        cache.by_pred.insert(p.0, stats);
        stats
    }

    /// All subjects with `rdf:type <type_iri>`.
    pub fn subjects_of_type(&self, type_iri: &str) -> Vec<TermId> {
        let Some(rdf_type) = self.dict.get(&Term::iri(RDF_TYPE)) else {
            return vec![];
        };
        let Some(ty) = self.dict.get(&Term::iri(type_iri)) else {
            return vec![];
        };
        range2(&self.pos, rdf_type.0, ty.0).map(|&(_, _, s)| TermId(s)).collect()
    }

    /// The `rdf:type` objects of a subject.
    pub fn types_of(&self, subject: TermId) -> Vec<TermId> {
        let Some(rdf_type) = self.dict.get(&Term::iri(RDF_TYPE)) else {
            return vec![];
        };
        range2(&self.spo, subject.0, rdf_type.0).map(|&(_, _, o)| TermId(o)).collect()
    }

    /// Distinct predicates in the store.
    pub fn predicates(&self) -> Vec<TermId> {
        let mut out = Vec::new();
        let mut last: Option<u32> = None;
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                out.push(TermId(p));
                last = Some(p);
            }
        }
        out
    }

    /// Serialise to N-Triples text (stable SPO order).
    pub fn to_ntriples(&self) -> String {
        let mut out = String::new();
        for (s, p, o) in self.iter() {
            out.push_str(&format!(
                "{} {} {} .\n",
                self.resolve(s),
                self.resolve(p),
                self.resolve(o)
            ));
        }
        out
    }
}

/// Lazy pattern-match iterator returned by [`RdfStore::scan_iter`].
pub struct ScanIter<'a> {
    inner: ScanInner<'a>,
}

/// Which index backs the scan, with its tuple order.
enum ScanInner<'a> {
    /// Fully-ground pattern: at most one match.
    One(Option<Triple>),
    /// SPO-ordered range: tuples are `(s, p, o)`.
    Spo(btree_set::Range<'a, (u32, u32, u32)>),
    /// POS-ordered range: tuples are `(p, o, s)`.
    Pos(btree_set::Range<'a, (u32, u32, u32)>),
    /// OSP-ordered range: tuples are `(o, s, p)`.
    Osp(btree_set::Range<'a, (u32, u32, u32)>),
    /// Unconstrained scan over the whole SPO index.
    Full(btree_set::Iter<'a, (u32, u32, u32)>),
}

impl Iterator for ScanIter<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        match &mut self.inner {
            ScanInner::One(t) => t.take(),
            ScanInner::Spo(r) => r.next().map(|&(s, p, o)| (TermId(s), TermId(p), TermId(o))),
            ScanInner::Pos(r) => r.next().map(|&(p, o, s)| (TermId(s), TermId(p), TermId(o))),
            ScanInner::Osp(r) => r.next().map(|&(o, s, p)| (TermId(s), TermId(p), TermId(o))),
            ScanInner::Full(it) => it.next().map(|&(s, p, o)| (TermId(s), TermId(p), TermId(o))),
        }
    }
}

fn range1(set: &BTreeSet<(u32, u32, u32)>, a: u32) -> btree_set::Range<'_, (u32, u32, u32)> {
    set.range((Bound::Included((a, 0, 0)), Bound::Included((a, u32::MAX, u32::MAX))))
}

fn range2(
    set: &BTreeSet<(u32, u32, u32)>,
    a: u32,
    b: u32,
) -> btree_set::Range<'_, (u32, u32, u32)> {
    set.range((Bound::Included((a, b, 0)), Bound::Included((a, b, u32::MAX))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn small_store() -> RdfStore {
        let mut st = RdfStore::new();
        st.insert(iri("p1"), iri("cites"), iri("p2"));
        st.insert(iri("p1"), iri("title"), Term::str("Paper one"));
        st.insert(iri("p2"), iri("cites"), iri("p3"));
        st.insert(iri("p1"), Term::iri(RDF_TYPE), iri("Publication"));
        st.insert(iri("p2"), Term::iri(RDF_TYPE), iri("Publication"));
        st
    }

    #[test]
    fn insert_is_idempotent() {
        let mut st = RdfStore::new();
        assert!(st.insert(iri("a"), iri("p"), iri("b")));
        assert!(!st.insert(iri("a"), iri("p"), iri("b")));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut st = small_store();
        assert!(st.remove(&iri("p1"), &iri("cites"), &iri("p2")));
        assert_eq!(st.len(), 4);
        let p = st.lookup(&iri("cites")).unwrap();
        assert_eq!(st.count(None, Some(p), None), 1);
        let s = st.lookup(&iri("p1")).unwrap();
        assert_eq!(st.count(Some(s), None, None), 2);
    }

    #[test]
    fn scan_each_pattern_shape() {
        let st = small_store();
        let s = st.lookup(&iri("p1")).unwrap();
        let p = st.lookup(&iri("cites")).unwrap();
        let o = st.lookup(&iri("p2")).unwrap();
        assert_eq!(st.matches(Some(s), Some(p), Some(o)).len(), 1);
        assert_eq!(st.matches(Some(s), Some(p), None).len(), 1);
        assert_eq!(st.matches(Some(s), None, None).len(), 3);
        assert_eq!(st.matches(None, Some(p), Some(o)).len(), 1);
        assert_eq!(st.matches(None, Some(p), None).len(), 2);
        assert_eq!(st.matches(None, None, Some(o)).len(), 1);
        assert_eq!(st.matches(Some(s), None, Some(o)).len(), 1);
        assert_eq!(st.matches(None, None, None).len(), 5);
    }

    #[test]
    fn count_matches_scan_lengths() {
        let st = small_store();
        let p = st.lookup(&iri("cites")).unwrap();
        assert_eq!(st.count(None, Some(p), None), st.matches(None, Some(p), None).len());
        assert_eq!(st.count(None, None, None), st.len());
    }

    #[test]
    fn subjects_of_type_finds_typed_nodes() {
        let st = small_store();
        let subs = st.subjects_of_type("http://x/Publication");
        assert_eq!(subs.len(), 2);
        let names: Vec<&Term> = subs.iter().map(|&s| st.resolve(s)).collect();
        assert!(names.contains(&&iri("p1")));
        assert!(names.contains(&&iri("p2")));
    }

    #[test]
    fn predicates_are_distinct() {
        let st = small_store();
        assert_eq!(st.predicates().len(), 3); // cites, title, rdf:type
    }

    #[test]
    fn scan_iter_is_lazy_and_matches_scan() {
        let st = small_store();
        let p = st.lookup(&iri("cites")).unwrap();
        // Taking one match must not require walking the whole range.
        let first = st.scan_iter(None, Some(p), None).next().unwrap();
        assert!(st.matches(None, Some(p), None).contains(&first));
        // Full drain agrees with the eager scan for every shape.
        let s = st.lookup(&iri("p1")).unwrap();
        for (a, b, c) in [(None, None, None), (Some(s), None, None), (None, Some(p), None)] {
            assert_eq!(st.scan_iter(a, b, c).collect::<Vec<_>>(), st.matches(a, b, c));
        }
    }

    #[test]
    fn predicate_stats_counts_and_invalidates() {
        let mut st = small_store();
        let cites = st.lookup(&iri("cites")).unwrap();
        let stats = st.predicate_stats(cites);
        assert_eq!(stats.triples, 2);
        assert_eq!(stats.distinct_subjects, 2); // p1, p2
        assert_eq!(stats.distinct_objects, 2); // p2, p3

        // rdf:type has two subjects sharing one object class.
        let ty = st.lookup(&Term::iri(RDF_TYPE)).unwrap();
        let stats = st.predicate_stats(ty);
        assert_eq!(stats.distinct_subjects, 2);
        assert_eq!(stats.distinct_objects, 1);

        // Mutations invalidate the cache via the generation counter.
        let generation = st.generation();
        st.insert(iri("p3"), iri("cites"), iri("p1"));
        assert!(st.generation() > generation);
        assert_eq!(st.predicate_stats(cites).triples, 3);
        assert_eq!(st.predicate_stats(cites).distinct_subjects, 3);
    }

    #[test]
    fn predicate_stats_of_unknown_predicate_is_zero() {
        let st = small_store();
        let dangling = st.lookup(&iri("title")).unwrap();
        assert_eq!(st.predicate_stats(dangling).triples, 1);
        // An id never used as predicate has empty stats.
        let p1 = st.lookup(&iri("p1")).unwrap();
        assert_eq!(st.predicate_stats(p1), PredicateStats::default());
    }

    #[test]
    fn ntriples_dump_contains_all_triples() {
        let st = small_store();
        let text = st.to_ntriples();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("<http://x/p1> <http://x/cites> <http://x/p2> ."));
    }
}
