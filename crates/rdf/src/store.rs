//! The triple store: three orderings (SPO/POS/OSP) over interned triples.
//!
//! This is the reproduction's Virtuoso stand-in: the KGNet platform loads
//! knowledge graphs here, the meta-sampler extracts task-specific subgraphs
//! from it through pattern scans, and the SPARQL engine evaluates basic
//! graph patterns against its indexes.

use std::collections::BTreeSet;
use std::ops::Bound;

use crate::dict::{TermDict, TermId};
use crate::term::{Term, RDF_TYPE};

/// A triple of interned term ids `(subject, predicate, object)`.
pub type Triple = (TermId, TermId, TermId);

/// One position of a triple pattern: bound to a term id or a wildcard.
pub type PatternSlot = Option<TermId>;

/// An in-memory RDF store with SPO, POS and OSP indexes.
#[derive(Default)]
pub struct RdfStore {
    dict: TermDict,
    spo: BTreeSet<(u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32)>,
}

impl RdfStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term dictionary (for id resolution).
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Intern a term without asserting any triple.
    pub fn intern(&mut self, term: Term) -> TermId {
        self.dict.intern(term)
    }

    /// Look up an already-interned term.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.dict.get(term)
    }

    /// Resolve a term id.
    pub fn resolve(&self, id: TermId) -> &Term {
        self.dict.resolve(id)
    }

    /// Insert a triple of terms. Returns `true` when newly added.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Insert a triple of pre-interned ids. Returns `true` when newly added.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let added = self.spo.insert((s.0, p.0, o.0));
        if added {
            self.pos.insert((p.0, o.0, s.0));
            self.osp.insert((o.0, s.0, p.0));
        }
        added
    }

    /// Remove a triple of terms. Returns `true` when it existed.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.get(s), self.dict.get(p), self.dict.get(o)) {
            (Some(s), Some(p), Some(o)) => self.remove_ids(s, p, o),
            _ => false,
        }
    }

    /// Remove a triple of ids. Returns `true` when it existed.
    pub fn remove_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let removed = self.spo.remove(&(s.0, p.0, o.0));
        if removed {
            self.pos.remove(&(p.0, o.0, s.0));
            self.osp.remove(&(o.0, s.0, p.0));
        }
        removed
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Membership test on ids.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(&(s.0, p.0, o.0))
    }

    /// Membership test on terms.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.get(s), self.dict.get(p), self.dict.get(o)) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(s, p, o),
            _ => false,
        }
    }

    /// Iterate every triple in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| (TermId(s), TermId(p), TermId(o)))
    }

    /// Match a triple pattern, pushing each match into `out`.
    ///
    /// Index choice: `S??`/`SP?`/`SPO` use SPO; `?P?`/`?PO` use POS;
    /// `??O`/`S?O` use OSP; `???` scans SPO.
    pub fn scan(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot, out: &mut Vec<Triple>) {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains_ids(s, p, o) {
                    out.push((s, p, o));
                }
            }
            (Some(s), Some(p), None) => {
                for &(a, b, c) in range2(&self.spo, s.0, p.0) {
                    out.push((TermId(a), TermId(b), TermId(c)));
                }
            }
            (Some(s), None, None) => {
                for &(a, b, c) in range1(&self.spo, s.0) {
                    out.push((TermId(a), TermId(b), TermId(c)));
                }
            }
            (None, Some(p), Some(o)) => {
                for &(a, b, c) in range2(&self.pos, p.0, o.0) {
                    out.push((TermId(c), TermId(a), TermId(b)));
                }
            }
            (None, Some(p), None) => {
                for &(a, b, c) in range1(&self.pos, p.0) {
                    out.push((TermId(c), TermId(a), TermId(b)));
                }
            }
            (None, None, Some(o)) => {
                for &(a, b, c) in range1(&self.osp, o.0) {
                    out.push((TermId(b), TermId(c), TermId(a)));
                }
            }
            (Some(s), None, Some(o)) => {
                for &(a, b, c) in range2(&self.osp, o.0, s.0) {
                    out.push((TermId(b), TermId(c), TermId(a)));
                }
            }
            (None, None, None) => {
                for &(a, b, c) in &self.spo {
                    out.push((TermId(a), TermId(b), TermId(c)));
                }
            }
        }
    }

    /// Collected matches for a pattern.
    pub fn matches(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot) -> Vec<Triple> {
        let mut out = Vec::new();
        self.scan(s, p, o, &mut out);
        out
    }

    /// Count matches for a pattern without materialising terms.
    pub fn count(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot) -> usize {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains_ids(s, p, o)),
            (Some(s), Some(p), None) => range2(&self.spo, s.0, p.0).count(),
            (Some(s), None, None) => range1(&self.spo, s.0).count(),
            (None, Some(p), Some(o)) => range2(&self.pos, p.0, o.0).count(),
            (None, Some(p), None) => range1(&self.pos, p.0).count(),
            (None, None, Some(o)) => range1(&self.osp, o.0).count(),
            (Some(s), None, Some(o)) => range2(&self.osp, o.0, s.0).count(),
            (None, None, None) => self.spo.len(),
        }
    }

    /// All subjects with `rdf:type <type_iri>`.
    pub fn subjects_of_type(&self, type_iri: &str) -> Vec<TermId> {
        let Some(rdf_type) = self.dict.get(&Term::iri(RDF_TYPE)) else {
            return vec![];
        };
        let Some(ty) = self.dict.get(&Term::iri(type_iri)) else {
            return vec![];
        };
        range2(&self.pos, rdf_type.0, ty.0).map(|&(_, _, s)| TermId(s)).collect()
    }

    /// The `rdf:type` objects of a subject.
    pub fn types_of(&self, subject: TermId) -> Vec<TermId> {
        let Some(rdf_type) = self.dict.get(&Term::iri(RDF_TYPE)) else {
            return vec![];
        };
        range2(&self.spo, subject.0, rdf_type.0).map(|&(_, _, o)| TermId(o)).collect()
    }

    /// Distinct predicates in the store.
    pub fn predicates(&self) -> Vec<TermId> {
        let mut out = Vec::new();
        let mut last: Option<u32> = None;
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                out.push(TermId(p));
                last = Some(p);
            }
        }
        out
    }

    /// Serialise to N-Triples text (stable SPO order).
    pub fn to_ntriples(&self) -> String {
        let mut out = String::new();
        for (s, p, o) in self.iter() {
            out.push_str(&format!(
                "{} {} {} .\n",
                self.resolve(s),
                self.resolve(p),
                self.resolve(o)
            ));
        }
        out
    }
}

fn range1(set: &BTreeSet<(u32, u32, u32)>, a: u32) -> impl Iterator<Item = &(u32, u32, u32)> {
    set.range((Bound::Included((a, 0, 0)), Bound::Included((a, u32::MAX, u32::MAX))))
}

fn range2(
    set: &BTreeSet<(u32, u32, u32)>,
    a: u32,
    b: u32,
) -> impl Iterator<Item = &(u32, u32, u32)> {
    set.range((Bound::Included((a, b, 0)), Bound::Included((a, b, u32::MAX))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn small_store() -> RdfStore {
        let mut st = RdfStore::new();
        st.insert(iri("p1"), iri("cites"), iri("p2"));
        st.insert(iri("p1"), iri("title"), Term::str("Paper one"));
        st.insert(iri("p2"), iri("cites"), iri("p3"));
        st.insert(iri("p1"), Term::iri(RDF_TYPE), iri("Publication"));
        st.insert(iri("p2"), Term::iri(RDF_TYPE), iri("Publication"));
        st
    }

    #[test]
    fn insert_is_idempotent() {
        let mut st = RdfStore::new();
        assert!(st.insert(iri("a"), iri("p"), iri("b")));
        assert!(!st.insert(iri("a"), iri("p"), iri("b")));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut st = small_store();
        assert!(st.remove(&iri("p1"), &iri("cites"), &iri("p2")));
        assert_eq!(st.len(), 4);
        let p = st.lookup(&iri("cites")).unwrap();
        assert_eq!(st.count(None, Some(p), None), 1);
        let s = st.lookup(&iri("p1")).unwrap();
        assert_eq!(st.count(Some(s), None, None), 2);
    }

    #[test]
    fn scan_each_pattern_shape() {
        let st = small_store();
        let s = st.lookup(&iri("p1")).unwrap();
        let p = st.lookup(&iri("cites")).unwrap();
        let o = st.lookup(&iri("p2")).unwrap();
        assert_eq!(st.matches(Some(s), Some(p), Some(o)).len(), 1);
        assert_eq!(st.matches(Some(s), Some(p), None).len(), 1);
        assert_eq!(st.matches(Some(s), None, None).len(), 3);
        assert_eq!(st.matches(None, Some(p), Some(o)).len(), 1);
        assert_eq!(st.matches(None, Some(p), None).len(), 2);
        assert_eq!(st.matches(None, None, Some(o)).len(), 1);
        assert_eq!(st.matches(Some(s), None, Some(o)).len(), 1);
        assert_eq!(st.matches(None, None, None).len(), 5);
    }

    #[test]
    fn count_matches_scan_lengths() {
        let st = small_store();
        let p = st.lookup(&iri("cites")).unwrap();
        assert_eq!(st.count(None, Some(p), None), st.matches(None, Some(p), None).len());
        assert_eq!(st.count(None, None, None), st.len());
    }

    #[test]
    fn subjects_of_type_finds_typed_nodes() {
        let st = small_store();
        let subs = st.subjects_of_type("http://x/Publication");
        assert_eq!(subs.len(), 2);
        let names: Vec<&Term> = subs.iter().map(|&s| st.resolve(s)).collect();
        assert!(names.contains(&&iri("p1")));
        assert!(names.contains(&&iri("p2")));
    }

    #[test]
    fn predicates_are_distinct() {
        let st = small_store();
        assert_eq!(st.predicates().len(), 3); // cites, title, rdf:type
    }

    #[test]
    fn ntriples_dump_contains_all_triples() {
        let st = small_store();
        let text = st.to_ntriples();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("<http://x/p1> <http://x/cites> <http://x/p2> ."));
    }
}
