//! The triple store: three orderings (SPO/POS/OSP) over interned triples.
//!
//! This is the reproduction's Virtuoso stand-in: the KGNet platform loads
//! knowledge graphs here, the meta-sampler extracts task-specific subgraphs
//! from it through pattern scans, and the SPARQL engine evaluates basic
//! graph patterns against its indexes.
//!
//! # Copy-on-write interior
//!
//! Each index is split into [`SHARDS`] B-tree shards keyed by the tuple's
//! first component, every shard behind its own [`Arc`]. Cloning a store is
//! therefore O(shards): the clone shares every shard (and the term
//! dictionary) with the original until one side mutates, at which point only
//! the touched shard is deep-copied ([`Arc::make_mut`]). This is what makes
//! MVCC snapshots cheap: a writer clones the current version, mutates its
//! private copy shard-by-shard, and publishes the result atomically while
//! readers keep scanning the old shards (see `shared.rs`).
//!
//! Because a shard holds every tuple whose first component hashes to it,
//! bound-first-component scans (`S??`, `?P?`, `??O` and their refinements)
//! stay single-shard range walks; only the unconstrained `???` scan pays a
//! k-way merge across shards to preserve global SPO order.

use std::collections::{btree_set, BTreeSet};
use std::iter::Peekable;
use std::ops::Bound;
use std::sync::Arc;

use kgnet_sync::Mutex;
use rustc_hash::{FxHashMap, FxHashSet};

use crate::dict::{TermDict, TermId};
use crate::term::{Term, RDF_TYPE};

/// A triple of interned term ids `(subject, predicate, object)`.
pub type Triple = (TermId, TermId, TermId);

/// One position of a triple pattern: bound to a term id or a wildcard.
pub type PatternSlot = Option<TermId>;

/// Number of copy-on-write B-tree shards per index.
const SHARDS: usize = 16;
const SHARD_MASK: u32 = SHARDS as u32 - 1;

/// Cached index statistics for one predicate, used by the query planner to
/// order joins by estimated cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredicateStats {
    /// Triples using this predicate.
    pub triples: usize,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: usize,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: usize,
}

/// Lazily computed per-predicate statistics, invalidated wholesale whenever
/// the store mutates (tracked by a generation counter).
#[derive(Debug, Default)]
struct StatsCache {
    generation: u64,
    by_pred: FxHashMap<u32, PredicateStats>,
}

/// One index ordering as copy-on-write B-tree shards, partitioned by the
/// first tuple component (`first & SHARD_MASK`). Tuples sharing a first
/// component live in one shard, so fixing the first component keeps range
/// scans single-shard.
#[derive(Clone, Default)]
struct ShardedIndex {
    shards: [Arc<BTreeSet<(u32, u32, u32)>>; SHARDS],
}

impl ShardedIndex {
    fn shard_of(first: u32) -> usize {
        (first & SHARD_MASK) as usize
    }

    fn contains(&self, t: &(u32, u32, u32)) -> bool {
        self.shards[Self::shard_of(t.0)].contains(t)
    }

    /// Insert, deep-copying the target shard only if it is shared *and* the
    /// tuple is actually new.
    fn insert(&mut self, t: (u32, u32, u32)) -> bool {
        let shard = &mut self.shards[Self::shard_of(t.0)];
        if shard.contains(&t) {
            return false;
        }
        Arc::make_mut(shard).insert(t)
    }

    /// Remove, deep-copying the target shard only if it is shared *and* the
    /// tuple is actually present.
    fn remove(&mut self, t: &(u32, u32, u32)) -> bool {
        let shard = &mut self.shards[Self::shard_of(t.0)];
        if !shard.contains(t) {
            return false;
        }
        Arc::make_mut(shard).remove(t)
    }

    /// All tuples whose first component is `a` (one shard, one range).
    fn range1(&self, a: u32) -> btree_set::Range<'_, (u32, u32, u32)> {
        self.shards[Self::shard_of(a)]
            .range((Bound::Included((a, 0, 0)), Bound::Included((a, u32::MAX, u32::MAX))))
    }

    /// All tuples with first component `a` and second component `b`.
    fn range2(&self, a: u32, b: u32) -> btree_set::Range<'_, (u32, u32, u32)> {
        self.shards[Self::shard_of(a)]
            .range((Bound::Included((a, b, 0)), Bound::Included((a, b, u32::MAX))))
    }

    /// Every tuple across all shards in global sort order (k-way merge).
    fn iter_merged(&self) -> MergeIter<'_> {
        MergeIter { heads: self.shards.iter().map(|s| s.iter().peekable()).collect() }
    }
}

/// K-way merge over the sorted shards of one index, restoring global tuple
/// order for unconstrained scans. With [`SHARDS`] = 16 heads the linear
/// min-scan per item beats a binary heap on constant factors.
struct MergeIter<'a> {
    heads: Vec<Peekable<btree_set::Iter<'a, (u32, u32, u32)>>>,
}

impl Iterator for MergeIter<'_> {
    type Item = (u32, u32, u32);

    fn next(&mut self) -> Option<(u32, u32, u32)> {
        let mut best: Option<(usize, (u32, u32, u32))> = None;
        for (i, head) in self.heads.iter_mut().enumerate() {
            if let Some(&&t) = head.peek() {
                if best.is_none_or(|(_, b)| t < b) {
                    best = Some((i, t));
                }
            }
        }
        let (i, t) = best?;
        self.heads[i].next();
        Some(t)
    }
}

/// An in-memory RDF store with SPO, POS and OSP indexes.
///
/// `Clone` is cheap (copy-on-write): the clone shares the term dictionary
/// and all index shards until either side mutates. The statistics cache is
/// *not* shared between clones — each version computes its own on demand —
/// so a pinned old snapshot and the current version never thrash one cache.
#[derive(Default)]
pub struct RdfStore {
    dict: Arc<TermDict>,
    spo: ShardedIndex,
    pos: ShardedIndex,
    osp: ShardedIndex,
    /// Triple count, maintained incrementally (shards make summing O(k)).
    triples: usize,
    /// Bumped on every successful insert/remove; stats cached per generation.
    generation: u64,
    stats: Mutex<StatsCache>,
}

impl Clone for RdfStore {
    fn clone(&self) -> Self {
        RdfStore {
            dict: Arc::clone(&self.dict),
            spo: self.spo.clone(),
            pos: self.pos.clone(),
            osp: self.osp.clone(),
            triples: self.triples,
            generation: self.generation,
            // Fresh, empty cache: stats are recomputed lazily per version.
            stats: Mutex::new(StatsCache::default()),
        }
    }
}

impl RdfStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term dictionary (for id resolution).
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Intern a term without asserting any triple.
    ///
    /// Looking up an already-interned term never copies the shared
    /// dictionary; only a genuinely new term pays the copy-on-write.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(id) = self.dict.get(&term) {
            return id;
        }
        Arc::make_mut(&mut self.dict).intern(term)
    }

    /// Look up an already-interned term.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.dict.get(term)
    }

    /// Resolve a term id.
    pub fn resolve(&self, id: TermId) -> &Term {
        self.dict.resolve(id)
    }

    /// Insert a triple of terms. Returns `true` when newly added.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.intern(s);
        let p = self.intern(p);
        let o = self.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Insert a triple of pre-interned ids. Returns `true` when newly added.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let added = self.spo.insert((s.0, p.0, o.0));
        if added {
            self.pos.insert((p.0, o.0, s.0));
            self.osp.insert((o.0, s.0, p.0));
            self.triples += 1;
            self.generation += 1;
        }
        added
    }

    /// Remove a triple of terms. Returns `true` when it existed.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.get(s), self.dict.get(p), self.dict.get(o)) {
            (Some(s), Some(p), Some(o)) => self.remove_ids(s, p, o),
            _ => false,
        }
    }

    /// Remove a triple of ids. Returns `true` when it existed.
    pub fn remove_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let removed = self.spo.remove(&(s.0, p.0, o.0));
        if removed {
            self.pos.remove(&(p.0, o.0, s.0));
            self.osp.remove(&(o.0, s.0, p.0));
            self.triples -= 1;
            self.generation += 1;
        }
        removed
    }

    /// Mutation counter; bumped whenever a triple is added or removed. This
    /// is the MVCC version id: a published snapshot is identified by the
    /// generation it was committed at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples == 0
    }

    /// Coarse index-memory estimate for this version: every triple is held
    /// as three `(u32, u32, u32)` entries (SPO/POS/OSP), doubled for B-tree
    /// node overhead. The term dictionary is shared between versions and is
    /// deliberately not counted.
    pub fn approx_bytes(&self) -> usize {
        self.triples * 3 * std::mem::size_of::<(u32, u32, u32)>() * 2
    }

    /// Membership test on ids.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(&(s.0, p.0, o.0))
    }

    /// Membership test on terms.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.get(s), self.dict.get(p), self.dict.get(o)) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(s, p, o),
            _ => false,
        }
    }

    /// Iterate every triple in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter_merged().map(|(s, p, o)| (TermId(s), TermId(p), TermId(o)))
    }

    /// Lazily match a triple pattern, yielding each match in index order.
    ///
    /// Index choice: `S??`/`SP?`/`SPO` use SPO; `?P?`/`?PO` use POS;
    /// `??O`/`S?O` use OSP; `???` merges the SPO shards. Because the
    /// iterator walks the underlying B-tree ranges on demand,
    /// short-circuiting consumers (e.g. a `LIMIT k` query) stop the index
    /// scan as soon as they have enough matches.
    pub fn scan_iter(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot) -> ScanIter<'_> {
        let inner = match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                ScanInner::One(self.contains_ids(s, p, o).then_some((s, p, o)))
            }
            (Some(s), Some(p), None) => ScanInner::Spo(self.spo.range2(s.0, p.0)),
            (Some(s), None, None) => ScanInner::Spo(self.spo.range1(s.0)),
            (None, Some(p), Some(o)) => ScanInner::Pos(self.pos.range2(p.0, o.0)),
            (None, Some(p), None) => ScanInner::Pos(self.pos.range1(p.0)),
            (None, None, Some(o)) => ScanInner::Osp(self.osp.range1(o.0)),
            (Some(s), None, Some(o)) => ScanInner::Osp(self.osp.range2(o.0, s.0)),
            (None, None, None) => ScanInner::Full(self.spo.iter_merged()),
        };
        ScanIter { inner }
    }

    /// Match a triple pattern, pushing each match into `out`.
    pub fn scan(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot, out: &mut Vec<Triple>) {
        out.extend(self.scan_iter(s, p, o));
    }

    /// Collected matches for a pattern.
    pub fn matches(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot) -> Vec<Triple> {
        self.scan_iter(s, p, o).collect()
    }

    /// Count matches for a pattern without materialising terms.
    pub fn count(&self, s: PatternSlot, p: PatternSlot, o: PatternSlot) -> usize {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains_ids(s, p, o)),
            (None, None, None) => self.triples,
            _ => self.scan_iter(s, p, o).count(),
        }
    }

    /// Index statistics for one predicate: triple count plus distinct
    /// subject/object counts, i.e. the fan-outs the join planner divides by
    /// when a variable position is already bound.
    ///
    /// Computed on first request per predicate and cached; the cache is
    /// invalidated wholesale when the store mutates. Each store version
    /// (snapshot) owns its cache, so stats are effectively snapshot-keyed.
    pub fn predicate_stats(&self, p: TermId) -> PredicateStats {
        // Non-poisoning facade mutex: a reader that panics (e.g. a
        // cancelled training job sharing the store) cannot wedge the cache.
        let mut cache = self.stats.lock();
        if cache.generation != self.generation {
            cache.by_pred.clear();
            cache.generation = self.generation;
        }
        if let Some(&stats) = cache.by_pred.get(&p.0) {
            return stats;
        }
        // POS range for p is sorted by object: distinct objects fall out of
        // run-length counting, distinct subjects need a set.
        let mut stats = PredicateStats::default();
        let mut last_object = None;
        let mut subjects = FxHashSet::default();
        for &(_, o, s) in self.pos.range1(p.0) {
            stats.triples += 1;
            if last_object != Some(o) {
                stats.distinct_objects += 1;
                last_object = Some(o);
            }
            subjects.insert(s);
        }
        stats.distinct_subjects = subjects.len();
        cache.by_pred.insert(p.0, stats);
        stats
    }

    /// All subjects with `rdf:type <type_iri>`.
    pub fn subjects_of_type(&self, type_iri: &str) -> Vec<TermId> {
        let Some(rdf_type) = self.dict.get(&Term::iri(RDF_TYPE)) else {
            return vec![];
        };
        let Some(ty) = self.dict.get(&Term::iri(type_iri)) else {
            return vec![];
        };
        self.pos.range2(rdf_type.0, ty.0).map(|&(_, _, s)| TermId(s)).collect()
    }

    /// The `rdf:type` objects of a subject.
    pub fn types_of(&self, subject: TermId) -> Vec<TermId> {
        let Some(rdf_type) = self.dict.get(&Term::iri(RDF_TYPE)) else {
            return vec![];
        };
        self.spo.range2(subject.0, rdf_type.0).map(|&(_, _, o)| TermId(o)).collect()
    }

    /// Distinct predicates in the store, ascending by id.
    pub fn predicates(&self) -> Vec<TermId> {
        // Shards partition the POS index by predicate id, so per-shard
        // run-length distincts never collide across shards; one global sort
        // restores ascending order.
        let mut out = Vec::new();
        for shard in &self.pos.shards {
            let mut last: Option<u32> = None;
            for &(p, _, _) in shard.iter() {
                if last != Some(p) {
                    out.push(p);
                    last = Some(p);
                }
            }
        }
        out.sort_unstable();
        out.into_iter().map(TermId).collect()
    }

    /// Serialise to N-Triples text (stable SPO order).
    pub fn to_ntriples(&self) -> String {
        let mut out = String::new();
        for (s, p, o) in self.iter() {
            out.push_str(&format!(
                "{} {} {} .\n",
                self.resolve(s),
                self.resolve(p),
                self.resolve(o)
            ));
        }
        out
    }
}

/// Lazy pattern-match iterator returned by [`RdfStore::scan_iter`].
pub struct ScanIter<'a> {
    inner: ScanInner<'a>,
}

/// Which index backs the scan, with its tuple order.
enum ScanInner<'a> {
    /// Fully-ground pattern: at most one match.
    One(Option<Triple>),
    /// SPO-ordered range: tuples are `(s, p, o)`.
    Spo(btree_set::Range<'a, (u32, u32, u32)>),
    /// POS-ordered range: tuples are `(p, o, s)`.
    Pos(btree_set::Range<'a, (u32, u32, u32)>),
    /// OSP-ordered range: tuples are `(o, s, p)`.
    Osp(btree_set::Range<'a, (u32, u32, u32)>),
    /// Unconstrained scan: k-way merge across the SPO shards.
    Full(MergeIter<'a>),
}

impl Iterator for ScanIter<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        match &mut self.inner {
            ScanInner::One(t) => t.take(),
            ScanInner::Spo(r) => r.next().map(|&(s, p, o)| (TermId(s), TermId(p), TermId(o))),
            ScanInner::Pos(r) => r.next().map(|&(p, o, s)| (TermId(s), TermId(p), TermId(o))),
            ScanInner::Osp(r) => r.next().map(|&(o, s, p)| (TermId(s), TermId(p), TermId(o))),
            ScanInner::Full(it) => it.next().map(|(s, p, o)| (TermId(s), TermId(p), TermId(o))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn small_store() -> RdfStore {
        let mut st = RdfStore::new();
        st.insert(iri("p1"), iri("cites"), iri("p2"));
        st.insert(iri("p1"), iri("title"), Term::str("Paper one"));
        st.insert(iri("p2"), iri("cites"), iri("p3"));
        st.insert(iri("p1"), Term::iri(RDF_TYPE), iri("Publication"));
        st.insert(iri("p2"), Term::iri(RDF_TYPE), iri("Publication"));
        st
    }

    #[test]
    fn insert_is_idempotent() {
        let mut st = RdfStore::new();
        assert!(st.insert(iri("a"), iri("p"), iri("b")));
        assert!(!st.insert(iri("a"), iri("p"), iri("b")));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut st = small_store();
        assert!(st.remove(&iri("p1"), &iri("cites"), &iri("p2")));
        assert_eq!(st.len(), 4);
        let p = st.lookup(&iri("cites")).unwrap();
        assert_eq!(st.count(None, Some(p), None), 1);
        let s = st.lookup(&iri("p1")).unwrap();
        assert_eq!(st.count(Some(s), None, None), 2);
    }

    #[test]
    fn scan_each_pattern_shape() {
        let st = small_store();
        let s = st.lookup(&iri("p1")).unwrap();
        let p = st.lookup(&iri("cites")).unwrap();
        let o = st.lookup(&iri("p2")).unwrap();
        assert_eq!(st.matches(Some(s), Some(p), Some(o)).len(), 1);
        assert_eq!(st.matches(Some(s), Some(p), None).len(), 1);
        assert_eq!(st.matches(Some(s), None, None).len(), 3);
        assert_eq!(st.matches(None, Some(p), Some(o)).len(), 1);
        assert_eq!(st.matches(None, Some(p), None).len(), 2);
        assert_eq!(st.matches(None, None, Some(o)).len(), 1);
        assert_eq!(st.matches(Some(s), None, Some(o)).len(), 1);
        assert_eq!(st.matches(None, None, None).len(), 5);
    }

    #[test]
    fn count_matches_scan_lengths() {
        let st = small_store();
        let p = st.lookup(&iri("cites")).unwrap();
        assert_eq!(st.count(None, Some(p), None), st.matches(None, Some(p), None).len());
        assert_eq!(st.count(None, None, None), st.len());
    }

    #[test]
    fn subjects_of_type_finds_typed_nodes() {
        let st = small_store();
        let subs = st.subjects_of_type("http://x/Publication");
        assert_eq!(subs.len(), 2);
        let names: Vec<&Term> = subs.iter().map(|&s| st.resolve(s)).collect();
        assert!(names.contains(&&iri("p1")));
        assert!(names.contains(&&iri("p2")));
    }

    #[test]
    fn predicates_are_distinct() {
        let st = small_store();
        assert_eq!(st.predicates().len(), 3); // cites, title, rdf:type
    }

    #[test]
    fn scan_iter_is_lazy_and_matches_scan() {
        let st = small_store();
        let p = st.lookup(&iri("cites")).unwrap();
        // Taking one match must not require walking the whole range.
        let first = st.scan_iter(None, Some(p), None).next().unwrap();
        assert!(st.matches(None, Some(p), None).contains(&first));
        // Full drain agrees with the eager scan for every shape.
        let s = st.lookup(&iri("p1")).unwrap();
        for (a, b, c) in [(None, None, None), (Some(s), None, None), (None, Some(p), None)] {
            assert_eq!(st.scan_iter(a, b, c).collect::<Vec<_>>(), st.matches(a, b, c));
        }
    }

    #[test]
    fn full_scan_merges_shards_in_global_spo_order() {
        // Enough triples that every shard is populated.
        let mut st = RdfStore::new();
        for i in 0..100u32 {
            st.insert(iri(&format!("s{i}")), iri(&format!("q{}", i % 7)), iri(&format!("o{i}")));
        }
        let merged: Vec<_> =
            st.scan_iter(None, None, None).map(|(s, p, o)| (s.0, p.0, o.0)).collect();
        assert_eq!(merged.len(), 100);
        let mut sorted = merged.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(merged, sorted, "merge must restore global sorted order without duplicates");
    }

    #[test]
    fn clone_is_copy_on_write_snapshot() {
        let st = small_store();
        let before = st.to_ntriples();
        let generation = st.generation();

        let mut clone = st.clone();
        clone.remove(&iri("p1"), &iri("cites"), &iri("p2"));
        clone.insert(iri("p9"), iri("cites"), iri("p1"));
        clone.insert(iri("p9"), iri("extra"), Term::str("new term"));

        // The original is bit-identical: same dump, length and generation.
        assert_eq!(st.to_ntriples(), before);
        assert_eq!(st.len(), 5);
        assert_eq!(st.generation(), generation);
        assert!(st.lookup(&iri("extra")).is_none(), "dict mutation leaked into the original");
        // The clone diverged independently.
        assert_eq!(clone.len(), 6);
        assert!(clone.generation() > generation);
        assert!(clone.contains(&iri("p9"), &iri("cites"), &iri("p1")));
        assert!(!clone.contains(&iri("p1"), &iri("cites"), &iri("p2")));
    }

    #[test]
    fn predicate_stats_counts_and_invalidates() {
        let mut st = small_store();
        let cites = st.lookup(&iri("cites")).unwrap();
        let stats = st.predicate_stats(cites);
        assert_eq!(stats.triples, 2);
        assert_eq!(stats.distinct_subjects, 2); // p1, p2
        assert_eq!(stats.distinct_objects, 2); // p2, p3

        // rdf:type has two subjects sharing one object class.
        let ty = st.lookup(&Term::iri(RDF_TYPE)).unwrap();
        let stats = st.predicate_stats(ty);
        assert_eq!(stats.distinct_subjects, 2);
        assert_eq!(stats.distinct_objects, 1);

        // Mutations invalidate the cache via the generation counter.
        let generation = st.generation();
        st.insert(iri("p3"), iri("cites"), iri("p1"));
        assert!(st.generation() > generation);
        assert_eq!(st.predicate_stats(cites).triples, 3);
        assert_eq!(st.predicate_stats(cites).distinct_subjects, 3);
    }

    #[test]
    fn predicate_stats_of_unknown_predicate_is_zero() {
        let st = small_store();
        let dangling = st.lookup(&iri("title")).unwrap();
        assert_eq!(st.predicate_stats(dangling).triples, 1);
        // An id never used as predicate has empty stats.
        let p1 = st.lookup(&iri("p1")).unwrap();
        assert_eq!(st.predicate_stats(p1), PredicateStats::default());
    }

    #[test]
    fn ntriples_dump_contains_all_triples() {
        let st = small_store();
        let text = st.to_ntriples();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("<http://x/p1> <http://x/cites> <http://x/p2> ."));
    }
}
