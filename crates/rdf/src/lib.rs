//! # kgnet-rdf
//!
//! An in-memory RDF engine: interned terms, a triple store with SPO/POS/OSP
//! indexes and a SPARQL subset (SELECT with BGPs, FILTER, OPTIONAL,
//! sub-SELECT, COUNT aggregates, ORDER/LIMIT/OFFSET; INSERT/DELETE updates).
//!
//! In the paper's architecture this crate plays the role of the Virtuoso
//! endpoint that stores the knowledge graphs, answers the meta-sampler's
//! extraction queries and executes the rewritten SPARQL produced by the
//! SPARQL-ML query manager.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dict;
pub mod error;
pub mod ntriples;
pub mod shared;
pub mod sparql;
pub mod store;
pub mod term;

pub use dict::{TermDict, TermId};
pub use error::SparqlError;
pub use ntriples::{load_ntriples, parse_ntriples};
pub use shared::{RetainedVersion, SharedStore, Snapshot, WriteTxn};
pub use sparql::{
    execute, query, query_with_stats, ExecOutcome, ExecStats, OpProfile, OpTiming, PreparedQuery,
    QueryResult,
};
pub use store::{PredicateStats, RdfStore, Triple};
pub use term::Term;

#[cfg(test)]
mod proptests {
    use crate::store::RdfStore;
    use crate::term::Term;
    use proptest::prelude::*;

    fn arb_term() -> impl Strategy<Value = Term> {
        prop_oneof![
            "[a-z]{1,6}".prop_map(|s| Term::iri(format!("http://x/{s}"))),
            "[a-z ]{0,8}".prop_map(Term::str),
            any::<i32>().prop_map(|v| Term::int(v as i64)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// All three indexes agree with the canonical triple set.
        #[test]
        fn indexes_stay_coherent(
            ops in proptest::collection::vec((arb_term(), arb_term(), arb_term(), any::<bool>()), 1..60),
        ) {
            let mut st = RdfStore::new();
            let mut reference = std::collections::BTreeSet::new();
            for (s, p, o, insert) in ops {
                if insert {
                    st.insert(s.clone(), p.clone(), o.clone());
                    reference.insert((s, p, o));
                } else {
                    st.remove(&s, &p, &o);
                    reference.remove(&(s, p, o));
                }
            }
            prop_assert_eq!(st.len(), reference.len());
            // Every reference triple is findable through every index shape.
            for (s, p, o) in &reference {
                prop_assert!(st.contains(s, p, o));
                let sid = st.lookup(s).unwrap();
                let pid = st.lookup(p).unwrap();
                let oid = st.lookup(o).unwrap();
                prop_assert!(st.matches(Some(sid), None, None).iter().any(|&(a, b, c)| (a, b, c) == (sid, pid, oid)));
                prop_assert!(st.matches(None, Some(pid), None).iter().any(|&(a, b, c)| (a, b, c) == (sid, pid, oid)));
                prop_assert!(st.matches(None, None, Some(oid)).iter().any(|&(a, b, c)| (a, b, c) == (sid, pid, oid)));
            }
        }

        /// Count agrees with the length of the scan for every pattern shape.
        #[test]
        fn count_matches_scan(
            triples in proptest::collection::vec((arb_term(), arb_term(), arb_term()), 1..40),
        ) {
            let mut st = RdfStore::new();
            for (s, p, o) in &triples {
                st.insert(s.clone(), p.clone(), o.clone());
            }
            let (s0, p0, o0) = &triples[0];
            let s = st.lookup(s0);
            let p = st.lookup(p0);
            let o = st.lookup(o0);
            for (a, b, c) in [
                (None, None, None),
                (s, None, None),
                (s, p, None),
                (s, p, o),
                (None, p, None),
                (None, p, o),
                (None, None, o),
                (s, None, o),
            ] {
                prop_assert_eq!(st.count(a, b, c), st.matches(a, b, c).len());
            }
        }

        /// Term display output parses back through the SPARQL lexer as one
        /// ground token (printer/lexer round-trip).
        #[test]
        fn term_display_lexes_back(t in arb_term()) {
            let text = t.to_string();
            let toks = crate::sparql::lexer::tokenize(&text).unwrap();
            // Token + EOF.
            prop_assert_eq!(toks.len(), 2);
        }
    }
}
