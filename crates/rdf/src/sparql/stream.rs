//! Streaming (pull-based) execution of group plans.
//!
//! Operators implement [`BindingStream`] and yield one binding at a time, so
//! downstream short-circuiting (`LIMIT k`) stops the upstream index scans as
//! soon as enough solutions have been produced — nothing between join steps
//! is materialised. The pipeline for a [`GroupPlan`] is: seed → eager
//! filters → one [`ScanStep`] per join step (index nested-loop join with
//! pushed-down filters) → sub-SELECT joins → OPTIONAL left-joins → late
//! filters.
//!
//! [`exec_group_materialised`] is the loop-based reference implementation of
//! the same plan; the streaming operators must enumerate exactly the same
//! bindings in the same order (property-tested in the conformance suite).

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use crate::sparql::ast::Expr;
use crate::sparql::eval::{eval_expr, Binding, VarTable};
use crate::sparql::plan::{GroupPlan, PatternStep, Slot, SubPlan};
use crate::store::{RdfStore, ScanIter};

/// Counters accumulated while executing one query.
#[derive(Debug, Default)]
pub struct ExecCounters {
    /// Triples pulled from store index scans.
    pub triples_scanned: Cell<u64>,
}

/// A snapshot of [`ExecCounters`] returned alongside query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Triples pulled from store index scans.
    pub triples_scanned: u64,
    /// Bindings emitted by the root of the operator pipeline.
    pub bindings_emitted: u64,
}

/// A pull-based stream of bindings.
pub trait BindingStream {
    /// The next binding, or `None` when exhausted.
    fn next_binding(&mut self) -> Option<Binding>;
}

/// Shared read-only execution context.
#[derive(Clone, Copy)]
pub(crate) struct ExecCtx<'a> {
    pub(crate) store: &'a RdfStore,
    pub(crate) vars: &'a VarTable,
    pub(crate) counters: &'a ExecCounters,
}

impl<'a> ExecCtx<'a> {
    fn passes(&self, filters: &[Expr], b: &Binding) -> bool {
        filters.iter().all(|f| eval_expr(self.store, f, b, self.vars))
    }
}

/// Build the streaming pipeline for `plan`, starting from `seed`.
pub(crate) fn build_group_stream<'a>(
    ctx: ExecCtx<'a>,
    plan: &'a GroupPlan,
    seed: Binding,
) -> Box<dyn BindingStream + 'a> {
    if plan.impossible {
        return Box::new(Seed { binding: None });
    }
    let mut stream: Box<dyn BindingStream + 'a> = Box::new(Seed { binding: Some(seed) });
    if !plan.eager_filters.is_empty() {
        stream = Box::new(FilterStep { ctx, exprs: &plan.eager_filters, input: stream });
    }
    for step in &plan.steps {
        stream = Box::new(ScanStep { ctx, step, input: stream, cur: None });
    }
    for sub in &plan.subselects {
        stream = Box::new(SubJoin { sub, input: stream, cur: None });
    }
    for opt in &plan.optionals {
        stream = Box::new(OptionalStep { ctx, plan: opt, input: stream, cur: None });
    }
    if !plan.late_filters.is_empty() {
        stream = Box::new(FilterStep { ctx, exprs: &plan.late_filters, input: stream });
    }
    stream
}

/// A tap on one pipeline operator left behind by
/// [`build_group_stream_profiled`]: the *inclusive* time spent inside the
/// operator's `next_binding` (its own work plus everything upstream of
/// it), and the bindings it emitted. Taps are listed in pipeline order, so
/// subtracting consecutive inclusive times yields per-operator self times.
pub(crate) struct OpTap {
    pub(crate) label: String,
    pub(crate) nanos: Rc<Cell<u64>>,
    pub(crate) rows: Rc<Cell<u64>>,
}

/// Wraps an operator to accumulate its inclusive `next_binding` time and
/// emitted-binding count into the shared tap cells.
struct TimedStep<'a> {
    inner: Box<dyn BindingStream + 'a>,
    nanos: Rc<Cell<u64>>,
    rows: Rc<Cell<u64>>,
}

impl BindingStream for TimedStep<'_> {
    fn next_binding(&mut self) -> Option<Binding> {
        let t = Instant::now();
        let b = self.inner.next_binding();
        self.nanos.set(self.nanos.get() + t.elapsed().as_nanos() as u64);
        if b.is_some() {
            self.rows.set(self.rows.get() + 1);
        }
        b
    }
}

fn tap<'a>(
    inner: Box<dyn BindingStream + 'a>,
    label: String,
    taps: &mut Vec<OpTap>,
) -> Box<dyn BindingStream + 'a> {
    let nanos = Rc::new(Cell::new(0));
    let rows = Rc::new(Cell::new(0));
    taps.push(OpTap { label, nanos: nanos.clone(), rows: rows.clone() });
    Box::new(TimedStep { inner, nanos, rows })
}

/// Like [`build_group_stream`], but with a [`TimedStep`] tap behind every
/// top-level operator. Inner pipelines (the per-binding OPTIONAL streams)
/// are not tapped individually — their cost lands in the optional
/// operator's inclusive time, keeping tap accounting strictly nested.
pub(crate) fn build_group_stream_profiled<'a>(
    ctx: ExecCtx<'a>,
    plan: &'a GroupPlan,
    seed: Binding,
) -> (Box<dyn BindingStream + 'a>, Vec<OpTap>) {
    let mut taps = Vec::new();
    if plan.impossible {
        return (Box::new(Seed { binding: None }), taps);
    }
    let mut stream: Box<dyn BindingStream + 'a> = Box::new(Seed { binding: Some(seed) });
    if !plan.eager_filters.is_empty() {
        stream = Box::new(FilterStep { ctx, exprs: &plan.eager_filters, input: stream });
        stream = tap(stream, "filter(eager)".to_owned(), &mut taps);
    }
    for step in &plan.steps {
        stream = Box::new(ScanStep { ctx, step, input: stream, cur: None });
        stream = tap(stream, scan_label(ctx, step), &mut taps);
    }
    for sub in &plan.subselects {
        stream = Box::new(SubJoin { sub, input: stream, cur: None });
        stream = tap(stream, "subselect join".to_owned(), &mut taps);
    }
    for opt in &plan.optionals {
        stream = Box::new(OptionalStep { ctx, plan: opt, input: stream, cur: None });
        stream = tap(stream, "optional".to_owned(), &mut taps);
    }
    if !plan.late_filters.is_empty() {
        stream = Box::new(FilterStep { ctx, exprs: &plan.late_filters, input: stream });
        stream = tap(stream, "filter(late)".to_owned(), &mut taps);
    }
    (stream, taps)
}

/// Render one scan step as `scan <s> <p> <o>` with constants resolved
/// through the dictionary and variables shown by name.
fn scan_label(ctx: ExecCtx<'_>, step: &PatternStep) -> String {
    let one = |slot: Slot| match slot {
        Slot::Const(id) => ctx.store.resolve(id).to_string(),
        Slot::Var(v) => match ctx.vars.name(v) {
            Some(name) => format!("?{name}"),
            None => format!("?_{v}"),
        },
    };
    format!("scan {} {} {}", one(step.s), one(step.p), one(step.o))
}

/// Yields the seed binding once (or nothing, for impossible groups).
struct Seed {
    binding: Option<Binding>,
}

impl BindingStream for Seed {
    fn next_binding(&mut self) -> Option<Binding> {
        self.binding.take()
    }
}

/// Drops bindings failing any of the given filters.
struct FilterStep<'a> {
    ctx: ExecCtx<'a>,
    exprs: &'a [Expr],
    input: Box<dyn BindingStream + 'a>,
}

impl BindingStream for FilterStep<'_> {
    fn next_binding(&mut self) -> Option<Binding> {
        loop {
            let b = self.input.next_binding()?;
            if self.ctx.passes(self.exprs, &b) {
                return Some(b);
            }
        }
    }
}

/// Index nested-loop join: for each input binding, lazily scan the index
/// range selected by the pattern's constants and bound variables.
struct ScanStep<'a> {
    ctx: ExecCtx<'a>,
    step: &'a PatternStep,
    input: Box<dyn BindingStream + 'a>,
    cur: Option<(Binding, ScanIter<'a>)>,
}

impl BindingStream for ScanStep<'_> {
    fn next_binding(&mut self) -> Option<Binding> {
        loop {
            if let Some((base, iter)) = &mut self.cur {
                for (s, p, o) in iter.by_ref() {
                    let counter = &self.ctx.counters.triples_scanned;
                    counter.set(counter.get() + 1);
                    if let Some(nb) = bind_match(base, self.step, (s, p, o)) {
                        if self.ctx.passes(&self.step.filters, &nb) {
                            return Some(nb);
                        }
                    }
                }
                self.cur = None;
            }
            let b = self.input.next_binding()?;
            let iter = self.ctx.store.scan_iter(
                probe(self.step.s, &b),
                probe(self.step.p, &b),
                probe(self.step.o, &b),
            );
            self.cur = Some((b, iter));
        }
    }
}

/// The scan constraint for one pattern position under an input binding.
fn probe(slot: Slot, b: &Binding) -> Option<crate::dict::TermId> {
    match slot {
        Slot::Const(id) => Some(id),
        Slot::Var(v) => b[v],
    }
}

/// Extend `base` with one matched triple, rejecting inconsistent repeats of
/// the same variable within the pattern.
pub(crate) fn bind_match(
    base: &Binding,
    step: &PatternStep,
    (s, p, o): (crate::dict::TermId, crate::dict::TermId, crate::dict::TermId),
) -> Option<Binding> {
    let mut nb = base.clone();
    for (slot, value) in [(step.s, s), (step.p, p), (step.o, o)] {
        if let Slot::Var(v) = slot {
            match nb[v] {
                None => nb[v] = Some(value),
                Some(existing) if existing == value => {}
                Some(_) => return None,
            }
        }
    }
    Some(nb)
}

/// Nested-loop join of input bindings against a materialised sub-SELECT.
struct SubJoin<'a> {
    sub: &'a SubPlan,
    input: Box<dyn BindingStream + 'a>,
    cur: Option<(Binding, usize)>,
}

impl BindingStream for SubJoin<'_> {
    fn next_binding(&mut self) -> Option<Binding> {
        loop {
            if let Some((base, next_row)) = &mut self.cur {
                while *next_row < self.sub.rows.len() {
                    let row = &self.sub.rows[*next_row];
                    *next_row += 1;
                    if let Some(nb) = merge_sub_row(base, self.sub, row) {
                        return Some(nb);
                    }
                }
                self.cur = None;
            }
            let b = self.input.next_binding()?;
            self.cur = Some((b, 0));
        }
    }
}

/// Merge one sub-select row into a binding; `None` on a join mismatch. Rows
/// may carry `None` values (unbound, or terms outside the dictionary), which
/// join like unbound values.
pub(crate) fn merge_sub_row(
    base: &Binding,
    sub: &SubPlan,
    row: &[Option<crate::dict::TermId>],
) -> Option<Binding> {
    let mut nb = base.clone();
    for (&slot, &id) in sub.slots.iter().zip(row) {
        match (nb[slot], id) {
            (None, v) => nb[slot] = v,
            // An unbound row value is compatible with anything: the outer
            // binding keeps its value.
            (Some(_), None) => {}
            (Some(x), Some(y)) if x == y => {}
            (Some(_), Some(_)) => return None,
        }
    }
    Some(nb)
}

/// Left join against an OPTIONAL group: each input binding seeds the inner
/// pipeline; if it yields nothing, the input binding passes through.
struct OptionalStep<'a> {
    ctx: ExecCtx<'a>,
    plan: &'a GroupPlan,
    input: Box<dyn BindingStream + 'a>,
    cur: Option<(Binding, Box<dyn BindingStream + 'a>, bool)>,
}

impl BindingStream for OptionalStep<'_> {
    fn next_binding(&mut self) -> Option<Binding> {
        loop {
            if let Some((_, inner, matched)) = &mut self.cur {
                if let Some(nb) = inner.next_binding() {
                    *matched = true;
                    return Some(nb);
                }
                let (seed, _, matched) = self.cur.take().expect("cur is present");
                if !matched {
                    return Some(seed);
                }
            }
            let b = self.input.next_binding()?;
            let inner = build_group_stream(self.ctx, self.plan, b.clone());
            self.cur = Some((b, inner, false));
        }
    }
}

/// Loop-based reference execution of the same plan: materialises the full
/// binding table between operators. Kept as the correctness oracle for the
/// streaming operators and as the baseline in the evaluator microbenchmarks.
pub(crate) fn exec_group_materialised(
    ctx: ExecCtx<'_>,
    plan: &GroupPlan,
    seed: Binding,
) -> Vec<Binding> {
    if plan.impossible {
        return Vec::new();
    }
    let mut bindings = vec![seed];
    bindings.retain(|b| ctx.passes(&plan.eager_filters, b));
    for step in &plan.steps {
        let mut next = Vec::new();
        for b in &bindings {
            for m in ctx.store.scan_iter(probe(step.s, b), probe(step.p, b), probe(step.o, b)) {
                let counter = &ctx.counters.triples_scanned;
                counter.set(counter.get() + 1);
                if let Some(nb) = bind_match(b, step, m) {
                    if ctx.passes(&step.filters, &nb) {
                        next.push(nb);
                    }
                }
            }
        }
        bindings = next;
        if bindings.is_empty() {
            return bindings;
        }
    }
    for sub in &plan.subselects {
        let mut next = Vec::new();
        for b in &bindings {
            for row in &sub.rows {
                if let Some(nb) = merge_sub_row(b, sub, row) {
                    next.push(nb);
                }
            }
        }
        bindings = next;
        if bindings.is_empty() {
            return bindings;
        }
    }
    for opt in &plan.optionals {
        let mut next = Vec::with_capacity(bindings.len());
        for b in &bindings {
            let inner = exec_group_materialised(ctx, opt, b.clone());
            if inner.is_empty() {
                next.push(b.clone());
            } else {
                next.extend(inner);
            }
        }
        bindings = next;
    }
    bindings.retain(|b| ctx.passes(&plan.late_filters, b));
    bindings
}
