//! Tokenizer for the SPARQL subset (also reused by the SPARQL-ML parser).

use crate::error::SparqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<iri>`.
    Iri(String),
    /// Prefixed name `prefix:local` (prefix may be empty).
    PName(String, String),
    /// `?name` or `$name`.
    Var(String),
    /// String literal with optional datatype/lang, already unescaped.
    Literal {
        /// Lexical form.
        value: String,
        /// Datatype: either a full IRI (`Ok`) or a prefixed name (`Err((p, l))`).
        datatype: Option<Result<String, (String, String)>>,
        /// Language tag.
        lang: Option<String>,
    },
    /// Integer literal.
    Integer(i64),
    /// Decimal/double literal.
    Double(f64),
    /// Bare word: keyword or function name (case preserved).
    Word(String),
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `.`.
    Dot,
    /// `;`.
    Semicolon,
    /// `,`.
    Comma,
    /// `*`.
    Star,
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<` (comparison, not IRI).
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// End of input.
    Eof,
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SparqlError> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(lex_err(i, "expected '&&'"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(lex_err(i, "expected '||'"));
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => {
                // IRI if a '>' appears before any whitespace; else comparison.
                if let Some(end) = scan_iri_end(bytes, i + 1) {
                    let iri = input[i + 1..end].to_owned();
                    out.push(Token::Iri(iri));
                    i = end + 1;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '?' | '$' => {
                let start = i + 1;
                let end = scan_name_end(bytes, start);
                if end == start {
                    return Err(lex_err(i, "empty variable name"));
                }
                out.push(Token::Var(input[start..end].to_owned()));
                i = end;
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut value = String::new();
                let mut closed = false;
                while j < bytes.len() {
                    let ch = bytes[j] as char;
                    if ch == '\\' {
                        match bytes.get(j + 1).map(|&b| b as char) {
                            Some('n') => value.push('\n'),
                            Some('r') => value.push('\r'),
                            Some('t') => value.push('\t'),
                            Some(other) => value.push(other),
                            None => return Err(lex_err(j, "dangling escape")),
                        }
                        j += 2;
                    } else if ch == quote {
                        closed = true;
                        j += 1;
                        break;
                    } else {
                        // Multi-byte UTF-8: copy the full scalar.
                        let ch = input[j..].chars().next().expect("in-bounds char");
                        value.push(ch);
                        j += ch.len_utf8();
                    }
                }
                if !closed {
                    return Err(lex_err(i, "unterminated string"));
                }
                i = j;
                let mut datatype = None;
                let mut lang = None;
                if bytes.get(i) == Some(&b'^') && bytes.get(i + 1) == Some(&b'^') {
                    i += 2;
                    if bytes.get(i) == Some(&b'<') {
                        let end = scan_iri_end(bytes, i + 1)
                            .ok_or_else(|| lex_err(i, "unterminated datatype IRI"))?;
                        datatype = Some(Ok(input[i + 1..end].to_owned()));
                        i = end + 1;
                    } else {
                        let (p, l, end) = scan_pname(input, bytes, i)
                            .ok_or_else(|| lex_err(i, "expected datatype"))?;
                        datatype = Some(Err((p, l)));
                        i = end;
                    }
                } else if bytes.get(i) == Some(&b'@') {
                    let start = i + 1;
                    let mut end = start;
                    while end < bytes.len()
                        && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'-')
                    {
                        end += 1;
                    }
                    lang = Some(input[start..end].to_owned());
                    i = end;
                }
                out.push(Token::Literal { value, datatype, lang });
            }
            '0'..='9' | '-' | '+' => {
                let start = i;
                let mut end = i + 1;
                let mut is_double = false;
                while end < bytes.len() {
                    match bytes[end] as char {
                        '0'..='9' => end += 1,
                        '.' if !is_double
                            && end + 1 < bytes.len()
                            && (bytes[end + 1] as char).is_ascii_digit() =>
                        {
                            is_double = true;
                            end += 1;
                        }
                        'e' | 'E' if end + 1 < bytes.len() => {
                            is_double = true;
                            end += 1;
                            if matches!(bytes.get(end), Some(b'+') | Some(b'-')) {
                                end += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &input[start..end];
                if is_double {
                    let v =
                        text.parse().map_err(|_| lex_err(start, format!("bad double '{text}'")))?;
                    out.push(Token::Double(v));
                } else {
                    let v = text
                        .parse()
                        .map_err(|_| lex_err(start, format!("bad integer '{text}'")))?;
                    out.push(Token::Integer(v));
                }
                i = end;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                if let Some((p, l, end)) = scan_pname(input, bytes, i) {
                    out.push(Token::PName(p, l));
                    i = end;
                } else {
                    let end = scan_name_end(bytes, i);
                    out.push(Token::Word(input[i..end].to_owned()));
                    i = end;
                }
            }
            other => return Err(lex_err(i, format!("unexpected character '{other}'"))),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

fn lex_err(position: usize, message: impl Into<String>) -> SparqlError {
    SparqlError::Lex { position, message: message.into() }
}

/// Find the closing `>` of an IRI starting at `start`, rejecting whitespace.
fn scan_iri_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut j = start;
    while j < bytes.len() {
        match bytes[j] {
            b'>' => return Some(j),
            b' ' | b'\t' | b'\r' | b'\n' | b'"' | b'{' | b'}' => return None,
            _ => j += 1,
        }
    }
    None
}

fn is_name_char(b: u8) -> bool {
    (b as char).is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

fn scan_name_end(bytes: &[u8], start: usize) -> usize {
    let mut end = start;
    while end < bytes.len() && is_name_char(bytes[end]) {
        end += 1;
    }
    end
}

/// Scan a prefixed name `prefix:local`; returns `(prefix, local, end)`.
/// Local parts may contain dots followed by a name char (e.g. versions) and
/// also `/` is excluded — keep it simple: letters, digits, `_`, `-`, `.`
/// (non-terminal).
fn scan_pname(input: &str, bytes: &[u8], start: usize) -> Option<(String, String, usize)> {
    let pfx_end = scan_name_end(bytes, start);
    if bytes.get(pfx_end) != Some(&b':') {
        return None;
    }
    let local_start = pfx_end + 1;
    let mut end = local_start;
    while end < bytes.len() {
        let dot_inside =
            bytes[end] == b'.' && end + 1 < bytes.len() && is_name_char(bytes[end + 1]);
        if is_name_char(bytes[end]) || dot_inside {
            end += 1;
        } else {
            break;
        }
    }
    Some((input[start..pfx_end].to_owned(), input[local_start..end].to_owned(), end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_select() {
        let toks = tokenize("SELECT ?s WHERE { ?s a <http://x/T> . }").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Var("s".into()),
                Token::Word("WHERE".into()),
                Token::LBrace,
                Token::Var("s".into()),
                Token::Word("a".into()),
                Token::Iri("http://x/T".into()),
                Token::Dot,
                Token::RBrace,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_iri_from_less_than() {
        let toks = tokenize("FILTER(?x < 5)").unwrap();
        assert!(toks.contains(&Token::Lt));
        let toks = tokenize("?s <http://p> ?o").unwrap();
        assert!(toks.contains(&Token::Iri("http://p".into())));
    }

    #[test]
    fn string_literals_with_datatype_and_lang() {
        let toks = tokenize(r#""42"^^<http://www.w3.org/2001/XMLSchema#integer> "hi"@en"#).unwrap();
        assert_eq!(
            toks[0],
            Token::Literal {
                value: "42".into(),
                datatype: Some(Ok("http://www.w3.org/2001/XMLSchema#integer".into())),
                lang: None
            }
        );
        assert_eq!(
            toks[1],
            Token::Literal { value: "hi".into(), datatype: None, lang: Some("en".into()) }
        );
    }

    #[test]
    fn pname_with_dots_in_local() {
        let toks = tokenize("dblp:Publication kgnet:Node_Classifier x:v1.2").unwrap();
        assert_eq!(toks[0], Token::PName("dblp".into(), "Publication".into()));
        assert_eq!(toks[1], Token::PName("kgnet".into(), "Node_Classifier".into()));
        assert_eq!(toks[2], Token::PName("x".into(), "v1.2".into()));
    }

    #[test]
    fn numbers_integer_and_double() {
        let toks = tokenize("10 3.5 -2 1e3").unwrap();
        assert_eq!(toks[0], Token::Integer(10));
        assert_eq!(toks[1], Token::Double(3.5));
        assert_eq!(toks[2], Token::Integer(-2));
        assert_eq!(toks[3], Token::Double(1000.0));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT # comment ?x\n ?y").unwrap();
        assert_eq!(toks[1], Token::Var("y".into()));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let toks = tokenize(r#""a\"b""#).unwrap();
        assert_eq!(toks[0], Token::Literal { value: "a\"b".into(), datatype: None, lang: None });
    }

    #[test]
    fn operators() {
        let toks = tokenize("<= >= != && || !").unwrap();
        assert_eq!(
            &toks[..6],
            &[Token::Le, Token::Ge, Token::Ne, Token::AndAnd, Token::OrOr, Token::Bang]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize(r#""abc"#).is_err());
    }
}
