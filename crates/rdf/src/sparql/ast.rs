//! Abstract syntax for the supported SPARQL subset.

use std::fmt;

use crate::term::Term;

/// Subject/predicate/object position in a triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    /// A variable, stored without the leading `?`.
    Var(String),
    /// A ground term.
    Ground(Term),
}

impl TermPattern {
    /// Variable name, when this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Ground(_) => None,
        }
    }

    /// Ground term, when bound.
    pub fn as_ground(&self) -> Option<&Term> {
        match self {
            TermPattern::Var(_) => None,
            TermPattern::Ground(t) => Some(t),
        }
    }
}

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermPattern::Var(v) => write!(f, "?{v}"),
            TermPattern::Ground(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub s: TermPattern,
    /// Predicate position.
    pub p: TermPattern,
    /// Object position.
    pub o: TermPattern,
}

impl TriplePattern {
    /// Convenience constructor.
    pub fn new(s: TermPattern, p: TermPattern, o: TermPattern) -> Self {
        TriplePattern { s, p, o }
    }

    /// Variables mentioned by this pattern, in SPO order.
    pub fn vars(&self) -> Vec<&str> {
        [&self.s, &self.p, &self.o].into_iter().filter_map(|t| t.as_var()).collect()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// Filter expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Constant term.
    Const(Term),
    /// Equality on terms (numeric when both sides are numeric literals).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Numeric/string less-than.
    Lt(Box<Expr>, Box<Expr>),
    /// Numeric/string less-or-equal.
    Le(Box<Expr>, Box<Expr>),
    /// Numeric/string greater-than.
    Gt(Box<Expr>, Box<Expr>),
    /// Numeric/string greater-or-equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `BOUND(?v)`.
    Bound(String),
    /// `CONTAINS(?v, "substring")` over the lexical/IRI text.
    Contains(Box<Expr>, String),
}

impl Expr {
    /// All variables referenced by the expression.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Const(_) => {}
            Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Expr::Not(a) | Expr::Contains(a, _) => a.vars(out),
            Expr::Bound(v) => out.push(v.clone()),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "?{v}"),
            Expr::Const(t) => write!(f, "{t}"),
            Expr::Eq(a, b) => write!(f, "({a} = {b})"),
            Expr::Ne(a, b) => write!(f, "({a} != {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Le(a, b) => write!(f, "({a} <= {b})"),
            Expr::Gt(a, b) => write!(f, "({a} > {b})"),
            Expr::Ge(a, b) => write!(f, "({a} >= {b})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Not(a) => write!(f, "!({a})"),
            Expr::Bound(v) => write!(f, "BOUND(?{v})"),
            Expr::Contains(a, s) => write!(f, "CONTAINS({a}, {s:?})"),
        }
    }
}

/// An aggregate in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    CountAll,
    /// `COUNT(?v)` / `COUNT(DISTINCT ?v)`.
    CountVar {
        /// The counted variable.
        var: String,
        /// Whether DISTINCT applies.
        distinct: bool,
    },
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionItem {
    /// Plain variable.
    Var(String),
    /// `(<aggregate> AS ?alias)`.
    Agg {
        /// The aggregate.
        agg: Aggregate,
        /// Output column name (without `?`).
        alias: String,
    },
}

/// The SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    All,
    /// An explicit list of columns.
    Items(Vec<ProjectionItem>),
}

/// A group graph pattern: conjunctive triples, filters, OPTIONAL blocks and
/// sub-SELECTs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    /// Required triple patterns.
    pub triples: Vec<TriplePattern>,
    /// FILTER constraints.
    pub filters: Vec<Expr>,
    /// OPTIONAL blocks (left-joined).
    pub optionals: Vec<GroupPattern>,
    /// Nested sub-SELECT queries (joined on shared variables).
    pub subselects: Vec<SelectQuery>,
}

impl GroupPattern {
    /// All variables that can be bound by this pattern.
    pub fn bindable_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.triples {
            for v in t.vars() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_owned());
                }
            }
        }
        for opt in &self.optionals {
            for v in opt.bindable_vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        for sub in &self.subselects {
            for v in sub.output_vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Sort direction for ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Whether DISTINCT applies to the projected rows.
    pub distinct: bool,
    /// Projected columns.
    pub projection: Projection,
    /// The WHERE pattern.
    pub pattern: GroupPattern,
    /// ORDER BY clauses (variable, direction).
    pub order_by: Vec<(String, Order)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
}

impl SelectQuery {
    /// Names of the output columns.
    pub fn output_vars(&self) -> Vec<String> {
        match &self.projection {
            Projection::All => self.pattern.bindable_vars(),
            Projection::Items(items) => items
                .iter()
                .map(|i| match i {
                    ProjectionItem::Var(v) => v.clone(),
                    ProjectionItem::Agg { alias, .. } => alias.clone(),
                })
                .collect(),
        }
    }
}

/// An update operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// `INSERT DATA { ground triples }`.
    InsertData(Vec<TriplePattern>),
    /// `DELETE DATA { ground triples }`.
    DeleteData(Vec<TriplePattern>),
    /// `DELETE {tmpl} INSERT {tmpl} WHERE {pattern}` (either template may be
    /// empty).
    Modify {
        /// Triples to delete per solution.
        delete: Vec<TriplePattern>,
        /// Triples to insert per solution.
        insert: Vec<TriplePattern>,
        /// The WHERE pattern.
        pattern: GroupPattern,
    },
    /// `DELETE WHERE { pattern }` — pattern doubles as template.
    DeleteWhere(Vec<TriplePattern>),
}

/// Any parsed SPARQL operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// A SELECT query.
    Select(SelectQuery),
    /// An update.
    Update(Update),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_vars_in_order() {
        let tp = TriplePattern::new(
            TermPattern::Var("s".into()),
            TermPattern::Ground(Term::iri("p")),
            TermPattern::Var("o".into()),
        );
        assert_eq!(tp.vars(), vec!["s", "o"]);
    }

    #[test]
    fn group_bindable_vars_deduplicated() {
        let tp1 = TriplePattern::new(
            TermPattern::Var("a".into()),
            TermPattern::Var("p".into()),
            TermPattern::Var("b".into()),
        );
        let tp2 = TriplePattern::new(
            TermPattern::Var("b".into()),
            TermPattern::Ground(Term::iri("q")),
            TermPattern::Var("c".into()),
        );
        let g = GroupPattern { triples: vec![tp1, tp2], ..Default::default() };
        assert_eq!(g.bindable_vars(), vec!["a", "p", "b", "c"]);
    }

    #[test]
    fn expr_vars_collects_all() {
        let e = Expr::And(
            Box::new(Expr::Gt(
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Const(Term::int(3))),
            )),
            Box::new(Expr::Bound("y".into())),
        );
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec!["x", "y"]);
    }
}
