//! The SPARQL subset: lexer, AST, parser and evaluator.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{
    Aggregate, Expr, GroupPattern, Operation, Order, Projection, ProjectionItem, SelectQuery,
    TermPattern, TriplePattern, Update,
};
pub use eval::{
    evaluate_select, execute, execute_update, query, ExecOutcome, QueryResult, UpdateStats,
};
pub use parser::{parse, parse_select, Parser};
