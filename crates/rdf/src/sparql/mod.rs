//! The SPARQL subset: lexer, AST, parser, planner and evaluators.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod stream;

pub use ast::{
    Aggregate, Expr, GroupPattern, Operation, Order, Projection, ProjectionItem, SelectQuery,
    TermPattern, TriplePattern, Update,
};
pub use eval::{
    evaluate_prepared, evaluate_prepared_profiled, evaluate_select, evaluate_select_materialised,
    execute, execute_update, prepare_select, query, query_with_stats, ExecOutcome, OpProfile,
    OpTiming, PreparedQuery, QueryResult, UpdateStats,
};
pub use parser::{parse, parse_select, Parser};
pub use plan::{GroupPlan, PatternStep, Slot, SubPlan};
pub use stream::{BindingStream, ExecStats};
