//! Recursive-descent parser for the SPARQL subset.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! Op        := Prologue (Select | Update)
//! Prologue  := ("PREFIX" PNAME ":"? IRI)*
//! Select    := "SELECT" "DISTINCT"? Projection Where Solution*
//! Projection:= "*" | (Var | "(" Agg "AS" Var ")")+
//! Agg       := "COUNT" "(" ("*" | "DISTINCT"? Var) ")"
//! Where     := "WHERE"? "{" Group "}"
//! Group     := (Triple | Filter | Optional | "{" Select "}")*
//! Triple    := Node Verb Node ("." )?
//! Filter    := "FILTER" "(" Expr ")"
//! Optional  := "OPTIONAL" "{" Group "}"
//! Solution  := "ORDER" "BY" (("ASC"|"DESC") "(" Var ")" | Var)+
//!            | "LIMIT" INT | "OFFSET" INT
//! Update    := "INSERT" "DATA" QuadData
//!            | "DELETE" "DATA" QuadData
//!            | "DELETE" Template "INSERT" Template Where
//!            | "DELETE" Template Where
//!            | "DELETE" "WHERE" Template
//!            | "INSERT" Template Where
//! ```

use rustc_hash::FxHashMap;

use crate::error::SparqlError;
use crate::sparql::ast::*;
use crate::sparql::lexer::{tokenize, Token};
use crate::term::{Term, RDF_TYPE};

/// Parse one SPARQL operation (query or update).
pub fn parse(input: &str) -> Result<Operation, SparqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, prefixes: FxHashMap::default() };
    p.parse_operation()
}

/// Parse a SELECT query, rejecting updates.
pub fn parse_select(input: &str) -> Result<SelectQuery, SparqlError> {
    match parse(input)? {
        Operation::Select(q) => Ok(q),
        Operation::Update(_) => Err(SparqlError::parse("expected SELECT, found update")),
    }
}

/// Parser state. Exposed to the SPARQL-ML crate so it can extend the
/// grammar with the same token stream and prefix handling.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: FxHashMap<String, String>,
}

impl Parser {
    /// Build a parser over pre-lexed tokens.
    pub fn from_tokens(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, prefixes: FxHashMap::default() }
    }

    /// Construct directly from a query string.
    pub fn from_query(input: &str) -> Result<Self, SparqlError> {
        Ok(Self::from_tokens(tokenize(input)?))
    }

    /// Registered prefixes (after the prologue is parsed).
    pub fn prefixes(&self) -> &FxHashMap<String, String> {
        &self.prefixes
    }

    /// Current token.
    pub fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    /// Look ahead `n` tokens.
    pub fn peek_at(&self, n: usize) -> &Token {
        self.tokens.get(self.pos + n).unwrap_or(&Token::Eof)
    }

    /// Consume and return the current token.
    pub fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// True (and consumes) when the current token is the given word,
    /// case-insensitively.
    pub fn eat_word(&mut self, word: &str) -> bool {
        if let Token::Word(w) = self.peek() {
            if w.eq_ignore_ascii_case(word) {
                self.bump();
                return true;
            }
        }
        false
    }

    /// Check whether the current token is the given word without consuming.
    pub fn at_word(&self, word: &str) -> bool {
        matches!(self.peek(), Token::Word(w) if w.eq_ignore_ascii_case(word))
    }

    /// Require a specific token.
    pub fn expect(&mut self, token: &Token) -> Result<(), SparqlError> {
        if self.peek() == token {
            self.bump();
            Ok(())
        } else {
            Err(SparqlError::parse(format!("expected {token:?}, found {:?}", self.peek())))
        }
    }

    /// Require a keyword.
    pub fn expect_word(&mut self, word: &str) -> Result<(), SparqlError> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(SparqlError::parse(format!("expected '{word}', found {:?}", self.peek())))
        }
    }

    /// Parse the full operation with prologue.
    pub fn parse_operation(&mut self) -> Result<Operation, SparqlError> {
        self.parse_prologue()?;
        if self.at_word("SELECT") {
            Ok(Operation::Select(self.parse_select()?))
        } else if self.at_word("INSERT") || self.at_word("DELETE") {
            Ok(Operation::Update(self.parse_update()?))
        } else {
            Err(SparqlError::parse(format!(
                "expected SELECT/INSERT/DELETE, found {:?}",
                self.peek()
            )))
        }
    }

    /// Parse `PREFIX` declarations.
    pub fn parse_prologue(&mut self) -> Result<(), SparqlError> {
        while self.eat_word("PREFIX") {
            let (prefix, local) = match self.bump() {
                Token::PName(p, l) => (p, l),
                Token::Word(w) => (w, String::new()),
                other => {
                    return Err(SparqlError::parse(format!("expected prefix name, got {other:?}")))
                }
            };
            if !local.is_empty() {
                return Err(SparqlError::parse("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                Token::Iri(i) => i,
                other => {
                    return Err(SparqlError::parse(format!("expected prefix IRI, got {other:?}")))
                }
            };
            self.prefixes.insert(prefix, iri);
        }
        Ok(())
    }

    fn expand_pname(&self, prefix: &str, local: &str) -> Result<String, SparqlError> {
        let base = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| SparqlError::parse(format!("unknown prefix '{prefix}:'")))?;
        Ok(format!("{base}{local}"))
    }

    /// Parse a term pattern (variable or ground term).
    pub fn parse_term_pattern(&mut self) -> Result<TermPattern, SparqlError> {
        match self.bump() {
            Token::Var(v) => Ok(TermPattern::Var(v)),
            Token::Iri(i) => Ok(TermPattern::Ground(Term::Iri(i))),
            Token::PName(p, l) => Ok(TermPattern::Ground(Term::Iri(self.expand_pname(&p, &l)?))),
            Token::Word(w) if w == "a" => Ok(TermPattern::Ground(Term::iri(RDF_TYPE))),
            Token::Literal { value, datatype, lang } => {
                let datatype = match datatype {
                    None => None,
                    Some(Ok(iri)) => Some(iri),
                    Some(Err((p, l))) => Some(self.expand_pname(&p, &l)?),
                };
                Ok(TermPattern::Ground(Term::Literal { lexical: value, datatype, lang }))
            }
            Token::Integer(v) => Ok(TermPattern::Ground(Term::int(v))),
            Token::Double(v) => Ok(TermPattern::Ground(Term::double(v))),
            other => Err(SparqlError::parse(format!("expected term, got {other:?}"))),
        }
    }

    /// Parse a SELECT query body (after prologue).
    pub fn parse_select(&mut self) -> Result<SelectQuery, SparqlError> {
        self.expect_word("SELECT")?;
        let distinct = self.eat_word("DISTINCT");
        let projection = self.parse_projection()?;
        // WHERE is optional per the grammar.
        let _ = self.eat_word("WHERE");
        self.expect(&Token::LBrace)?;
        let pattern = self.parse_group()?;
        self.expect(&Token::RBrace)?;
        let mut order_by = Vec::new();
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_word("ORDER") {
                self.expect_word("BY")?;
                loop {
                    match self.peek().clone() {
                        Token::Var(v) => {
                            self.bump();
                            order_by.push((v, Order::Asc));
                        }
                        Token::Word(w)
                            if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                        {
                            self.bump();
                            let dir = if w.eq_ignore_ascii_case("ASC") {
                                Order::Asc
                            } else {
                                Order::Desc
                            };
                            self.expect(&Token::LParen)?;
                            let v = match self.bump() {
                                Token::Var(v) => v,
                                other => {
                                    return Err(SparqlError::parse(format!(
                                        "expected variable in ORDER BY, got {other:?}"
                                    )))
                                }
                            };
                            self.expect(&Token::RParen)?;
                            order_by.push((v, dir));
                        }
                        _ => break,
                    }
                }
            } else if self.eat_word("LIMIT") {
                limit = Some(self.parse_usize()?);
            } else if self.eat_word("OFFSET") {
                offset = Some(self.parse_usize()?);
            } else {
                break;
            }
        }
        Ok(SelectQuery { distinct, projection, pattern, order_by, limit, offset })
    }

    fn parse_usize(&mut self) -> Result<usize, SparqlError> {
        match self.bump() {
            Token::Integer(v) if v >= 0 => Ok(v as usize),
            other => Err(SparqlError::parse(format!("expected non-negative int, got {other:?}"))),
        }
    }

    fn parse_projection(&mut self) -> Result<Projection, SparqlError> {
        if self.peek() == &Token::Star {
            self.bump();
            return Ok(Projection::All);
        }
        let mut items = Vec::new();
        loop {
            match self.peek().clone() {
                Token::Var(v) => {
                    self.bump();
                    items.push(ProjectionItem::Var(v));
                }
                Token::LParen => {
                    self.bump();
                    let agg = self.parse_aggregate()?;
                    self.expect_word("AS")?;
                    let alias = match self.bump() {
                        Token::Var(v) => v,
                        other => {
                            return Err(SparqlError::parse(format!(
                                "expected alias variable, got {other:?}"
                            )))
                        }
                    };
                    self.expect(&Token::RParen)?;
                    items.push(ProjectionItem::Agg { agg, alias });
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return Err(SparqlError::parse("empty SELECT projection"));
        }
        Ok(Projection::Items(items))
    }

    fn parse_aggregate(&mut self) -> Result<Aggregate, SparqlError> {
        self.expect_word("COUNT")?;
        self.expect(&Token::LParen)?;
        let agg = if self.peek() == &Token::Star {
            self.bump();
            Aggregate::CountAll
        } else {
            let distinct = self.eat_word("DISTINCT");
            match self.bump() {
                Token::Var(v) => Aggregate::CountVar { var: v, distinct },
                other => {
                    return Err(SparqlError::parse(format!(
                        "expected variable in COUNT, got {other:?}"
                    )))
                }
            }
        };
        self.expect(&Token::RParen)?;
        Ok(agg)
    }

    /// Parse a group graph pattern (between braces).
    pub fn parse_group(&mut self) -> Result<GroupPattern, SparqlError> {
        let mut group = GroupPattern::default();
        loop {
            match self.peek() {
                Token::RBrace | Token::Eof => break,
                Token::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    self.expect(&Token::LParen)?;
                    let expr = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    group.filters.push(expr);
                    let _ = self.eat_dot();
                }
                Token::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    self.expect(&Token::LBrace)?;
                    let inner = self.parse_group()?;
                    self.expect(&Token::RBrace)?;
                    group.optionals.push(inner);
                    let _ = self.eat_dot();
                }
                Token::LBrace => {
                    self.bump();
                    // Nested sub-select: `{ SELECT ... }`.
                    if self.at_word("SELECT") {
                        let sub = self.parse_select()?;
                        self.expect(&Token::RBrace)?;
                        group.subselects.push(sub);
                    } else {
                        // Plain nested group: merge.
                        let inner = self.parse_group()?;
                        self.expect(&Token::RBrace)?;
                        group.triples.extend(inner.triples);
                        group.filters.extend(inner.filters);
                        group.optionals.extend(inner.optionals);
                        group.subselects.extend(inner.subselects);
                    }
                    let _ = self.eat_dot();
                }
                _ => {
                    let s = self.parse_term_pattern()?;
                    let p = self.parse_term_pattern()?;
                    let o = self.parse_term_pattern()?;
                    group.triples.push(TriplePattern::new(s.clone(), p, o));
                    // Predicate-object lists with `;`, object lists with `,`.
                    loop {
                        if self.peek() == &Token::Semicolon {
                            self.bump();
                            if matches!(self.peek(), Token::RBrace | Token::Dot) {
                                break;
                            }
                            let p2 = self.parse_term_pattern()?;
                            let o2 = self.parse_term_pattern()?;
                            group.triples.push(TriplePattern::new(s.clone(), p2, o2));
                        } else if self.peek() == &Token::Comma {
                            self.bump();
                            let last =
                                group.triples.last().expect("object list follows a triple").clone();
                            let o2 = self.parse_term_pattern()?;
                            group.triples.push(TriplePattern::new(last.s, last.p, o2));
                        } else {
                            break;
                        }
                    }
                    let _ = self.eat_dot();
                }
            }
        }
        Ok(group)
    }

    fn eat_dot(&mut self) -> bool {
        if self.peek() == &Token::Dot {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parse a filter expression with `||` (lowest), `&&`, comparisons.
    pub fn parse_expr(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_and()?;
        while self.peek() == &Token::OrOr {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_cmp()?;
        while self.peek() == &Token::AndAnd {
            self.bump();
            let right = self.parse_cmp()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cmp(&mut self) -> Result<Expr, SparqlError> {
        let left = self.parse_primary()?;
        let op = match self.peek() {
            Token::Eq => Expr::Eq as fn(_, _) -> _,
            Token::Ne => Expr::Ne,
            Token::Lt => Expr::Lt,
            Token::Le => Expr::Le,
            Token::Gt => Expr::Gt,
            Token::Ge => Expr::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_primary()?;
        Ok(op(Box::new(left), Box::new(right)))
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlError> {
        match self.peek().clone() {
            Token::Bang => {
                self.bump();
                let inner = self.parse_primary()?;
                Ok(Expr::Not(Box::new(inner)))
            }
            Token::LParen => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Word(w) if w.eq_ignore_ascii_case("BOUND") => {
                self.bump();
                self.expect(&Token::LParen)?;
                let v = match self.bump() {
                    Token::Var(v) => v,
                    other => {
                        return Err(SparqlError::parse(format!(
                            "expected variable in BOUND, got {other:?}"
                        )))
                    }
                };
                self.expect(&Token::RParen)?;
                Ok(Expr::Bound(v))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("CONTAINS") => {
                self.bump();
                self.expect(&Token::LParen)?;
                let inner = self.parse_expr()?;
                self.expect(&Token::Comma)?;
                let needle = match self.bump() {
                    Token::Literal { value, .. } => value,
                    other => {
                        return Err(SparqlError::parse(format!(
                            "expected string in CONTAINS, got {other:?}"
                        )))
                    }
                };
                self.expect(&Token::RParen)?;
                Ok(Expr::Contains(Box::new(inner), needle))
            }
            Token::Var(v) => {
                self.bump();
                Ok(Expr::Var(v))
            }
            _ => {
                let tp = self.parse_term_pattern()?;
                match tp {
                    TermPattern::Var(v) => Ok(Expr::Var(v)),
                    TermPattern::Ground(t) => Ok(Expr::Const(t)),
                }
            }
        }
    }

    /// Parse a template `{ triples }` used by updates.
    pub fn parse_template(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        self.expect(&Token::LBrace)?;
        let group = self.parse_group()?;
        self.expect(&Token::RBrace)?;
        if !group.filters.is_empty() || !group.optionals.is_empty() || !group.subselects.is_empty()
        {
            return Err(SparqlError::parse("templates may only contain triples"));
        }
        Ok(group.triples)
    }

    /// Parse an update operation.
    pub fn parse_update(&mut self) -> Result<Update, SparqlError> {
        if self.eat_word("INSERT") {
            if self.eat_word("DATA") {
                let triples = self.parse_template()?;
                return Ok(Update::InsertData(triples));
            }
            let insert = self.parse_template()?;
            self.expect_word("WHERE")?;
            self.expect(&Token::LBrace)?;
            let pattern = self.parse_group()?;
            self.expect(&Token::RBrace)?;
            return Ok(Update::Modify { delete: vec![], insert, pattern });
        }
        self.expect_word("DELETE")?;
        if self.eat_word("DATA") {
            let triples = self.parse_template()?;
            return Ok(Update::DeleteData(triples));
        }
        if self.eat_word("WHERE") {
            let triples = self.parse_template()?;
            return Ok(Update::DeleteWhere(triples));
        }
        let delete = self.parse_template()?;
        if self.eat_word("INSERT") {
            let insert = self.parse_template()?;
            self.expect_word("WHERE")?;
            self.expect(&Token::LBrace)?;
            let pattern = self.parse_group()?;
            self.expect(&Token::RBrace)?;
            Ok(Update::Modify { delete, insert, pattern })
        } else {
            self.expect_word("WHERE")?;
            self.expect(&Token::LBrace)?;
            let pattern = self.parse_group()?;
            self.expect(&Token::RBrace)?;
            Ok(Update::Modify { delete, insert: vec![], pattern })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_select_with_prefixes() {
        let q = parse_select(
            "PREFIX dblp: <https://www.dblp.org/>\n\
             SELECT ?title ?venue WHERE {\n\
               ?paper a dblp:Publication .\n\
               ?paper dblp:title ?title .\n\
             } LIMIT 10",
        )
        .unwrap();
        assert!(!q.distinct);
        assert_eq!(q.output_vars(), vec!["title", "venue"]);
        assert_eq!(q.pattern.triples.len(), 2);
        assert_eq!(q.limit, Some(10));
        assert_eq!(
            q.pattern.triples[0].o.as_ground().unwrap().as_iri(),
            Some("https://www.dblp.org/Publication")
        );
    }

    #[test]
    fn parses_select_star_distinct() {
        let q = parse_select("SELECT DISTINCT * WHERE { ?s ?p ?o }").unwrap();
        assert!(q.distinct);
        assert_eq!(q.projection, Projection::All);
        assert_eq!(q.output_vars(), vec!["s", "p", "o"]);
    }

    #[test]
    fn parses_count_aggregate() {
        let q = parse_select("SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?x ?p ?o }").unwrap();
        match &q.projection {
            Projection::Items(items) => match &items[0] {
                ProjectionItem::Agg { agg, alias } => {
                    assert_eq!(alias, "n");
                    assert_eq!(agg, &Aggregate::CountVar { var: "x".into(), distinct: true });
                }
                other => panic!("unexpected projection {other:?}"),
            },
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn parses_filters() {
        let q =
            parse_select("SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a >= 18 && ?a < 65) }")
                .unwrap();
        assert_eq!(q.pattern.filters.len(), 1);
        match &q.pattern.filters[0] {
            Expr::And(l, _) => assert!(matches!(**l, Expr::Ge(_, _))),
            other => panic!("unexpected filter {other:?}"),
        }
    }

    #[test]
    fn parses_optional_and_subselect() {
        let q = parse_select(
            "SELECT ?s WHERE {\n\
               ?s a <http://x/T> .\n\
               OPTIONAL { ?s <http://x/name> ?n . }\n\
               { SELECT ?s WHERE { ?s <http://x/q> ?z } }\n\
             }",
        )
        .unwrap();
        assert_eq!(q.pattern.optionals.len(), 1);
        assert_eq!(q.pattern.subselects.len(), 1);
    }

    #[test]
    fn parses_predicate_object_lists() {
        let q =
            parse_select("SELECT ?s WHERE { ?s a <http://x/T> ; <http://x/p> ?v , ?w . }").unwrap();
        assert_eq!(q.pattern.triples.len(), 3);
        assert_eq!(q.pattern.triples[2].o.as_var(), Some("w"));
    }

    #[test]
    fn parses_order_limit_offset() {
        let q = parse_select("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 5 OFFSET 2")
            .unwrap();
        assert_eq!(q.order_by, vec![("s".into(), Order::Desc)]);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, Some(2));
    }

    #[test]
    fn parses_insert_data() {
        let op =
            parse("PREFIX x: <http://x/>\nINSERT DATA { x:a x:p x:b . x:a x:q \"lit\" }").unwrap();
        match op {
            Operation::Update(Update::InsertData(ts)) => assert_eq!(ts.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_delete_where() {
        let op = parse("DELETE WHERE { ?m a <http://kgnet/NodeClassifier> . ?m ?p ?o }").unwrap();
        match op {
            Operation::Update(Update::DeleteWhere(ts)) => assert_eq!(ts.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_delete_template_where() {
        let op =
            parse("DELETE { ?m ?p ?o } WHERE { ?m a <http://kgnet/NodeClassifier> . ?m ?p ?o }")
                .unwrap();
        match op {
            Operation::Update(Update::Modify { delete, insert, pattern }) => {
                assert_eq!(delete.len(), 1);
                assert!(insert.is_empty());
                assert_eq!(pattern.triples.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_error() {
        assert!(parse_select("SELECT ?s WHERE { ?s a foo:T }").is_err());
    }

    #[test]
    fn a_keyword_expands_to_rdf_type() {
        let q = parse_select("SELECT ?s WHERE { ?s a <http://x/T> }").unwrap();
        assert_eq!(q.pattern.triples[0].p.as_ground().unwrap().as_iri(), Some(RDF_TYPE));
    }
}
