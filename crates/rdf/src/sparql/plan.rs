//! Statistics-driven join planning for group graph patterns.
//!
//! [`plan_group`] translates a parsed [`GroupPattern`] into an explicit
//! [`GroupPlan`]: triple patterns resolved against the term dictionary and
//! variable table, greedily reordered by cardinality estimates fed by the
//! store's real per-predicate statistics ([`RdfStore::predicate_stats`]),
//! with each FILTER pushed down to the earliest join step that binds all of
//! its variables. Sub-SELECTs are evaluated once at plan time (they are
//! blocking anyway) and stored as materialised id rows for the executors to
//! join against. The same plan drives both the streaming executor
//! (`sparql::stream`) and the materialised reference executor, so the two
//! enumerate solutions in the same order.

use rustc_hash::FxHashSet;

use crate::dict::TermId;
use crate::error::SparqlError;
use crate::sparql::ast::{Expr, GroupPattern, TermPattern, TriplePattern};
use crate::sparql::eval::{evaluate_select_materialised, VarTable};
use crate::store::RdfStore;

/// One resolved position of a planned triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A variable, identified by its slot in the binding vector.
    Var(usize),
    /// A ground term resolved to its dictionary id.
    Const(TermId),
}

/// One join step: a resolved triple pattern, the filters that become
/// evaluable once it binds its variables, and the planner's estimate.
#[derive(Debug, Clone)]
pub struct PatternStep {
    /// Subject position.
    pub s: Slot,
    /// Predicate position.
    pub p: Slot,
    /// Object position.
    pub o: Slot,
    /// Filters pushed down to run right after this step.
    pub filters: Vec<Expr>,
    /// Estimated matches when this step was chosen (diagnostics).
    pub est: f64,
}

/// A sub-SELECT materialised at plan time, ready for hash/nested joining.
#[derive(Debug, Clone)]
pub struct SubPlan {
    /// Binding slots of the sub-select's output columns.
    pub slots: Vec<usize>,
    /// Result rows as interned ids. `None` marks an unbound value or a term
    /// absent from the dictionary (e.g. a computed aggregate), which joins
    /// like an unbound value.
    pub rows: Vec<Vec<Option<TermId>>>,
}

/// An executable plan for one group graph pattern.
#[derive(Debug, Clone, Default)]
pub struct GroupPlan {
    /// True when a ground term of a required pattern is absent from the
    /// dictionary: the group can match nothing.
    pub impossible: bool,
    /// Filters evaluable from the seed binding alone.
    pub eager_filters: Vec<Expr>,
    /// Ordered join steps.
    pub steps: Vec<PatternStep>,
    /// Materialised sub-SELECTs, joined after the required steps.
    pub subselects: Vec<SubPlan>,
    /// OPTIONAL blocks, left-joined after the sub-SELECTs.
    pub optionals: Vec<GroupPlan>,
    /// Filters over variables only bound by optionals/sub-selects (or never
    /// bound), applied last.
    pub late_filters: Vec<Expr>,
}

impl GroupPlan {
    /// Total number of join steps, including nested optionals.
    pub fn n_steps(&self) -> usize {
        self.steps.len() + self.optionals.iter().map(GroupPlan::n_steps).sum::<usize>()
    }

    /// Render the plan as indented EXPLAIN-style text: one line per
    /// operator in execution order, constants resolved through `store`'s
    /// dictionary, variables shown by name, planner estimates attached to
    /// every scan. Nested OPTIONAL plans indent one level.
    pub(crate) fn render(&self, store: &RdfStore, vars: &VarTable) -> String {
        let mut out = String::new();
        self.render_into(store, vars, 0, &mut out);
        out
    }

    fn render_into(&self, store: &RdfStore, vars: &VarTable, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        if self.impossible {
            let _ = writeln!(out, "{pad}impossible (ground term not in dictionary)");
            return;
        }
        let slot = |s: Slot| match s {
            Slot::Const(id) => store.resolve(id).to_string(),
            Slot::Var(v) => match vars.name(v) {
                Some(name) => format!("?{name}"),
                None => format!("?_{v}"),
            },
        };
        for f in &self.eager_filters {
            let _ = writeln!(out, "{pad}filter(eager) {f}");
        }
        for step in &self.steps {
            let _ = writeln!(
                out,
                "{pad}scan {} {} {} (est {:.1})",
                slot(step.s),
                slot(step.p),
                slot(step.o),
                step.est
            );
            for f in &step.filters {
                let _ = writeln!(out, "{pad}  filter {f}");
            }
        }
        for sub in &self.subselects {
            let cols: Vec<String> = sub.slots.iter().map(|&s| slot(Slot::Var(s))).collect();
            let _ = writeln!(
                out,
                "{pad}subselect join [{}] ({} rows materialised)",
                cols.join(" "),
                sub.rows.len()
            );
        }
        for opt in &self.optionals {
            let _ = writeln!(out, "{pad}optional");
            opt.render_into(store, vars, depth + 1, out);
        }
        for f in &self.late_filters {
            let _ = writeln!(out, "{pad}filter(late) {f}");
        }
    }
}

/// Build the plan for `group`, assuming the variable slots in `outer_bound`
/// are already bound by the enclosing scope (empty at the top level).
///
/// All variables of the group must already be registered in `vars` (see
/// `collect_vars` in the evaluator).
pub(crate) fn plan_group(
    store: &RdfStore,
    group: &GroupPattern,
    vars: &VarTable,
    outer_bound: &FxHashSet<usize>,
) -> Result<GroupPlan, SparqlError> {
    let mut plan = GroupPlan::default();

    // Resolve required patterns; a ground term missing from the dictionary
    // means the group matches nothing.
    let mut remaining = Vec::with_capacity(group.triples.len());
    for tp in &group.triples {
        match resolve_triple(store, tp, vars) {
            Some(resolved) => remaining.push(resolved),
            None => {
                plan.impossible = true;
                return Ok(plan);
            }
        }
    }

    // Pending filters with their variable slot sets.
    let mut pending: Vec<(Expr, FxHashSet<usize>)> = group
        .filters
        .iter()
        .map(|f| {
            let mut names = Vec::new();
            f.vars(&mut names);
            (f.clone(), names.iter().filter_map(|v| vars.get(v)).collect())
        })
        .collect();

    let mut bound = outer_bound.clone();
    take_ready_filters(&mut pending, &bound, &mut plan.eager_filters);

    // Greedy join ordering: repeatedly pick the remaining pattern with the
    // lowest estimated cardinality given the variables bound so far.
    while !remaining.is_empty() {
        let (best, est) = remaining
            .iter()
            .enumerate()
            .map(|(i, t)| (i, estimate(store, t, &bound)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("remaining is non-empty");
        let (s, p, o) = remaining.swap_remove(best);
        for slot in [s, p, o] {
            if let Slot::Var(v) = slot {
                bound.insert(v);
            }
        }
        let mut step = PatternStep { s, p, o, filters: Vec::new(), est };
        take_ready_filters(&mut pending, &bound, &mut step.filters);
        plan.steps.push(step);
    }

    // Sub-selects: evaluate once now and intern the rows for joining (the
    // previous engine also materialised them; note this means LIMIT on the
    // outer query does not short-circuit the sub-select — a streaming
    // sub-join is a noted follow-up).
    for sub in &group.subselects {
        let result = evaluate_select_materialised(store, sub)?;
        let slots: Vec<usize> = result
            .vars
            .iter()
            .map(|v| vars.get(v).expect("sub-select output vars are registered"))
            .collect();
        let rows = result
            .rows
            .iter()
            .map(|row| row.iter().map(|t| t.as_ref().and_then(|t| store.lookup(t))).collect())
            .collect();
        for &slot in &slots {
            bound.insert(slot);
        }
        plan.subselects.push(SubPlan { slots, rows });
    }

    // Optionals: planned with everything bound so far; their bindable vars
    // count as (possibly) bound for later optionals' estimates.
    for opt in &group.optionals {
        plan.optionals.push(plan_group(store, opt, vars, &bound)?);
        for v in opt.bindable_vars() {
            if let Some(slot) = vars.get(&v) {
                bound.insert(slot);
            }
        }
    }

    plan.late_filters.extend(pending.into_iter().map(|(f, _)| f));
    Ok(plan)
}

/// Move every pending filter whose variables are all in `bound` into `out`.
fn take_ready_filters(
    pending: &mut Vec<(Expr, FxHashSet<usize>)>,
    bound: &FxHashSet<usize>,
    out: &mut Vec<Expr>,
) {
    let mut i = 0;
    while i < pending.len() {
        if pending[i].1.iter().all(|s| bound.contains(s)) {
            out.push(pending.swap_remove(i).0);
        } else {
            i += 1;
        }
    }
}

/// Resolve one triple pattern; `None` when a ground term is not interned.
fn resolve_triple(
    store: &RdfStore,
    tp: &TriplePattern,
    vars: &VarTable,
) -> Option<(Slot, Slot, Slot)> {
    let slot = |t: &TermPattern| -> Option<Slot> {
        match t {
            TermPattern::Var(v) => {
                Some(Slot::Var(vars.get(v).expect("pattern vars are registered")))
            }
            TermPattern::Ground(term) => store.lookup(term).map(Slot::Const),
        }
    };
    Some((slot(&tp.s)?, slot(&tp.p)?, slot(&tp.o)?))
}

/// Estimated number of matches for a pattern given already-bound variables.
///
/// The base is the store's exact count over the constant positions. Each
/// already-bound variable position then narrows the scan like a constant: by
/// the predicate's real distinct-subject/object count when the predicate is
/// ground (i.e. down to the average fan-out), or by a nominal factor of 16
/// when it is not.
fn estimate(store: &RdfStore, t: &(Slot, Slot, Slot), bound: &FxHashSet<usize>) -> f64 {
    const NOMINAL_FANOUT: f64 = 16.0;
    let (s, p, o) = *t;
    let constant = |slot: Slot| match slot {
        Slot::Const(id) => Some(id),
        Slot::Var(_) => None,
    };
    let is_bound_var = |slot: Slot| matches!(slot, Slot::Var(v) if bound.contains(&v));

    let stats = match p {
        Slot::Const(pid) => Some(store.predicate_stats(pid)),
        Slot::Var(_) => None,
    };
    // Base cardinality over the constant positions. The predicate-only shape
    // is the common case and comes from the cached statistics; the remaining
    // shapes bound by a subject/object constant walk one narrow index range.
    let mut est = match (constant(s), stats, constant(o)) {
        (None, Some(st), None) => st.triples as f64,
        (cs, _, co) => store.count(cs, constant(p), co) as f64,
    };
    if is_bound_var(s) {
        est /= stats.map_or(NOMINAL_FANOUT, |st| st.distinct_subjects.max(1) as f64);
    }
    if is_bound_var(o) {
        est /= stats.map_or(NOMINAL_FANOUT, |st| st.distinct_objects.max(1) as f64);
    }
    if is_bound_var(p) {
        est /= NOMINAL_FANOUT;
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparql::eval::collect_vars;
    use crate::sparql::parser::parse_select;
    use crate::term::Term;

    fn chain_store() -> RdfStore {
        // 100 `wide` triples from one hub, 2 `narrow` triples.
        let mut st = RdfStore::new();
        for i in 0..100 {
            st.insert(Term::iri("http://x/hub"), Term::iri("http://x/wide"), Term::int(i));
        }
        st.insert(Term::iri("http://x/hub"), Term::iri("http://x/narrow"), Term::int(0));
        st.insert(Term::iri("http://x/other"), Term::iri("http://x/narrow"), Term::int(1));
        st
    }

    fn plan_for(store: &RdfStore, text: &str) -> (GroupPlan, VarTable) {
        let q = parse_select(text).unwrap();
        let mut vars = VarTable::default();
        collect_vars(&q.pattern, &mut vars);
        let plan = plan_group(store, &q.pattern, &vars, &FxHashSet::default()).unwrap();
        (plan, vars)
    }

    #[test]
    fn selective_pattern_runs_first() {
        let st = chain_store();
        let (plan, vars) =
            plan_for(&st, "SELECT ?s WHERE { ?s <http://x/wide> ?w . ?s <http://x/narrow> ?n }");
        assert_eq!(plan.steps.len(), 2);
        // The narrow (2-triple) pattern must be chosen before the wide one.
        let narrow = st.lookup(&Term::iri("http://x/narrow")).unwrap();
        assert_eq!(plan.steps[0].p, Slot::Const(narrow));
        assert_eq!(plan.steps[0].est, 2.0);
        // The wide pattern's estimate is divided by the real distinct-subject
        // count of `wide` (1), not the nominal 16.
        assert_eq!(plan.steps[1].est, 100.0);
        assert!(vars.get("s").is_some());
    }

    #[test]
    fn missing_ground_term_is_impossible() {
        let st = chain_store();
        let (plan, _) = plan_for(&st, "SELECT ?s WHERE { ?s <http://nope/p> ?o }");
        assert!(plan.impossible);
    }

    #[test]
    fn filters_are_pushed_to_earliest_step() {
        let st = chain_store();
        let (plan, _) = plan_for(
            &st,
            "SELECT ?s WHERE { ?s <http://x/narrow> ?n . ?s <http://x/wide> ?w .
               FILTER(?n > 0) . FILTER(?w > 50) }",
        );
        // ?n filter lands on the first (narrow) step, ?w on the second.
        assert_eq!(plan.steps[0].filters.len(), 1);
        assert_eq!(plan.steps[1].filters.len(), 1);
        assert!(plan.late_filters.is_empty());
    }

    #[test]
    fn filter_on_optional_var_is_late() {
        let st = chain_store();
        let (plan, _) = plan_for(
            &st,
            "SELECT ?s WHERE { ?s <http://x/narrow> ?n .
               OPTIONAL { ?s <http://x/wide> ?w } FILTER(?w > 50) }",
        );
        assert!(plan.steps.iter().all(|s| s.filters.is_empty()));
        assert_eq!(plan.late_filters.len(), 1);
        assert_eq!(plan.optionals.len(), 1);
        assert_eq!(plan.n_steps(), 2);
    }
}
