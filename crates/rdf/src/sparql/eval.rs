//! Evaluation of the SPARQL subset against an [`RdfStore`].
//!
//! Basic graph patterns are evaluated with index nested-loop joins; the
//! pattern order is chosen greedily by boundness and index cardinality
//! estimates (the classic heuristic of SPARQL engines). Filters are applied
//! as soon as their variables are bound; OPTIONAL blocks are left-joined and
//! sub-SELECTs are hash-joined on shared variables.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::dict::TermId;
use crate::error::SparqlError;
use crate::sparql::ast::*;
use crate::store::RdfStore;
use crate::term::Term;

/// A materialised query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (without `?`).
    pub vars: Vec<String>,
    /// Rows; `None` marks an unbound variable.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl QueryResult {
    /// Index of a column by variable name.
    pub fn column(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// Iterate the values of one column.
    pub fn column_values<'a>(&'a self, var: &str) -> impl Iterator<Item = Option<&'a Term>> + 'a {
        let idx = self.column(var);
        self.rows.iter().map(move |row| idx.and_then(|i| row[i].as_ref()))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a simple aligned text table (for examples/demos).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(|v| v.len() + 1).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let s = t.as_ref().map_or(String::new(), |t| t.to_string());
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, v) in self.vars.iter().enumerate() {
            out.push_str(&format!("{:w$}  ", format!("?{v}"), w = widths[i]));
        }
        out.push('\n');
        for row in rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Counts produced by an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Triples inserted (that were not already present).
    pub inserted: usize,
    /// Triples deleted (that were present).
    pub deleted: usize,
}

/// Outcome of [`execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A SELECT result.
    Rows(QueryResult),
    /// An update summary.
    Updated(UpdateStats),
}

/// Parse and run one operation against the store.
pub fn execute(store: &mut RdfStore, text: &str) -> Result<ExecOutcome, SparqlError> {
    match crate::sparql::parser::parse(text)? {
        Operation::Select(q) => Ok(ExecOutcome::Rows(evaluate_select(store, &q)?)),
        Operation::Update(u) => Ok(ExecOutcome::Updated(execute_update(store, &u)?)),
    }
}

/// Parse and run a SELECT query.
pub fn query(store: &RdfStore, text: &str) -> Result<QueryResult, SparqlError> {
    let q = crate::sparql::parser::parse_select(text)?;
    evaluate_select(store, &q)
}

// ---------------------------------------------------------------------------
// Variable table and bindings
// ---------------------------------------------------------------------------

#[derive(Default)]
struct VarTable {
    names: Vec<String>,
    index: FxHashMap<String, usize>,
}

impl VarTable {
    fn slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }

    fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }
}

type Binding = Vec<Option<TermId>>;

// ---------------------------------------------------------------------------
// SELECT evaluation
// ---------------------------------------------------------------------------

/// Evaluate a parsed SELECT query.
pub fn evaluate_select(store: &RdfStore, q: &SelectQuery) -> Result<QueryResult, SparqlError> {
    let mut vars = VarTable::default();
    collect_vars(&q.pattern, &mut vars);
    if let Projection::Items(items) = &q.projection {
        for item in items {
            match item {
                ProjectionItem::Var(v) => {
                    vars.slot(v);
                }
                ProjectionItem::Agg { alias, .. } => {
                    vars.slot(alias);
                }
            }
        }
    }
    let bindings = eval_group(store, &q.pattern, &mut vars)?;

    // Projection (with aggregates).
    let out_vars = q.output_vars();
    let mut rows: Vec<Vec<Option<TermId>>> = Vec::new();
    let mut agg_rows: Vec<Vec<Option<Term>>> = Vec::new();
    let has_agg = matches!(&q.projection, Projection::Items(items)
        if items.iter().any(|i| matches!(i, ProjectionItem::Agg { .. })));
    if has_agg {
        let Projection::Items(items) = &q.projection else { unreachable!() };
        let mut row = Vec::with_capacity(items.len());
        for item in items {
            match item {
                ProjectionItem::Var(v) => {
                    // A non-aggregated var alongside aggregates: take the
                    // first binding (we do not support GROUP BY).
                    let slot = vars.get(v);
                    let val = bindings
                        .first()
                        .and_then(|b| slot.and_then(|s| b[s]))
                        .map(|id| store.resolve(id).clone());
                    row.push(val);
                }
                ProjectionItem::Agg { agg, .. } => {
                    let count = match agg {
                        Aggregate::CountAll => bindings.len(),
                        Aggregate::CountVar { var, distinct } => {
                            let slot = vars.get(var);
                            match slot {
                                None => 0,
                                Some(s) => {
                                    if *distinct {
                                        bindings
                                            .iter()
                                            .filter_map(|b| b[s])
                                            .collect::<FxHashSet<_>>()
                                            .len()
                                    } else {
                                        bindings.iter().filter(|b| b[s].is_some()).count()
                                    }
                                }
                            }
                        }
                    };
                    row.push(Some(Term::int(count as i64)));
                }
            }
        }
        agg_rows.push(row);
    } else {
        let slots: Vec<Option<usize>> = out_vars.iter().map(|v| vars.get(v)).collect();
        rows.reserve(bindings.len());
        for b in &bindings {
            rows.push(slots.iter().map(|s| s.and_then(|i| b[i])).collect());
        }
        if q.distinct {
            let mut seen = FxHashSet::default();
            rows.retain(|row| seen.insert(row.iter().map(|o| o.map(|t| t.0)).collect::<Vec<_>>()));
        }
    }

    // Materialise terms.
    let mut out_rows: Vec<Vec<Option<Term>>> = if has_agg {
        agg_rows
    } else {
        rows.into_iter()
            .map(|row| row.into_iter().map(|id| id.map(|i| store.resolve(i).clone())).collect())
            .collect()
    };

    // ORDER BY.
    if !q.order_by.is_empty() {
        let keys: Vec<(usize, Order)> = q
            .order_by
            .iter()
            .filter_map(|(v, ord)| out_vars.iter().position(|x| x == v).map(|i| (i, *ord)))
            .collect();
        out_rows.sort_by(|a, b| {
            for &(i, ord) in &keys {
                let c = cmp_terms(a[i].as_ref(), b[i].as_ref());
                let c = if ord == Order::Desc { c.reverse() } else { c };
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // OFFSET / LIMIT.
    let offset = q.offset.unwrap_or(0);
    if offset > 0 {
        out_rows.drain(..offset.min(out_rows.len()));
    }
    if let Some(limit) = q.limit {
        out_rows.truncate(limit);
    }

    Ok(QueryResult { vars: out_vars, rows: out_rows })
}

/// Total order over optional terms used by ORDER BY: unbound < numeric <
/// everything else by display string.
fn cmp_terms(a: Option<&Term>, b: Option<&Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => match (x.numeric(), y.numeric()) {
            (Some(nx), Some(ny)) => nx.partial_cmp(&ny).unwrap_or(Ordering::Equal),
            _ => x.to_string().cmp(&y.to_string()),
        },
    }
}

fn collect_vars(group: &GroupPattern, vars: &mut VarTable) {
    for t in &group.triples {
        for v in t.vars() {
            vars.slot(v);
        }
    }
    for f in &group.filters {
        let mut names = Vec::new();
        f.vars(&mut names);
        for v in names {
            vars.slot(&v);
        }
    }
    for opt in &group.optionals {
        collect_vars(opt, vars);
    }
    for sub in &group.subselects {
        for v in sub.output_vars() {
            vars.slot(&v);
        }
    }
}

fn eval_group(
    store: &RdfStore,
    group: &GroupPattern,
    vars: &mut VarTable,
) -> Result<Vec<Binding>, SparqlError> {
    let width = vars.names.len();
    let mut bindings: Vec<Binding> = vec![vec![None; width]];

    // Order patterns greedily: prefer more bound slots, then lower estimate.
    let mut remaining: Vec<&TriplePattern> = group.triples.iter().collect();
    let mut bound_vars: FxHashSet<usize> = FxHashSet::default();
    let mut ordered: Vec<&TriplePattern> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, tp)| {
                let score = pattern_score(store, tp, vars, &bound_vars);
                (i, score)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("remaining is non-empty");
        let tp = remaining.swap_remove(best_idx);
        for v in tp.vars() {
            if let Some(s) = vars.get(v) {
                bound_vars.insert(s);
            }
        }
        ordered.push(tp);
    }

    // Pending filters evaluated as soon as their vars are bound.
    let mut pending: Vec<(&Expr, FxHashSet<usize>)> = group
        .filters
        .iter()
        .map(|f| {
            let mut names = Vec::new();
            f.vars(&mut names);
            let slots = names.iter().filter_map(|v| vars.get(v)).collect();
            (f, slots)
        })
        .collect();

    let mut currently_bound: FxHashSet<usize> = FxHashSet::default();
    for tp in ordered {
        bindings = extend_with_pattern(store, &bindings, tp, vars)?;
        for v in tp.vars() {
            if let Some(s) = vars.get(v) {
                currently_bound.insert(s);
            }
        }
        let mut i = 0;
        while i < pending.len() {
            if pending[i].1.iter().all(|s| currently_bound.contains(s)) {
                let (f, _) = pending.swap_remove(i);
                bindings.retain(|b| eval_expr(store, f, b, vars));
            } else {
                i += 1;
            }
        }
        if bindings.is_empty() {
            break;
        }
    }

    // Sub-selects: hash-join on shared vars.
    for sub in &group.subselects {
        let sub_result = evaluate_select(store, sub)?;
        bindings = join_subselect(store, bindings, &sub_result, vars);
        if bindings.is_empty() {
            break;
        }
    }

    // Optionals: left join.
    for opt in &group.optionals {
        let mut next = Vec::with_capacity(bindings.len());
        for b in &bindings {
            let seeded = eval_group_seeded(store, opt, vars, b)?;
            if seeded.is_empty() {
                next.push(b.clone());
            } else {
                next.extend(seeded);
            }
        }
        bindings = next;
    }

    // Remaining filters (e.g. over optional/subselect vars).
    for (f, _) in pending {
        bindings.retain(|b| eval_expr(store, f, b, vars));
    }

    Ok(bindings)
}

/// Evaluate a group starting from an existing binding (used by OPTIONAL).
fn eval_group_seeded(
    store: &RdfStore,
    group: &GroupPattern,
    vars: &mut VarTable,
    seed: &Binding,
) -> Result<Vec<Binding>, SparqlError> {
    let mut bindings = vec![seed.clone()];
    for tp in &group.triples {
        bindings = extend_with_pattern(store, &bindings, tp, vars)?;
        if bindings.is_empty() {
            return Ok(vec![]);
        }
    }
    for f in &group.filters {
        bindings.retain(|b| eval_expr(store, f, b, vars));
    }
    for opt in &group.optionals {
        let mut next = Vec::with_capacity(bindings.len());
        for b in &bindings {
            let seeded = eval_group_seeded(store, opt, vars, b)?;
            if seeded.is_empty() {
                next.push(b.clone());
            } else {
                next.extend(seeded);
            }
        }
        bindings = next;
    }
    Ok(bindings)
}

/// Cost proxy for pattern ordering: store-estimated matches assuming
/// already-bound variables behave like constants (divide by a nominal
/// fan-out).
fn pattern_score(
    store: &RdfStore,
    tp: &TriplePattern,
    vars: &VarTable,
    bound: &FxHashSet<usize>,
) -> f64 {
    let ground = |t: &TermPattern| -> Option<Option<TermId>> {
        match t {
            TermPattern::Ground(term) => Some(store.lookup(term)),
            TermPattern::Var(_) => None,
        }
    };
    let slot = |t: &TermPattern| -> Option<TermId> {
        match ground(t) {
            Some(Some(id)) => Some(id),
            _ => None,
        }
    };
    let s = slot(&tp.s);
    let p = slot(&tp.p);
    let o = slot(&tp.o);
    // A ground term missing from the dictionary means zero matches.
    for t in [&tp.s, &tp.p, &tp.o] {
        if let Some(None) = ground(t) {
            return 0.0;
        }
    }
    let mut est = store.count(s, p, o) as f64;
    for t in [&tp.s, &tp.p, &tp.o] {
        if let TermPattern::Var(v) = t {
            if vars.get(v).is_some_and(|sl| bound.contains(&sl)) {
                // A bound variable narrows the scan roughly like a constant.
                est /= 16.0;
            }
        }
    }
    est
}

fn extend_with_pattern(
    store: &RdfStore,
    bindings: &[Binding],
    tp: &TriplePattern,
    vars: &mut VarTable,
) -> Result<Vec<Binding>, SparqlError> {
    let slot_of = |t: &TermPattern, vars: &mut VarTable| -> Result<Result<usize, TermId>, ()> {
        match t {
            TermPattern::Var(v) => Ok(Ok(vars.slot(v))),
            TermPattern::Ground(term) => match store.lookup(term) {
                Some(id) => Ok(Err(id)),
                None => Err(()),
            },
        }
    };
    let (s_slot, p_slot, o_slot) =
        match (slot_of(&tp.s, vars), slot_of(&tp.p, vars), slot_of(&tp.o, vars)) {
            (Ok(a), Ok(b), Ok(c)) => (a, b, c),
            // A ground term not in the dictionary matches nothing.
            _ => return Ok(vec![]),
        };

    let mut out = Vec::new();
    let mut scratch = Vec::new();
    for b in bindings {
        let resolve = |slot: &Result<usize, TermId>, b: &Binding| -> Option<TermId> {
            match slot {
                Ok(var_slot) => b.get(*var_slot).copied().flatten(),
                Err(id) => Some(*id),
            }
        };
        let s = resolve(&s_slot, b);
        let p = resolve(&p_slot, b);
        let o = resolve(&o_slot, b);
        scratch.clear();
        store.scan(s, p, o, &mut scratch);
        for &(ms, mp, mo) in &scratch {
            let mut nb = b.clone();
            let mut ok = true;
            for (slot, value) in [(&s_slot, ms), (&p_slot, mp), (&o_slot, mo)] {
                if let Ok(var_slot) = slot {
                    if *var_slot >= nb.len() {
                        nb.resize(*var_slot + 1, None);
                    }
                    match nb[*var_slot] {
                        None => nb[*var_slot] = Some(value),
                        Some(existing) if existing == value => {}
                        Some(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                out.push(nb);
            }
        }
    }
    Ok(out)
}

fn join_subselect(
    store: &RdfStore,
    bindings: Vec<Binding>,
    sub: &QueryResult,
    vars: &mut VarTable,
) -> Vec<Binding> {
    // Intern sub-result terms into ids for joining; unknown terms cannot join
    // on shared vars but still extend when the var is fresh.
    let sub_slots: Vec<usize> = sub.vars.iter().map(|v| vars.slot(v)).collect();
    let mut out = Vec::new();
    for b in &bindings {
        'rows: for row in &sub.rows {
            let mut nb = b.clone();
            if nb.len() < vars.names.len() {
                nb.resize(vars.names.len(), None);
            }
            for (i, term) in row.iter().enumerate() {
                let slot = sub_slots[i];
                let id = term.as_ref().and_then(|t| store.lookup(t));
                match (nb[slot], id) {
                    (None, v) => nb[slot] = v,
                    (Some(x), Some(y)) if x == y => {}
                    (Some(_), _) => continue 'rows,
                }
            }
            out.push(nb);
        }
    }
    out
}

fn eval_expr(store: &RdfStore, expr: &Expr, b: &Binding, vars: &VarTable) -> bool {
    eval_expr_term(store, expr, b, vars).is_some_and(|v| v.truthy())
}

enum Value {
    Term(Term),
    Bool(bool),
    Unbound,
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Term(t) => t.numeric() != Some(0.0),
            Value::Unbound => false,
        }
    }
}

fn eval_expr_term(store: &RdfStore, expr: &Expr, b: &Binding, vars: &VarTable) -> Option<Value> {
    match expr {
        Expr::Var(v) => {
            let slot = vars.get(v)?;
            match b.get(slot).copied().flatten() {
                Some(id) => Some(Value::Term(store.resolve(id).clone())),
                None => Some(Value::Unbound),
            }
        }
        Expr::Const(t) => Some(Value::Term(t.clone())),
        Expr::Bound(v) => {
            let slot = vars.get(v)?;
            Some(Value::Bool(b.get(slot).copied().flatten().is_some()))
        }
        Expr::Not(e) => Some(Value::Bool(!eval_expr(store, e, b, vars))),
        Expr::And(l, r) => {
            Some(Value::Bool(eval_expr(store, l, b, vars) && eval_expr(store, r, b, vars)))
        }
        Expr::Or(l, r) => {
            Some(Value::Bool(eval_expr(store, l, b, vars) || eval_expr(store, r, b, vars)))
        }
        Expr::Contains(e, needle) => {
            let v = eval_expr_term(store, e, b, vars)?;
            match v {
                Value::Term(t) => {
                    let hay = match &t {
                        Term::Iri(i) => i.as_str(),
                        Term::Literal { lexical, .. } => lexical.as_str(),
                        Term::Blank(l) => l.as_str(),
                    };
                    Some(Value::Bool(hay.contains(needle.as_str())))
                }
                _ => Some(Value::Bool(false)),
            }
        }
        Expr::Eq(l, r) => compare(store, l, r, b, vars, |o| o == std::cmp::Ordering::Equal),
        Expr::Ne(l, r) => compare(store, l, r, b, vars, |o| o != std::cmp::Ordering::Equal),
        Expr::Lt(l, r) => compare(store, l, r, b, vars, |o| o == std::cmp::Ordering::Less),
        Expr::Le(l, r) => compare(store, l, r, b, vars, |o| o != std::cmp::Ordering::Greater),
        Expr::Gt(l, r) => compare(store, l, r, b, vars, |o| o == std::cmp::Ordering::Greater),
        Expr::Ge(l, r) => compare(store, l, r, b, vars, |o| o != std::cmp::Ordering::Less),
    }
}

fn compare(
    store: &RdfStore,
    l: &Expr,
    r: &Expr,
    b: &Binding,
    vars: &VarTable,
    pred: impl Fn(std::cmp::Ordering) -> bool,
) -> Option<Value> {
    let lv = eval_expr_term(store, l, b, vars)?;
    let rv = eval_expr_term(store, r, b, vars)?;
    let (Value::Term(lt), Value::Term(rt)) = (lv, rv) else {
        return Some(Value::Bool(false));
    };
    let ord = match (lt.numeric(), rt.numeric()) {
        (Some(a), Some(c)) => a.partial_cmp(&c)?,
        _ => {
            // Non-numeric: compare literals/IRIs textually; equality must
            // also respect the term kind.
            if matches!(l, Expr::Const(_)) || matches!(r, Expr::Const(_)) {
                // fallthrough to textual comparison
            }
            let ls = term_text(&lt);
            let rs = term_text(&rt);
            if std::mem::discriminant(&lt) != std::mem::discriminant(&rt) {
                return Some(Value::Bool(false));
            }
            ls.cmp(rs)
        }
    };
    Some(Value::Bool(pred(ord)))
}

fn term_text(t: &Term) -> &str {
    match t {
        Term::Iri(i) => i,
        Term::Literal { lexical, .. } => lexical,
        Term::Blank(l) => l,
    }
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

/// Execute a parsed update.
pub fn execute_update(store: &mut RdfStore, update: &Update) -> Result<UpdateStats, SparqlError> {
    let mut stats = UpdateStats::default();
    match update {
        Update::InsertData(triples) => {
            for tp in triples {
                let (s, p, o) = ground_triple(tp)?;
                if store.insert(s, p, o) {
                    stats.inserted += 1;
                }
            }
        }
        Update::DeleteData(triples) => {
            for tp in triples {
                let (s, p, o) = ground_triple(tp)?;
                if store.remove(&s, &p, &o) {
                    stats.deleted += 1;
                }
            }
        }
        Update::DeleteWhere(triples) => {
            let pattern = GroupPattern { triples: triples.clone(), ..Default::default() };
            let modify = Update::Modify { delete: triples.clone(), insert: vec![], pattern };
            return execute_update(store, &modify);
        }
        Update::Modify { delete, insert, pattern } => {
            let mut vars = VarTable::default();
            collect_vars(pattern, &mut vars);
            for tp in delete.iter().chain(insert) {
                for v in tp.vars() {
                    vars.slot(v);
                }
            }
            let bindings = eval_group(store, pattern, &mut vars)?;
            let mut to_delete = Vec::new();
            let mut to_insert = Vec::new();
            for b in &bindings {
                for tp in delete {
                    if let Some(t) = instantiate(store, tp, b, &vars) {
                        to_delete.push(t);
                    }
                }
                for tp in insert {
                    if let Some(t) = instantiate(store, tp, b, &vars) {
                        to_insert.push(t);
                    }
                }
            }
            for (s, p, o) in to_delete {
                if store.remove(&s, &p, &o) {
                    stats.deleted += 1;
                }
            }
            for (s, p, o) in to_insert {
                if store.insert(s, p, o) {
                    stats.inserted += 1;
                }
            }
        }
    }
    Ok(stats)
}

fn ground_triple(tp: &TriplePattern) -> Result<(Term, Term, Term), SparqlError> {
    let get = |t: &TermPattern| -> Result<Term, SparqlError> {
        t.as_ground().cloned().ok_or_else(|| SparqlError::eval("variable in ground data template"))
    };
    Ok((get(&tp.s)?, get(&tp.p)?, get(&tp.o)?))
}

fn instantiate(
    store: &RdfStore,
    tp: &TriplePattern,
    b: &Binding,
    vars: &VarTable,
) -> Option<(Term, Term, Term)> {
    let get = |t: &TermPattern| -> Option<Term> {
        match t {
            TermPattern::Ground(term) => Some(term.clone()),
            TermPattern::Var(v) => {
                let slot = vars.get(v)?;
                b.get(slot).copied().flatten().map(|id| store.resolve(id).clone())
            }
        }
    };
    Some((get(&tp.s)?, get(&tp.p)?, get(&tp.o)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_papers() -> RdfStore {
        let mut st = RdfStore::new();
        let run = |st: &mut RdfStore, q: &str| execute(st, q).unwrap();
        run(
            &mut st,
            r#"PREFIX x: <http://x/>
               INSERT DATA {
                 x:p1 a x:Publication . x:p1 x:title "P one" . x:p1 x:year 2020 .
                 x:p2 a x:Publication . x:p2 x:title "P two" . x:p2 x:year 2022 .
                 x:p3 a x:Publication . x:p3 x:title "P three" . x:p3 x:year 2023 .
                 x:p1 x:cites x:p2 . x:p2 x:cites x:p3 .
                 x:a1 a x:Author . x:a1 x:wrote x:p1 . x:a1 x:name "Ada" .
               }"#,
        );
        st
    }

    #[test]
    fn bgp_join_two_patterns() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?t WHERE { ?p a x:Publication . ?p x:title ?t }",
        )
        .unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn filter_numeric() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:year ?y . FILTER(?y > 2021) }",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn filter_and_or_not() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:year ?y . FILTER(?y = 2020 || ?y = 2023) }",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:year ?y . FILTER(!(?y = 2020)) }",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn join_chain_and_shared_vars() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?a ?t WHERE {
               ?a x:wrote ?p . ?p x:title ?t . ?p x:cites ?q }",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1].as_ref().unwrap().as_literal(), Some("P one"));
    }

    #[test]
    fn optional_left_join() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?p ?q WHERE {
               ?p a x:Publication . OPTIONAL { ?p x:cites ?q } } ORDER BY ?p",
        )
        .unwrap();
        assert_eq!(r.len(), 3);
        // p3 cites nothing -> unbound ?q.
        let unbound = r.rows.iter().filter(|row| row[1].is_none()).count();
        assert_eq!(unbound, 1);
    }

    #[test]
    fn distinct_and_order_limit() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT DISTINCT ?y WHERE { ?p x:year ?y } ORDER BY DESC(?y) LIMIT 2",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_int(), Some(2023));
    }

    #[test]
    fn count_aggregates() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT (COUNT(*) AS ?n) WHERE { ?p a x:Publication }",
        )
        .unwrap();
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_int(), Some(3));
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?p x:cites ?q }",
        )
        .unwrap();
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_int(), Some(2));
    }

    #[test]
    fn subselect_joins_on_shared_vars() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?p ?t WHERE {
               ?p x:title ?t .
               { SELECT ?p WHERE { ?p x:cites ?q } } }",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn contains_filter() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:title ?t . FILTER(CONTAINS(?t, \"two\")) }",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn modify_insert_where() {
        let mut st = store_with_papers();
        let out = execute(
            &mut st,
            "PREFIX x: <http://x/> INSERT { ?p x:flag \"old\" } WHERE { ?p x:year ?y . FILTER(?y < 2022) }",
        )
        .unwrap();
        assert_eq!(out, ExecOutcome::Updated(UpdateStats { inserted: 1, deleted: 0 }));
    }

    #[test]
    fn delete_where_removes_matching() {
        let mut st = store_with_papers();
        let before = st.len();
        let out = execute(&mut st, "PREFIX x: <http://x/> DELETE WHERE { x:p1 ?p ?o }").unwrap();
        match out {
            ExecOutcome::Updated(s) => assert_eq!(s.deleted, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(st.len(), before - 4);
    }

    #[test]
    fn unknown_ground_term_yields_empty() {
        let st = store_with_papers();
        let r = query(&st, "SELECT ?s WHERE { ?s <http://nope/p> ?o }").unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn cartesian_product_when_disjoint() {
        let st = store_with_papers();
        let r = query(
            &st,
            "PREFIX x: <http://x/> SELECT ?p ?a WHERE { ?p a x:Publication . ?a a x:Author }",
        )
        .unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn result_table_rendering() {
        let st = store_with_papers();
        let r = query(&st, "PREFIX x: <http://x/> SELECT ?t WHERE { <http://x/p1> x:title ?t }")
            .unwrap();
        let table = r.to_table();
        assert!(table.contains("?t"));
        assert!(table.contains("P one"));
    }
}
