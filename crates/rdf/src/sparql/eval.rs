//! Evaluation of the SPARQL subset against an [`RdfStore`].
//!
//! SELECT queries are compiled to an explicit join plan (`sparql::plan`) —
//! triple patterns reordered by cardinality estimates from the store's real
//! per-predicate statistics, filters pushed down to the earliest step that
//! binds their variables — and executed by the streaming operator pipeline
//! in `sparql::stream`, which yields bindings one at a time so `LIMIT k`
//! queries stop scanning after k results. A loop-based materialised executor
//! over the same plan is kept as the reference oracle
//! ([`evaluate_select_materialised`]) and as the baseline for the evaluator
//! microbenchmarks.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::dict::TermId;
use crate::error::SparqlError;
use crate::sparql::ast::*;
use crate::sparql::plan::plan_group;
use crate::sparql::stream::{
    build_group_stream, build_group_stream_profiled, exec_group_materialised, BindingStream,
    ExecCounters, ExecCtx, ExecStats,
};
use crate::store::RdfStore;
use crate::term::{xsd, Term};

/// A materialised query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (without `?`).
    pub vars: Vec<String>,
    /// Rows; `None` marks an unbound variable.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl QueryResult {
    /// Index of a column by variable name.
    pub fn column(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// Iterate the values of one column.
    pub fn column_values<'a>(&'a self, var: &str) -> impl Iterator<Item = Option<&'a Term>> + 'a {
        let idx = self.column(var);
        self.rows.iter().map(move |row| idx.and_then(|i| row[i].as_ref()))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a simple aligned text table (for examples/demos).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(|v| v.len() + 1).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let s = t.as_ref().map_or(String::new(), |t| t.to_string());
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, v) in self.vars.iter().enumerate() {
            out.push_str(&format!("{:w$}  ", format!("?{v}"), w = widths[i]));
        }
        out.push('\n');
        for row in rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Counts produced by an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Triples inserted (that were not already present).
    pub inserted: usize,
    /// Triples deleted (that were present).
    pub deleted: usize,
}

/// Outcome of [`execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A SELECT result.
    Rows(QueryResult),
    /// An update summary.
    Updated(UpdateStats),
}

/// Parse and run one operation against the store.
pub fn execute(store: &mut RdfStore, text: &str) -> Result<ExecOutcome, SparqlError> {
    match crate::sparql::parser::parse(text)? {
        Operation::Select(q) => Ok(ExecOutcome::Rows(evaluate_select(store, &q)?)),
        Operation::Update(u) => Ok(ExecOutcome::Updated(execute_update(store, &u)?)),
    }
}

/// Parse and run a SELECT query.
pub fn query(store: &RdfStore, text: &str) -> Result<QueryResult, SparqlError> {
    let q = crate::sparql::parser::parse_select(text)?;
    evaluate_select(store, &q)
}

/// Parse and run a SELECT query, also returning execution counters (index
/// triples scanned, bindings produced) — the observable proof that `LIMIT k`
/// short-circuits the scan.
pub fn query_with_stats(
    store: &RdfStore,
    text: &str,
) -> Result<(QueryResult, ExecStats), SparqlError> {
    let q = crate::sparql::parser::parse_select(text)?;
    evaluate_streaming(store, &q)
}

// ---------------------------------------------------------------------------
// Variable table and bindings
// ---------------------------------------------------------------------------

/// Interns variable names to dense slot indexes in the binding vector.
#[derive(Default)]
pub(crate) struct VarTable {
    names: Vec<String>,
    index: FxHashMap<String, usize>,
}

impl VarTable {
    pub(crate) fn slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }

    pub(crate) fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The name registered for a slot (for diagnostics/profiling labels).
    pub(crate) fn name(&self, slot: usize) -> Option<&str> {
        self.names.get(slot).map(String::as_str)
    }

    /// Number of registered variables (the binding width).
    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }
}

pub(crate) type Binding = Vec<Option<TermId>>;

// ---------------------------------------------------------------------------
// SELECT evaluation
// ---------------------------------------------------------------------------

/// Evaluate a parsed SELECT query on the streaming pipeline.
pub fn evaluate_select(store: &RdfStore, q: &SelectQuery) -> Result<QueryResult, SparqlError> {
    evaluate_streaming(store, q).map(|(result, _)| result)
}

/// Register every variable of the query in a fresh table and build the plan.
fn prepare(
    store: &RdfStore,
    q: &SelectQuery,
) -> Result<(VarTable, crate::sparql::plan::GroupPlan), SparqlError> {
    let mut vars = VarTable::default();
    collect_vars(&q.pattern, &mut vars);
    if let Projection::Items(items) = &q.projection {
        for item in items {
            match item {
                ProjectionItem::Var(v) => {
                    vars.slot(v);
                }
                ProjectionItem::Agg { alias, .. } => {
                    vars.slot(alias);
                }
            }
        }
    }
    let plan = plan_group(store, &q.pattern, &vars, &FxHashSet::default())?;
    Ok((vars, plan))
}

fn has_agg(q: &SelectQuery) -> bool {
    matches!(&q.projection, Projection::Items(items)
        if items.iter().any(|i| matches!(i, ProjectionItem::Agg { .. })))
}

fn evaluate_streaming(
    store: &RdfStore,
    q: &SelectQuery,
) -> Result<(QueryResult, ExecStats), SparqlError> {
    let (vars, plan) = prepare(store, q)?;
    evaluate_with_plan(store, q, &vars, &plan)
}

// ---------------------------------------------------------------------------
// Prepared queries
// ---------------------------------------------------------------------------

/// A SELECT compiled against one store snapshot: the parsed query, its
/// variable table, and the join plan (patterns resolved to dictionary ids,
/// sub-SELECTs materialised, join order fixed by the statistics of that
/// snapshot).
///
/// A prepared query is only valid while the store's [`RdfStore::generation`]
/// equals [`PreparedQuery::generation`]: ids, materialised sub-selects and
/// the chosen join order all capture store state. [`evaluate_prepared`]
/// refuses stale plans, so caches (e.g. a server session's plan LRU) key by
/// `(query text, generation)` and re-prepare after any write.
pub struct PreparedQuery {
    query: SelectQuery,
    vars: VarTable,
    plan: crate::sparql::plan::GroupPlan,
    generation: u64,
}

impl PreparedQuery {
    /// The store generation this plan was compiled against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The parsed query the plan executes.
    pub fn query(&self) -> &SelectQuery {
        &self.query
    }

    /// Number of join steps in the compiled plan (diagnostics).
    pub fn n_steps(&self) -> usize {
        self.plan.n_steps()
    }

    /// Render the compiled plan as EXPLAIN-style text: one line per
    /// operator in execution order, ending with the projection stage. The
    /// id dictionary of `store` resolves the plan's constants; when the
    /// store has moved past this plan's generation a leading comment line
    /// flags the rendering as historical.
    pub fn explain(&self, store: &RdfStore) -> String {
        let mut out = String::new();
        if store.generation() != self.generation {
            out.push_str(&format!(
                "-- plan compiled at generation {}, store now at {}\n",
                self.generation,
                store.generation()
            ));
        }
        out.push_str(&self.plan.render(store, &self.vars));
        let q = &self.query;
        out.push_str("project");
        if q.distinct {
            out.push_str(" DISTINCT");
        }
        for v in q.output_vars() {
            out.push_str(&format!(" ?{v}"));
        }
        for (v, order) in &q.order_by {
            let dir = if matches!(order, crate::sparql::ast::Order::Desc) { "DESC" } else { "ASC" };
            out.push_str(&format!(" ORDER-BY({dir} ?{v})"));
        }
        if let Some(offset) = q.offset {
            out.push_str(&format!(" OFFSET {offset}"));
        }
        if let Some(limit) = q.limit {
            out.push_str(&format!(" LIMIT {limit}"));
        }
        out.push('\n');
        out
    }
}

/// Compile a parsed SELECT into a reusable [`PreparedQuery`] bound to the
/// store's current generation.
pub fn prepare_select(store: &RdfStore, query: SelectQuery) -> Result<PreparedQuery, SparqlError> {
    let (vars, plan) = prepare(store, &query)?;
    Ok(PreparedQuery { query, vars, plan, generation: store.generation() })
}

/// Execute a prepared SELECT, skipping parsing and planning. Errors when the
/// store has mutated since preparation (the plan would be unsound).
pub fn evaluate_prepared(
    store: &RdfStore,
    prepared: &PreparedQuery,
) -> Result<(QueryResult, ExecStats), SparqlError> {
    if store.generation() != prepared.generation {
        return Err(SparqlError::eval(format!(
            "stale prepared query: planned at generation {}, store is at {}",
            prepared.generation,
            store.generation()
        )));
    }
    evaluate_with_plan(store, &prepared.query, &prepared.vars, &prepared.plan)
}

/// One operator's share of a profiled execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTiming {
    /// Operator description (`scan ?p <...> ?t`, `filter(late)`, …).
    pub label: String,
    /// Self time: nanoseconds spent in this operator excluding its input.
    pub nanos: u64,
    /// Bindings this operator emitted downstream.
    pub rows: u64,
}

/// Per-operator timing breakdown of one streaming execution, in pipeline
/// order (upstream first), ending with the projection/consumption stage.
/// Self times are derived from strictly nested inclusive measurements, so
/// they always sum to at most [`OpProfile::total_nanos`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// End-to-end execution time of the plan, in nanoseconds.
    pub total_nanos: u64,
    /// Per-operator self times and row counts, upstream first.
    pub ops: Vec<OpTiming>,
}

/// Execute a prepared SELECT with a per-operator profile: every top-level
/// pipeline operator is timed, and the residual (projection, DISTINCT,
/// LIMIT, result materialisation) is reported as a final `project` entry —
/// the raw material for the serving layer's span-tree query profiles.
pub fn evaluate_prepared_profiled(
    store: &RdfStore,
    prepared: &PreparedQuery,
) -> Result<(QueryResult, ExecStats, OpProfile), SparqlError> {
    if store.generation() != prepared.generation {
        return Err(SparqlError::eval(format!(
            "stale prepared query: planned at generation {}, store is at {}",
            prepared.generation,
            store.generation()
        )));
    }
    let vars = &prepared.vars;
    let counters = ExecCounters::default();
    let ctx = ExecCtx { store, vars, counters: &counters };
    let t0 = std::time::Instant::now();
    let (stream, taps) = build_group_stream_profiled(ctx, &prepared.plan, vec![None; vars.len()]);
    let (result, stats) = consume_stream(store, &prepared.query, vars, stream, &counters)?;
    let total_nanos = t0.elapsed().as_nanos() as u64;

    // Taps record inclusive time and nest strictly (each wraps the one
    // before), so consecutive differences are per-operator self times and
    // the residual against the wall clock is the consumption stage.
    let mut ops = Vec::with_capacity(taps.len() + 1);
    let mut prev_incl = 0u64;
    for tap_point in &taps {
        let incl = tap_point.nanos.get();
        ops.push(OpTiming {
            label: tap_point.label.clone(),
            nanos: incl.saturating_sub(prev_incl),
            rows: tap_point.rows.get(),
        });
        prev_incl = incl;
    }
    ops.push(OpTiming {
        label: "project".to_owned(),
        nanos: total_nanos.saturating_sub(prev_incl),
        rows: result.len() as u64,
    });
    Ok((result, stats, OpProfile { total_nanos, ops }))
}

/// Run the streaming pipeline for an already-planned query.
fn evaluate_with_plan(
    store: &RdfStore,
    q: &SelectQuery,
    vars: &VarTable,
    plan: &crate::sparql::plan::GroupPlan,
) -> Result<(QueryResult, ExecStats), SparqlError> {
    let counters = ExecCounters::default();
    let ctx = ExecCtx { store, vars, counters: &counters };
    let stream = build_group_stream(ctx, plan, vec![None; vars.len()]);
    consume_stream(store, q, vars, stream, &counters)
}

/// Drain `stream` through the projection/aggregation/modifier stage shared
/// by the plain and profiled executions.
fn consume_stream<'a>(
    store: &RdfStore,
    q: &SelectQuery,
    vars: &VarTable,
    mut stream: Box<dyn BindingStream + 'a>,
    counters: &ExecCounters,
) -> Result<(QueryResult, ExecStats), SparqlError> {
    let out_vars = q.output_vars();
    let mut emitted = 0u64;

    let rows: Vec<Vec<Option<Term>>> = if has_agg(q) {
        // Aggregation consumes the stream but accumulates incrementally: no
        // binding table is materialised.
        let Projection::Items(items) = &q.projection else { unreachable!() };
        let mut acc = AggAcc::new(items, vars);
        while let Some(b) = stream.next_binding() {
            emitted += 1;
            acc.push(&b);
        }
        let mut rows = vec![acc.finish(store)];
        apply_offset_limit(&mut rows, q);
        rows
    } else if !q.order_by.is_empty() {
        // ORDER BY is blocking: collect, sort on binding slots (so keys need
        // not be projected), then project.
        let mut bindings = Vec::new();
        while let Some(b) = stream.next_binding() {
            emitted += 1;
            bindings.push(b);
        }
        sort_bindings(store, &mut bindings, &q.order_by, vars);
        project_all(store, q, vars, &out_vars, &bindings)
    } else {
        // Fully streaming path: DISTINCT/OFFSET/LIMIT applied per binding,
        // and LIMIT stops pulling (and therefore scanning) early.
        let slots: Vec<Option<usize>> = out_vars.iter().map(|v| vars.get(v)).collect();
        let offset = q.offset.unwrap_or(0);
        let mut seen: FxHashSet<Vec<Option<TermId>>> = FxHashSet::default();
        let mut rows = Vec::new();
        let mut kept = 0usize;
        loop {
            if q.limit.is_some_and(|limit| rows.len() >= limit) {
                break;
            }
            let Some(b) = stream.next_binding() else { break };
            emitted += 1;
            let id_row: Vec<Option<TermId>> = slots.iter().map(|s| s.and_then(|i| b[i])).collect();
            if q.distinct && !seen.insert(id_row.clone()) {
                continue;
            }
            kept += 1;
            if kept <= offset {
                continue;
            }
            rows.push(materialise_row(store, &id_row));
        }
        rows
    };

    let stats =
        ExecStats { triples_scanned: counters.triples_scanned.get(), bindings_emitted: emitted };
    Ok((QueryResult { vars: out_vars, rows }, stats))
}

/// Evaluate a parsed SELECT query on the materialised reference executor.
///
/// Runs the same plan as [`evaluate_select`] but with full binding tables
/// between operators, enumerating solutions in the same order. Kept as the
/// correctness oracle for the streaming pipeline (see the equivalence
/// property test in the conformance suite) and as the microbenchmark
/// baseline; production call sites should use [`evaluate_select`].
pub fn evaluate_select_materialised(
    store: &RdfStore,
    q: &SelectQuery,
) -> Result<QueryResult, SparqlError> {
    let (vars, plan) = prepare(store, q)?;
    let counters = ExecCounters::default();
    let ctx = ExecCtx { store, vars: &vars, counters: &counters };
    let mut bindings = exec_group_materialised(ctx, &plan, vec![None; vars.len()]);
    let out_vars = q.output_vars();

    let rows = if has_agg(q) {
        let Projection::Items(items) = &q.projection else { unreachable!() };
        let mut acc = AggAcc::new(items, &vars);
        for b in &bindings {
            acc.push(b);
        }
        let mut rows = vec![acc.finish(store)];
        apply_offset_limit(&mut rows, q);
        rows
    } else {
        if !q.order_by.is_empty() {
            sort_bindings(store, &mut bindings, &q.order_by, &vars);
        }
        project_all(store, q, &vars, &out_vars, &bindings)
    };
    Ok(QueryResult { vars: out_vars, rows })
}

/// Project bindings to term rows, applying DISTINCT, OFFSET and LIMIT.
fn project_all(
    store: &RdfStore,
    q: &SelectQuery,
    vars: &VarTable,
    out_vars: &[String],
    bindings: &[Binding],
) -> Vec<Vec<Option<Term>>> {
    let slots: Vec<Option<usize>> = out_vars.iter().map(|v| vars.get(v)).collect();
    let mut id_rows: Vec<Vec<Option<TermId>>> =
        bindings.iter().map(|b| slots.iter().map(|s| s.and_then(|i| b[i])).collect()).collect();
    if q.distinct {
        let mut seen: FxHashSet<Vec<Option<TermId>>> = FxHashSet::default();
        id_rows.retain(|row| seen.insert(row.clone()));
    }
    apply_offset_limit(&mut id_rows, q);
    id_rows.iter().map(|row| materialise_row(store, row)).collect()
}

/// Apply the OFFSET/LIMIT solution modifiers (they follow aggregation and
/// projection per the SPARQL processing order).
fn apply_offset_limit<T>(rows: &mut Vec<T>, q: &SelectQuery) {
    let offset = q.offset.unwrap_or(0);
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit);
    }
}

fn materialise_row(store: &RdfStore, row: &[Option<TermId>]) -> Vec<Option<Term>> {
    row.iter().map(|id| id.map(|i| store.resolve(i).clone())).collect()
}

/// Sort bindings by ORDER BY keys resolved against variable slots, so keys
/// that are not projected still order the result.
fn sort_bindings(
    store: &RdfStore,
    bindings: &mut [Binding],
    order_by: &[(String, Order)],
    vars: &VarTable,
) {
    let keys: Vec<(usize, Order)> =
        order_by.iter().filter_map(|(v, ord)| vars.get(v).map(|s| (s, *ord))).collect();
    if keys.is_empty() {
        return;
    }
    bindings.sort_by(|a, b| {
        for &(slot, ord) in &keys {
            let ta = a[slot].map(|id| store.resolve(id));
            let tb = b[slot].map(|id| store.resolve(id));
            let c = cmp_terms(ta, tb);
            let c = if ord == Order::Desc { c.reverse() } else { c };
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Total order over optional terms used by ORDER BY: unbound < numeric <
/// everything else by display string.
fn cmp_terms(a: Option<&Term>, b: Option<&Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => match (x.numeric(), y.numeric()) {
            (Some(nx), Some(ny)) => nx.partial_cmp(&ny).unwrap_or(Ordering::Equal),
            _ => x.to_string().cmp(&y.to_string()),
        },
    }
}

pub(crate) fn collect_vars(group: &GroupPattern, vars: &mut VarTable) {
    for t in &group.triples {
        for v in t.vars() {
            vars.slot(v);
        }
    }
    for f in &group.filters {
        let mut names = Vec::new();
        f.vars(&mut names);
        for v in names {
            vars.slot(&v);
        }
    }
    for opt in &group.optionals {
        collect_vars(opt, vars);
    }
    for sub in &group.subselects {
        for v in sub.output_vars() {
            vars.slot(&v);
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Incremental accumulator for the supported aggregates, fed one binding at
/// a time so the streaming path never stores the binding table.
struct AggAcc {
    slots: Vec<Option<usize>>,
    states: Vec<AggState>,
    first: Option<Binding>,
    total: usize,
}

enum AggState {
    /// A non-aggregated variable alongside aggregates: takes the first
    /// binding's value (no GROUP BY support).
    Var,
    CountAll,
    Count(usize),
    CountDistinct(FxHashSet<TermId>),
}

impl AggAcc {
    fn new(items: &[ProjectionItem], vars: &VarTable) -> Self {
        let slots = items
            .iter()
            .map(|i| match i {
                ProjectionItem::Var(v) => vars.get(v),
                ProjectionItem::Agg { agg: Aggregate::CountVar { var, .. }, .. } => vars.get(var),
                ProjectionItem::Agg { agg: Aggregate::CountAll, .. } => None,
            })
            .collect();
        let states = items
            .iter()
            .map(|i| match i {
                ProjectionItem::Var(_) => AggState::Var,
                ProjectionItem::Agg { agg: Aggregate::CountAll, .. } => AggState::CountAll,
                ProjectionItem::Agg { agg: Aggregate::CountVar { distinct: true, .. }, .. } => {
                    AggState::CountDistinct(FxHashSet::default())
                }
                ProjectionItem::Agg {
                    agg: Aggregate::CountVar { distinct: false, .. }, ..
                } => AggState::Count(0),
            })
            .collect();
        AggAcc { slots, states, first: None, total: 0 }
    }

    fn push(&mut self, b: &Binding) {
        self.total += 1;
        if self.first.is_none() {
            self.first = Some(b.clone());
        }
        for (state, slot) in self.states.iter_mut().zip(&self.slots) {
            let value = slot.and_then(|s| b[s]);
            match state {
                AggState::Count(n) => {
                    if value.is_some() {
                        *n += 1;
                    }
                }
                AggState::CountDistinct(set) => {
                    if let Some(id) = value {
                        set.insert(id);
                    }
                }
                AggState::Var | AggState::CountAll => {}
            }
        }
    }

    fn finish(self, store: &RdfStore) -> Vec<Option<Term>> {
        self.states
            .iter()
            .zip(&self.slots)
            .map(|(state, slot)| match state {
                AggState::Var => self
                    .first
                    .as_ref()
                    .and_then(|b| slot.and_then(|s| b[s]))
                    .map(|id| store.resolve(id).clone()),
                AggState::CountAll => Some(Term::int(self.total as i64)),
                AggState::Count(n) => Some(Term::int(*n as i64)),
                AggState::CountDistinct(set) => Some(Term::int(set.len() as i64)),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Filter expressions
// ---------------------------------------------------------------------------

pub(crate) fn eval_expr(store: &RdfStore, expr: &Expr, b: &Binding, vars: &VarTable) -> bool {
    eval_expr_term(store, expr, b, vars).is_some_and(|v| v.truthy())
}

enum Value {
    Term(Term),
    Bool(bool),
    Unbound,
}

impl Value {
    /// SPARQL effective boolean value (spec §17.2.2): booleans by value,
    /// strings by non-emptiness, numerics by non-zero (and not NaN); IRIs,
    /// blank nodes and unknown datatypes are type errors, treated as false.
    fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Term(t) => effective_boolean_value(t),
            Value::Unbound => false,
        }
    }
}

fn effective_boolean_value(t: &Term) -> bool {
    let Term::Literal { lexical, datatype, lang } = t else {
        // The EBV of an IRI or blank node is a type error.
        return false;
    };
    if lang.is_some() {
        return !lexical.is_empty();
    }
    match datatype.as_deref() {
        Some(xsd::BOOLEAN) => lexical == "true" || lexical == "1",
        Some(xsd::INTEGER) | Some(xsd::DOUBLE) => {
            lexical.parse::<f64>().is_ok_and(|v| v != 0.0 && !v.is_nan())
        }
        // Simple, xsd:string and language-tagged literals: non-emptiness.
        Some(xsd::STRING) | None => !lexical.is_empty(),
        // Any other datatype is a type error.
        Some(_) => false,
    }
}

fn eval_expr_term(store: &RdfStore, expr: &Expr, b: &Binding, vars: &VarTable) -> Option<Value> {
    match expr {
        Expr::Var(v) => {
            let slot = vars.get(v)?;
            match b.get(slot).copied().flatten() {
                Some(id) => Some(Value::Term(store.resolve(id).clone())),
                None => Some(Value::Unbound),
            }
        }
        Expr::Const(t) => Some(Value::Term(t.clone())),
        Expr::Bound(v) => {
            let slot = vars.get(v)?;
            Some(Value::Bool(b.get(slot).copied().flatten().is_some()))
        }
        Expr::Not(e) => Some(Value::Bool(!eval_expr(store, e, b, vars))),
        Expr::And(l, r) => {
            Some(Value::Bool(eval_expr(store, l, b, vars) && eval_expr(store, r, b, vars)))
        }
        Expr::Or(l, r) => {
            Some(Value::Bool(eval_expr(store, l, b, vars) || eval_expr(store, r, b, vars)))
        }
        Expr::Contains(e, needle) => {
            let v = eval_expr_term(store, e, b, vars)?;
            match v {
                Value::Term(t) => {
                    let hay = match &t {
                        Term::Iri(i) => i.as_str(),
                        Term::Literal { lexical, .. } => lexical.as_str(),
                        Term::Blank(l) => l.as_str(),
                    };
                    Some(Value::Bool(hay.contains(needle.as_str())))
                }
                _ => Some(Value::Bool(false)),
            }
        }
        Expr::Eq(l, r) => compare(store, l, r, b, vars, CmpOp::Eq),
        Expr::Ne(l, r) => compare(store, l, r, b, vars, CmpOp::Ne),
        Expr::Lt(l, r) => compare(store, l, r, b, vars, CmpOp::Lt),
        Expr::Le(l, r) => compare(store, l, r, b, vars, CmpOp::Le),
        Expr::Gt(l, r) => compare(store, l, r, b, vars, CmpOp::Gt),
        Expr::Ge(l, r) => compare(store, l, r, b, vars, CmpOp::Ge),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn compare(
    store: &RdfStore,
    l: &Expr,
    r: &Expr,
    b: &Binding,
    vars: &VarTable,
    op: CmpOp,
) -> Option<Value> {
    use std::cmp::Ordering;
    let lv = eval_expr_term(store, l, b, vars)?;
    let rv = eval_expr_term(store, r, b, vars)?;
    let (Value::Term(lt), Value::Term(rt)) = (lv, rv) else {
        // Comparison with an unbound/boolean operand is a type error.
        return Some(Value::Bool(false));
    };
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            // Term (in)equality: numerically when both sides are numeric
            // literals, otherwise exact term identity — so `?lit != <iri>`
            // holds across term kinds.
            let equal = match (lt.numeric(), rt.numeric()) {
                (Some(a), Some(c)) => a == c,
                _ => lt == rt,
            };
            Some(Value::Bool((op == CmpOp::Eq) == equal))
        }
        _ => {
            let ord = match (lt.numeric(), rt.numeric()) {
                (Some(a), Some(c)) => a.partial_cmp(&c)?,
                _ => {
                    // Ordering across different term kinds is a type error;
                    // same-kind terms compare textually.
                    if std::mem::discriminant(&lt) != std::mem::discriminant(&rt) {
                        return Some(Value::Bool(false));
                    }
                    term_text(&lt).cmp(term_text(&rt))
                }
            };
            Some(Value::Bool(match op {
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
            }))
        }
    }
}

fn term_text(t: &Term) -> &str {
    match t {
        Term::Iri(i) => i,
        Term::Literal { lexical, .. } => lexical,
        Term::Blank(l) => l,
    }
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

/// Execute a parsed update.
pub fn execute_update(store: &mut RdfStore, update: &Update) -> Result<UpdateStats, SparqlError> {
    let mut stats = UpdateStats::default();
    match update {
        Update::InsertData(triples) => {
            for tp in triples {
                let (s, p, o) = ground_triple(tp)?;
                if store.insert(s, p, o) {
                    stats.inserted += 1;
                }
            }
        }
        Update::DeleteData(triples) => {
            for tp in triples {
                let (s, p, o) = ground_triple(tp)?;
                if store.remove(&s, &p, &o) {
                    stats.deleted += 1;
                }
            }
        }
        Update::DeleteWhere(triples) => {
            let pattern = GroupPattern { triples: triples.clone(), ..Default::default() };
            let modify = Update::Modify { delete: triples.clone(), insert: vec![], pattern };
            return execute_update(store, &modify);
        }
        Update::Modify { delete, insert, pattern } => {
            let mut vars = VarTable::default();
            collect_vars(pattern, &mut vars);
            for tp in delete.iter().chain(insert) {
                for v in tp.vars() {
                    vars.slot(v);
                }
            }
            let plan = plan_group(store, pattern, &vars, &FxHashSet::default())?;
            let counters = ExecCounters::default();
            let ctx = ExecCtx { store, vars: &vars, counters: &counters };
            let bindings = exec_group_materialised(ctx, &plan, vec![None; vars.len()]);
            let mut to_delete = Vec::new();
            let mut to_insert = Vec::new();
            for b in &bindings {
                for tp in delete {
                    if let Some(t) = instantiate(store, tp, b, &vars) {
                        to_delete.push(t);
                    }
                }
                for tp in insert {
                    if let Some(t) = instantiate(store, tp, b, &vars) {
                        to_insert.push(t);
                    }
                }
            }
            for (s, p, o) in to_delete {
                if store.remove(&s, &p, &o) {
                    stats.deleted += 1;
                }
            }
            for (s, p, o) in to_insert {
                if store.insert(s, p, o) {
                    stats.inserted += 1;
                }
            }
        }
    }
    Ok(stats)
}

fn ground_triple(tp: &TriplePattern) -> Result<(Term, Term, Term), SparqlError> {
    let get = |t: &TermPattern| -> Result<Term, SparqlError> {
        t.as_ground().cloned().ok_or_else(|| SparqlError::eval("variable in ground data template"))
    };
    Ok((get(&tp.s)?, get(&tp.p)?, get(&tp.o)?))
}

fn instantiate(
    store: &RdfStore,
    tp: &TriplePattern,
    b: &Binding,
    vars: &VarTable,
) -> Option<(Term, Term, Term)> {
    let get = |t: &TermPattern| -> Option<Term> {
        match t {
            TermPattern::Ground(term) => Some(term.clone()),
            TermPattern::Var(v) => {
                let slot = vars.get(v)?;
                b.get(slot).copied().flatten().map(|id| store.resolve(id).clone())
            }
        }
    };
    Some((get(&tp.s)?, get(&tp.p)?, get(&tp.o)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_papers() -> RdfStore {
        let mut st = RdfStore::new();
        let run = |st: &mut RdfStore, q: &str| execute(st, q).unwrap();
        run(
            &mut st,
            r#"PREFIX x: <http://x/>
               INSERT DATA {
                 x:p1 a x:Publication . x:p1 x:title "P one" . x:p1 x:year 2020 .
                 x:p2 a x:Publication . x:p2 x:title "P two" . x:p2 x:year 2022 .
                 x:p3 a x:Publication . x:p3 x:title "P three" . x:p3 x:year 2023 .
                 x:p1 x:cites x:p2 . x:p2 x:cites x:p3 .
                 x:a1 a x:Author . x:a1 x:wrote x:p1 . x:a1 x:name "Ada" .
               }"#,
        );
        st
    }

    /// Run one query on both executors, asserting they agree exactly.
    fn query_both(st: &RdfStore, text: &str) -> QueryResult {
        let q = crate::sparql::parser::parse_select(text).unwrap();
        let streaming = evaluate_select(st, &q).unwrap();
        let materialised = evaluate_select_materialised(st, &q).unwrap();
        assert_eq!(streaming, materialised, "executors disagree on {text}");
        streaming
    }

    #[test]
    fn bgp_join_two_patterns() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?t WHERE { ?p a x:Publication . ?p x:title ?t }",
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn explain_renders_every_operator_in_execution_order() {
        let st = store_with_papers();
        let text = "PREFIX x: <http://x/> SELECT DISTINCT ?p ?t ?q WHERE {
            ?p a x:Publication . ?p x:title ?t .
            OPTIONAL { ?p x:cites ?q } .
            { SELECT ?p WHERE { ?p x:year ?y . FILTER(?y > 2019) } } .
            FILTER(CONTAINS(?t, \"P\")) } LIMIT 5";
        let q = crate::sparql::parser::parse_select(text).unwrap();
        let prepared = prepare_select(&st, q).unwrap();
        let explain = prepared.explain(&st);
        let lines: Vec<&str> = explain.lines().collect();
        // Two required scans with estimates, then subselect, optional
        // (indented child scan), late filter, and the projection footer.
        assert_eq!(lines.iter().filter(|l| l.trim_start().starts_with("scan ")).count(), 3);
        assert!(explain.contains("(est "), "estimates missing:\n{explain}");
        assert!(explain.contains("subselect join [?p] (3 rows materialised)"), "{explain}");
        assert!(lines.contains(&"optional"), "{explain}");
        assert!(
            lines.iter().any(|l| l.starts_with("  scan ") && l.contains("<http://x/cites>")),
            "optional scan not indented:\n{explain}"
        );
        // The CONTAINS filter is pushed down to the scan binding ?t.
        assert!(explain.contains("  filter CONTAINS(?t, \"P\")"), "{explain}");
        assert_eq!(*lines.last().unwrap(), "project DISTINCT ?p ?t ?q LIMIT 5");
        // A fresh plan carries no staleness banner...
        assert!(!explain.contains("-- plan compiled"), "{explain}");
        // ...but a store that moved on renders one.
        let mut st = st;
        execute(&mut st, "INSERT DATA { <http://x/p9> <http://x/year> 2024 }").unwrap();
        assert!(prepared.explain(&st).starts_with("-- plan compiled at generation "));
    }

    #[test]
    fn prepared_query_reuses_plan_and_matches_fresh_evaluation() {
        let st = store_with_papers();
        let text = "PREFIX x: <http://x/> SELECT ?t WHERE { ?p a x:Publication . ?p x:title ?t }";
        let q = crate::sparql::parser::parse_select(text).unwrap();
        let prepared = prepare_select(&st, q.clone()).unwrap();
        assert_eq!(prepared.generation(), st.generation());
        assert_eq!(prepared.n_steps(), 2);
        let fresh = evaluate_select(&st, &q).unwrap();
        for _ in 0..3 {
            let (result, _) = evaluate_prepared(&st, &prepared).unwrap();
            assert_eq!(result, fresh);
        }
    }

    #[test]
    fn profiled_execution_matches_plain_and_times_nest() {
        let st = store_with_papers();
        let text = "PREFIX x: <http://x/> SELECT ?p ?q ?t WHERE {
            ?p a x:Publication . ?p x:title ?t .
            OPTIONAL { ?p x:cites ?q } . FILTER(CONTAINS(?t, \"P\")) }";
        let q = crate::sparql::parser::parse_select(text).unwrap();
        let prepared = prepare_select(&st, q.clone()).unwrap();
        let (plain, plain_stats) = evaluate_prepared(&st, &prepared).unwrap();
        let (profiled, stats, profile) = evaluate_prepared_profiled(&st, &prepared).unwrap();
        assert_eq!(profiled, plain, "profiling must not change results");
        assert_eq!(stats, plain_stats, "profiling must not change counters");

        // Two scans, one optional, one late filter, plus the project stage.
        let labels: Vec<&str> = profile.ops.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels.iter().filter(|l| l.starts_with("scan ")).count(), 2, "{labels:?}");
        assert!(labels.contains(&"optional"), "{labels:?}");
        assert_eq!(labels.last(), Some(&"project"));
        assert!(labels.iter().any(|l| l.contains("?p")), "{labels:?}");

        // Self times nest: their sum never exceeds the end-to-end time.
        let self_sum: u64 = profile.ops.iter().map(|o| o.nanos).sum();
        assert!(
            self_sum <= profile.total_nanos,
            "self times {self_sum} exceed total {}",
            profile.total_nanos
        );
        // The last pipeline operator emitted exactly the consumed bindings,
        // and the project stage reports the result rows.
        let last_op = &profile.ops[profile.ops.len() - 2];
        assert_eq!(last_op.rows, stats.bindings_emitted);
        assert_eq!(profile.ops.last().unwrap().rows, plain.len() as u64);
    }

    #[test]
    fn profiled_execution_rejects_stale_generation() {
        let mut st = store_with_papers();
        let q = crate::sparql::parser::parse_select("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        let prepared = prepare_select(&st, q).unwrap();
        st.insert(Term::iri("http://x/new2"), Term::iri("http://x/p"), Term::iri("http://x/o"));
        assert!(evaluate_prepared_profiled(&st, &prepared).is_err());
    }

    #[test]
    fn prepared_query_rejects_stale_generation() {
        let mut st = store_with_papers();
        let q = crate::sparql::parser::parse_select("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        let prepared = prepare_select(&st, q).unwrap();
        st.insert(Term::iri("http://x/new"), Term::iri("http://x/p"), Term::iri("http://x/o"));
        let err = evaluate_prepared(&st, &prepared).unwrap_err();
        assert!(err.to_string().contains("stale"), "unexpected error: {err}");
    }

    #[test]
    fn filter_numeric() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:year ?y . FILTER(?y > 2021) }",
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn filter_and_or_not() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:year ?y . FILTER(?y = 2020 || ?y = 2023) }",
        );
        assert_eq!(r.len(), 2);
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:year ?y . FILTER(!(?y = 2020)) }",
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn join_chain_and_shared_vars() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?a ?t WHERE {
               ?a x:wrote ?p . ?p x:title ?t . ?p x:cites ?q }",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1].as_ref().unwrap().as_literal(), Some("P one"));
    }

    #[test]
    fn optional_left_join() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p ?q WHERE {
               ?p a x:Publication . OPTIONAL { ?p x:cites ?q } } ORDER BY ?p",
        );
        assert_eq!(r.len(), 3);
        // p3 cites nothing -> unbound ?q.
        let unbound = r.rows.iter().filter(|row| row[1].is_none()).count();
        assert_eq!(unbound, 1);
    }

    #[test]
    fn distinct_and_order_limit() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT DISTINCT ?y WHERE { ?p x:year ?y } ORDER BY DESC(?y) LIMIT 2",
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_int(), Some(2023));
    }

    #[test]
    fn count_aggregates() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT (COUNT(*) AS ?n) WHERE { ?p a x:Publication }",
        );
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_int(), Some(3));
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?p x:cites ?q }",
        );
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_int(), Some(2));
    }

    #[test]
    fn subselect_joins_on_shared_vars() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p ?t WHERE {
               ?p x:title ?t .
               { SELECT ?p WHERE { ?p x:cites ?q } } }",
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn contains_filter() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:title ?t . FILTER(CONTAINS(?t, \"two\")) }",
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn modify_insert_where() {
        let mut st = store_with_papers();
        let out = execute(
            &mut st,
            "PREFIX x: <http://x/> INSERT { ?p x:flag \"old\" } WHERE { ?p x:year ?y . FILTER(?y < 2022) }",
        )
        .unwrap();
        assert_eq!(out, ExecOutcome::Updated(UpdateStats { inserted: 1, deleted: 0 }));
    }

    #[test]
    fn delete_where_removes_matching() {
        let mut st = store_with_papers();
        let before = st.len();
        let out = execute(&mut st, "PREFIX x: <http://x/> DELETE WHERE { x:p1 ?p ?o }").unwrap();
        match out {
            ExecOutcome::Updated(s) => assert_eq!(s.deleted, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(st.len(), before - 4);
    }

    #[test]
    fn unknown_ground_term_yields_empty() {
        let st = store_with_papers();
        let r = query_both(&st, "SELECT ?s WHERE { ?s <http://nope/p> ?o }");
        assert!(r.is_empty());
    }

    #[test]
    fn cartesian_product_when_disjoint() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p ?a WHERE { ?p a x:Publication . ?a a x:Author }",
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn result_table_rendering() {
        let st = store_with_papers();
        let r =
            query_both(&st, "PREFIX x: <http://x/> SELECT ?t WHERE { <http://x/p1> x:title ?t }");
        let table = r.to_table();
        assert!(table.contains("?t"));
        assert!(table.contains("P one"));
    }

    // -- regression tests for the SPARQL-semantics fixes --------------------

    #[test]
    fn ebv_follows_the_spec() {
        let mut st = RdfStore::new();
        execute(
            &mut st,
            r#"PREFIX x: <http://x/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               INSERT DATA {
                 x:empty x:v "" . x:str x:v "yes" .
                 x:f x:v "false"^^xsd:boolean . x:t x:v "true"^^xsd:boolean .
                 x:zero x:v 0 . x:three x:v 3 . x:iri x:v x:other .
               }"#,
        )
        .unwrap();
        let r = query_both(&st, "PREFIX x: <http://x/> SELECT ?s WHERE { ?s x:v ?o . FILTER(?o) }");
        let mut names: Vec<String> =
            r.rows.iter().map(|row| row[0].as_ref().unwrap().to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["<http://x/str>", "<http://x/t>", "<http://x/three>"]);
    }

    #[test]
    fn ne_holds_across_term_kinds() {
        let mut st = RdfStore::new();
        execute(&mut st, r#"PREFIX x: <http://x/> INSERT DATA { x:a x:p x:b . x:a x:p "lit" }"#)
            .unwrap();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?o WHERE { x:a x:p ?o . FILTER(?o != x:b) }",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_literal(), Some("lit"));
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?o WHERE { x:a x:p ?o . FILTER(?o = x:b) }",
        );
        assert_eq!(r.len(), 1);
        assert!(r.rows[0][0].as_ref().unwrap().is_iri());
    }

    #[test]
    fn optional_subselect_is_evaluated() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p ?q WHERE {
               ?p a x:Publication .
               OPTIONAL { { SELECT ?p ?q WHERE { ?p x:cites ?q } } } } ORDER BY ?p",
        );
        assert_eq!(r.len(), 3);
        // p1 cites p2, p2 cites p3, p3 cites nothing.
        assert_eq!(r.rows[0][1].as_ref().unwrap().as_iri(), Some("http://x/p2"));
        assert_eq!(r.rows[1][1].as_ref().unwrap().as_iri(), Some("http://x/p3"));
        assert!(r.rows[2][1].is_none());
    }

    #[test]
    fn order_by_on_unprojected_var() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:year ?y } ORDER BY DESC(?y)",
        );
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_iri(), Some("http://x/p3"));
        assert_eq!(r.rows[2][0].as_ref().unwrap().as_iri(), Some("http://x/p1"));
    }

    #[test]
    fn limit_short_circuits_the_scan() {
        let mut st = RdfStore::new();
        for i in 0..1000 {
            st.insert(Term::iri(format!("http://x/s{i}")), Term::iri("http://x/p"), Term::int(i));
        }
        let (r, stats) =
            query_with_stats(&st, "SELECT ?s ?o WHERE { ?s <http://x/p> ?o } LIMIT 5").unwrap();
        assert_eq!(r.len(), 5);
        assert!(
            stats.triples_scanned <= 5,
            "LIMIT 5 should scan at most 5 triples, scanned {}",
            stats.triples_scanned
        );
        // The same query without LIMIT walks the whole index.
        let (_, full) = query_with_stats(&st, "SELECT ?s ?o WHERE { ?s <http://x/p> ?o }").unwrap();
        assert_eq!(full.triples_scanned, 1000);
    }

    #[test]
    fn aggregates_respect_offset_and_limit() {
        let st = store_with_papers();
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT (COUNT(*) AS ?n) WHERE { ?p a x:Publication } LIMIT 0",
        );
        assert!(r.is_empty());
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT (COUNT(*) AS ?n) WHERE { ?p a x:Publication } OFFSET 1",
        );
        assert!(r.is_empty());
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT (COUNT(*) AS ?n) WHERE { ?p a x:Publication } LIMIT 1",
        );
        assert_eq!(r.rows[0][0].as_ref().unwrap().as_int(), Some(3));
    }

    #[test]
    fn subselect_unbound_value_is_join_compatible() {
        let st = store_with_papers();
        // The sub-select projects ?q but never binds it (the OPTIONAL cannot
        // match); outer rows keep their own ?q bindings instead of being
        // dropped.
        let r = query_both(
            &st,
            "PREFIX x: <http://x/> SELECT ?p ?q WHERE {
               ?p x:cites ?q .
               { SELECT ?p ?q WHERE { ?p x:title ?t . OPTIONAL { ?p x:nope ?q } } } }",
        );
        assert_eq!(r.len(), 2);
        assert!(r.rows.iter().all(|row| row[1].is_some()));
    }

    #[test]
    fn limit_zero_yields_nothing() {
        let st = store_with_papers();
        let (r, stats) = query_with_stats(&st, "SELECT ?s WHERE { ?s ?p ?o } LIMIT 0").unwrap();
        assert!(r.is_empty());
        assert_eq!(stats.triples_scanned, 0);
    }
}
