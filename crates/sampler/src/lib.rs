//! # kgnet-sampler
//!
//! KGNet's meta-sampler (paper §IV.B.2): given a GML task, extract the
//! task-specific subgraph `KG'` from the data KG. The scope of the
//! extraction is controlled by two parameters:
//!
//! * direction `d` — `1` follows only outgoing edges of the frontier,
//!   `2` follows both directions;
//! * hops `h` — how many hops from the target nodes are kept.
//!
//! The paper evaluates the four combinations `d ∈ {1,2} × h ∈ {1,2}` and
//! reports `d1h1` best for node classification and `d2h1` best for link
//! prediction; [`SamplingScope::default_for`] encodes those defaults.
//!
//! The extraction is exactly what a SPARQL `CONSTRUCT` over the endpoint
//! would return (the paper calls it "SPARQL-based meta-sampling"); here it
//! runs as index scans against the `kgnet-rdf` store.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rustc_hash::FxHashSet;

use kgnet_graph::GmlTask;
use kgnet_rdf::term::RDF_TYPE;
use kgnet_rdf::{RdfStore, Term, TermId};

/// Traversal direction of the meta-sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `d = 1`: outgoing edges only.
    Outgoing,
    /// `d = 2`: outgoing and incoming edges.
    Bidirectional,
}

/// The `(d, h)` scope of a meta-sampling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplingScope {
    /// Traversal direction.
    pub direction: Direction,
    /// Number of hops from the target nodes (the paper uses 1 or 2).
    pub hops: u8,
}

impl SamplingScope {
    /// `d1h1` — outgoing, one hop.
    pub const D1H1: SamplingScope = SamplingScope { direction: Direction::Outgoing, hops: 1 };
    /// `d1h2` — outgoing, two hops.
    pub const D1H2: SamplingScope = SamplingScope { direction: Direction::Outgoing, hops: 2 };
    /// `d2h1` — bidirectional, one hop.
    pub const D2H1: SamplingScope = SamplingScope { direction: Direction::Bidirectional, hops: 1 };
    /// `d2h2` — bidirectional, two hops.
    pub const D2H2: SamplingScope = SamplingScope { direction: Direction::Bidirectional, hops: 2 };

    /// All four scopes evaluated by the paper.
    pub const ALL: [SamplingScope; 4] =
        [SamplingScope::D1H1, SamplingScope::D1H2, SamplingScope::D2H1, SamplingScope::D2H2];

    /// The paper's best scope per task kind: `d1h1` for node
    /// classification/similarity, `d2h1` for link prediction.
    pub fn default_for(task: &GmlTask) -> SamplingScope {
        match task {
            GmlTask::NodeClassification(_) | GmlTask::EntitySimilarity { .. } => Self::D1H1,
            GmlTask::LinkPrediction(_) => Self::D2H1,
        }
    }

    /// Parse a scope name like `"d2h1"` (case-insensitive); `None` for
    /// anything that is not one of the paper's four scopes.
    pub fn parse(name: &str) -> Option<SamplingScope> {
        match name.to_ascii_lowercase().as_str() {
            "d1h1" => Some(Self::D1H1),
            "d1h2" => Some(Self::D1H2),
            "d2h1" => Some(Self::D2H1),
            "d2h2" => Some(Self::D2H2),
            _ => None,
        }
    }

    /// Short name, e.g. `d1h1`.
    pub fn name(&self) -> String {
        let d = match self.direction {
            Direction::Outgoing => 1,
            Direction::Bidirectional => 2,
        };
        format!("d{d}h{}", self.hops)
    }
}

impl std::fmt::Display for SamplingScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Outcome of a meta-sampling run.
pub struct SampledSubgraph {
    /// The extracted task-specific subgraph `KG'`.
    pub store: RdfStore,
    /// Number of distinct nodes reached.
    pub n_nodes: usize,
    /// The scope used.
    pub scope: SamplingScope,
}

/// Extract the task-specific subgraph for explicit seed nodes.
///
/// The result contains every triple on a path of at most `scope.hops` hops
/// from a seed (following `scope.direction`), plus the `rdf:type` triple of
/// every included node (the transformer needs node types). Literal-object
/// triples of visited subjects are preserved (the transformer strips them,
/// mirroring the paper's pipeline).
pub fn meta_sample(store: &RdfStore, seeds: &[TermId], scope: SamplingScope) -> SampledSubgraph {
    let rdf_type = store.lookup(&Term::iri(RDF_TYPE));
    let mut out = RdfStore::new();
    let mut visited: FxHashSet<TermId> = seeds.iter().copied().collect();
    let mut frontier: Vec<TermId> = seeds.to_vec();
    let mut included: FxHashSet<TermId> = visited.clone();
    let mut scratch = Vec::new();

    for _hop in 0..scope.hops {
        let mut next: Vec<TermId> = Vec::new();
        for &node in &frontier {
            // Outgoing triples.
            scratch.clear();
            store.scan(Some(node), None, None, &mut scratch);
            for &(s, p, o) in &scratch {
                if Some(p) == rdf_type {
                    continue; // types are added for all included nodes below
                }
                copy_triple(store, &mut out, s, p, o);
                included.insert(o);
                if !store.resolve(o).is_literal() && visited.insert(o) {
                    next.push(o);
                }
            }
            // Incoming triples for bidirectional scopes.
            if scope.direction == Direction::Bidirectional {
                scratch.clear();
                store.scan(None, None, Some(node), &mut scratch);
                for &(s, p, o) in &scratch {
                    if Some(p) == rdf_type {
                        continue;
                    }
                    copy_triple(store, &mut out, s, p, o);
                    included.insert(s);
                    if visited.insert(s) {
                        next.push(s);
                    }
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    // Type triples for every included node.
    if let Some(rt) = rdf_type {
        for &node in &included {
            scratch.clear();
            store.scan(Some(node), Some(rt), None, &mut scratch);
            for &(s, p, o) in &scratch {
                copy_triple(store, &mut out, s, p, o);
            }
        }
    }

    SampledSubgraph { store: out, n_nodes: included.len(), scope }
}

/// Extract the task-specific subgraph for a GML task: seeds are the
/// instances of the task's target (NC/similarity) or source (LP) type.
pub fn meta_sample_task(store: &RdfStore, task: &GmlTask, scope: SamplingScope) -> SampledSubgraph {
    let seeds = task_seeds(store, task);
    meta_sample(store, &seeds, scope)
}

/// The seed nodes of a task.
pub fn task_seeds(store: &RdfStore, task: &GmlTask) -> Vec<TermId> {
    match task {
        GmlTask::NodeClassification(t) => store.subjects_of_type(&t.target_type),
        GmlTask::LinkPrediction(t) => store.subjects_of_type(&t.source_type),
        GmlTask::EntitySimilarity { target_type } => store.subjects_of_type(target_type),
    }
}

fn copy_triple(src: &RdfStore, dst: &mut RdfStore, s: TermId, p: TermId, o: TermId) {
    dst.insert(src.resolve(s).clone(), src.resolve(p).clone(), src.resolve(o).clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_graph::NcTask;
    use kgnet_rdf::execute;

    fn chain_store() -> RdfStore {
        // t (target) -> a -> b -> c, plus x -> t (incoming), types on all.
        let mut st = RdfStore::new();
        execute(
            &mut st,
            r#"PREFIX x: <http://x/>
            INSERT DATA {
              x:t a x:Target . x:a a x:A . x:b a x:B . x:c a x:C . x:x a x:X .
              x:t x:p x:a . x:a x:p x:b . x:b x:p x:c . x:x x:q x:t .
              x:t x:label "lit" .
            }"#,
        )
        .unwrap();
        st
    }

    fn seeds(st: &RdfStore) -> Vec<TermId> {
        st.subjects_of_type("http://x/Target")
    }

    fn has(st: &RdfStore, s: &str, p: &str, o: &str) -> bool {
        st.contains(
            &Term::iri(format!("http://x/{s}")),
            &Term::iri(format!("http://x/{p}")),
            &Term::iri(format!("http://x/{o}")),
        )
    }

    #[test]
    fn d1h1_keeps_only_outgoing_one_hop() {
        let st = chain_store();
        let sub = meta_sample(&st, &seeds(&st), SamplingScope::D1H1).store;
        assert!(has(&sub, "t", "p", "a"));
        assert!(!has(&sub, "a", "p", "b"));
        assert!(!has(&sub, "x", "q", "t"));
    }

    #[test]
    fn d1h2_reaches_two_hops_out() {
        let st = chain_store();
        let sub = meta_sample(&st, &seeds(&st), SamplingScope::D1H2).store;
        assert!(has(&sub, "t", "p", "a"));
        assert!(has(&sub, "a", "p", "b"));
        assert!(!has(&sub, "b", "p", "c"));
    }

    #[test]
    fn d2h1_includes_incoming() {
        let st = chain_store();
        let sub = meta_sample(&st, &seeds(&st), SamplingScope::D2H1).store;
        assert!(has(&sub, "t", "p", "a"));
        assert!(has(&sub, "x", "q", "t"));
        assert!(!has(&sub, "a", "p", "b"));
    }

    #[test]
    fn types_of_included_nodes_are_preserved() {
        let st = chain_store();
        let sub = meta_sample(&st, &seeds(&st), SamplingScope::D1H1).store;
        assert!(sub.contains(
            &Term::iri("http://x/a"),
            &Term::iri(RDF_TYPE),
            &Term::iri("http://x/A")
        ));
        assert!(sub.contains(
            &Term::iri("http://x/t"),
            &Term::iri(RDF_TYPE),
            &Term::iri("http://x/Target")
        ));
    }

    #[test]
    fn literals_are_kept_for_subjects_in_scope() {
        let st = chain_store();
        let sub = meta_sample(&st, &seeds(&st), SamplingScope::D1H1).store;
        assert!(sub.contains(
            &Term::iri("http://x/t"),
            &Term::iri("http://x/label"),
            &Term::str("lit")
        ));
    }

    #[test]
    fn subgraph_is_never_larger_than_kg() {
        let st = chain_store();
        for scope in SamplingScope::ALL {
            let sub = meta_sample(&st, &seeds(&st), scope).store;
            assert!(sub.len() <= st.len(), "{scope} produced a larger graph");
        }
    }

    #[test]
    fn default_scope_per_task_kind() {
        let nc = GmlTask::NodeClassification(NcTask {
            target_type: "T".into(),
            label_predicate: "L".into(),
        });
        assert_eq!(SamplingScope::default_for(&nc), SamplingScope::D1H1);
        assert_eq!(SamplingScope::D2H1.name(), "d2h1");
    }

    #[test]
    fn task_sampling_uses_target_type_seeds() {
        let st = chain_store();
        let task = GmlTask::NodeClassification(NcTask {
            target_type: "http://x/Target".into(),
            label_predicate: "http://x/none".into(),
        });
        let sub = meta_sample_task(&st, &task, SamplingScope::D1H1);
        assert!(sub.n_nodes >= 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every triple of the subgraph exists in the source KG (closure
        /// soundness), for random small graphs; widening the scope never
        /// shrinks the subgraph.
        #[test]
        fn subgraph_triples_come_from_source(
            edges in proptest::collection::vec((0u32..12, 0u32..3, 0u32..12), 1..60),
            n_seeds in 1usize..4,
            scope_idx in 0usize..4,
        ) {
            let mut st = RdfStore::new();
            for &(s, p, o) in &edges {
                st.insert(
                    Term::iri(format!("http://n/{s}")),
                    Term::iri(format!("http://p/{p}")),
                    Term::iri(format!("http://n/{o}")),
                );
            }
            let seeds: Vec<TermId> = (0..n_seeds)
                .filter_map(|i| st.lookup(&Term::iri(format!("http://n/{i}"))))
                .collect();
            prop_assume!(!seeds.is_empty());
            let scope = SamplingScope::ALL[scope_idx];
            let sub = meta_sample(&st, &seeds, scope).store;
            for (s, p, o) in sub.iter() {
                let (s, p, o) = (sub.resolve(s).clone(), sub.resolve(p).clone(), sub.resolve(o).clone());
                prop_assert!(st.contains(&s, &p, &o));
            }
            let wider = meta_sample(&st, &seeds, SamplingScope::D2H2).store;
            prop_assert!(wider.len() >= sub.len());
        }
    }
}
