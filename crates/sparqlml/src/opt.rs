//! SPARQL-ML query optimization (paper §IV.B.3).
//!
//! Two integer programs, both solved exactly with `kgnet-gmlaas`'s branch
//! and bound:
//!
//! 1. **Model selection** — for each user-defined predicate pick exactly one
//!    model from its KGMeta candidates, maximising total accuracy subject to
//!    an optional bound on summed inference time (the "near-optimal GML
//!    model that achieves high accuracy and low inference time").
//! 2. **Plan selection** — per predicate choose between the Fig. 11
//!    per-binding plan (`|bindings|` HTTP calls, no dictionary) and the
//!    Fig. 12 dictionary plan (1 HTTP call, a dictionary of `cardinality`
//!    entries), minimising total HTTP calls subject to an optional
//!    dictionary-memory cap.

use kgnet_gmlaas::ip::{solve, IntegerProgram};

use crate::kgmeta::ModelInfo;

/// Chosen execution plan for one user-defined predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewritePlan {
    /// Fig. 11: one UDF/HTTP call per distinct binding.
    PerBinding,
    /// Fig. 12: one call building a dictionary, then local lookups.
    Dictionary,
}

/// Select one model per predicate. `candidates[p]` lists the KGMeta models
/// admissible for predicate `p` (already filtered). Returns indexes into
/// each candidate list, or `None` when a predicate has no candidate or the
/// inference-time bound is unsatisfiable.
pub fn select_models(
    candidates: &[Vec<ModelInfo>],
    max_total_inference_ms: Option<f64>,
) -> Option<Vec<usize>> {
    if candidates.iter().any(Vec::is_empty) {
        return None;
    }
    // Variables: one binary per (predicate, model).
    let layout: Vec<(usize, usize)> = candidates
        .iter()
        .enumerate()
        .flat_map(|(p, models)| (0..models.len()).map(move |m| (p, m)))
        .collect();
    let n = layout.len();
    let mut ip = IntegerProgram::new(n);
    for (i, &(p, m)) in layout.iter().enumerate() {
        ip.objective[i] = candidates[p][m].accuracy;
    }
    for (p, _) in candidates.iter().enumerate() {
        let row: Vec<f64> = layout.iter().map(|&(pp, _)| if pp == p { 1.0 } else { 0.0 }).collect();
        ip.add_eq(row, 1.0);
    }
    if let Some(cap) = max_total_inference_ms {
        let row: Vec<f64> =
            layout.iter().map(|&(p, m)| candidates[p][m].inference_time_ms).collect();
        ip.add_le(row, cap);
    }
    let sol = solve(&ip)?;
    let mut chosen = vec![0usize; candidates.len()];
    for (i, &(p, m)) in layout.iter().enumerate() {
        if sol.assignment[i] {
            chosen[p] = m;
        }
    }
    Some(chosen)
}

/// Inputs to plan selection for one predicate.
#[derive(Debug, Clone, Copy)]
pub struct PlanInputs {
    /// Distinct bindings of the predicate's subject variable in the data
    /// (the `|?papers|` of the paper's example).
    pub bindings: usize,
    /// The chosen model's prediction cardinality.
    pub model_cardinality: usize,
    /// Estimated bytes per dictionary entry.
    pub entry_bytes: usize,
}

/// Choose a plan per predicate, minimising total HTTP calls subject to an
/// optional cap on total dictionary bytes. Falls back to per-binding when
/// the dictionary does not fit.
pub fn select_plans(inputs: &[PlanInputs], dict_bytes_cap: Option<usize>) -> Vec<RewritePlan> {
    let n = inputs.len();
    if n == 0 {
        return vec![];
    }
    // One binary per predicate: x = 1 -> Dictionary, x = 0 -> PerBinding.
    // Calls = Σ (bindings - (bindings - 1) x); maximising saved calls
    // (bindings - 1 per dictionary choice) minimises total calls.
    let mut ip = IntegerProgram::new(n);
    for (i, inp) in inputs.iter().enumerate() {
        ip.objective[i] = inp.bindings.saturating_sub(1) as f64;
    }
    if let Some(cap) = dict_bytes_cap {
        ip.add_le(
            inputs.iter().map(|i| (i.model_cardinality * i.entry_bytes) as f64).collect(),
            cap as f64,
        );
    }
    match solve(&ip) {
        Some(sol) => sol
            .assignment
            .iter()
            .map(|&x| if x { RewritePlan::Dictionary } else { RewritePlan::PerBinding })
            .collect(),
        None => vec![RewritePlan::PerBinding; n],
    }
}

/// HTTP calls a plan will issue.
pub fn plan_calls(plan: RewritePlan, bindings: usize) -> usize {
    match plan {
        RewritePlan::PerBinding => bindings,
        RewritePlan::Dictionary => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(uri: &str, accuracy: f64, ms: f64) -> ModelInfo {
        ModelInfo {
            uri: uri.into(),
            accuracy,
            inference_time_ms: ms,
            cardinality: 100,
            method: "GCN".into(),
        }
    }

    #[test]
    fn picks_most_accurate_without_bound() {
        let candidates = vec![vec![model("a", 0.7, 1.0), model("b", 0.9, 5.0)]];
        let chosen = select_models(&candidates, None).unwrap();
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn inference_bound_forces_faster_model() {
        let candidates =
            vec![vec![model("a", 0.7, 1.0), model("b", 0.9, 5.0)], vec![model("c", 0.8, 1.0)]];
        // Total budget 3 ms: b (5ms) + c (1ms) violates; must use a + c.
        let chosen = select_models(&candidates, Some(3.0)).unwrap();
        assert_eq!(chosen, vec![0, 0]);
    }

    #[test]
    fn empty_candidate_list_is_none() {
        assert!(select_models(&[vec![]], None).is_none());
        let candidates = vec![vec![model("a", 0.7, 10.0)]];
        assert!(select_models(&candidates, Some(1.0)).is_none());
    }

    #[test]
    fn dictionary_wins_for_many_bindings() {
        let plans = select_plans(
            &[PlanInputs { bindings: 1000, model_cardinality: 1000, entry_bytes: 64 }],
            None,
        );
        assert_eq!(plans, vec![RewritePlan::Dictionary]);
        assert_eq!(plan_calls(plans[0], 1000), 1);
    }

    #[test]
    fn per_binding_wins_for_single_binding() {
        let plans = select_plans(
            &[PlanInputs { bindings: 1, model_cardinality: 100_000, entry_bytes: 64 }],
            None,
        );
        // Saving is zero, so the solver is indifferent; calls must be 1
        // either way.
        assert_eq!(plan_calls(plans[0], 1), 1);
    }

    #[test]
    fn dictionary_cap_forces_per_binding() {
        let plans = select_plans(
            &[
                PlanInputs { bindings: 500, model_cardinality: 1_000, entry_bytes: 100 },
                PlanInputs { bindings: 400, model_cardinality: 2_000, entry_bytes: 100 },
            ],
            Some(150_000),
        );
        // Only one dictionary fits under the cap; the solver keeps the one
        // saving more calls (the first saves 499 < 399? no: 499 > 399, but
        // its dict is 100k <= 150k while both together are 300k).
        assert_eq!(plans[0], RewritePlan::Dictionary);
        assert_eq!(plans[1], RewritePlan::PerBinding);
    }
}
