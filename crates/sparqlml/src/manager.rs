//! The Query Manager (paper Fig. 3): end-to-end SPARQL-ML execution.
//!
//! `INSERT`/`TrainGML` requests run the full KGNet pipeline — meta-sampling
//! of `KG'`, budget-constrained training via GMLaaS, KGMeta registration.
//! `SELECT` queries are optimized (model selection + plan selection integer
//! programs), rewritten, executed against the RDF store, and their
//! user-defined predicates are evaluated through the inference service's
//! JSON boundary. `DELETE` removes models and their KGMeta metadata.

use rustc_hash::{FxHashMap, FxHashSet};

use kgnet_gml::config::{GmlMethodKind, GnnConfig};
use kgnet_gmlaas::{
    InferenceRequest, InferenceResponse, InferenceService, ModelArtifact, ModelStore, ServiceError,
    TaskKind, TrainError, TrainRequest, TrainingManager,
};
use kgnet_rdf::sparql::eval::{evaluate_select, execute_update, QueryResult, UpdateStats};
use kgnet_rdf::sparql::{Order, Projection, ProjectionItem, TermPattern};
use kgnet_rdf::{RdfStore, SparqlError, Term};
use kgnet_sampler::{meta_sample_task, SamplingScope};

use crate::kgmeta::KgMeta;
use crate::opt::{select_models, select_plans, PlanInputs, RewritePlan};
use crate::parser::{parse, SparqlMlOperation, SparqlMlQuery};
use crate::rewrite::{rewrite, RewrittenQuery};

/// Errors surfaced by SPARQL-ML execution.
#[derive(Debug)]
pub enum MlError {
    /// Parse/evaluation error from the SPARQL layer.
    Sparql(SparqlError),
    /// A user-defined predicate matched no trained model in KGMeta.
    NoModel(String),
    /// Model selection infeasible under the inference-time bound.
    SelectionInfeasible,
    /// Training failed.
    Train(TrainError),
    /// Inference-service failure.
    Service(ServiceError),
    /// A write operation (update, TrainGML, model DELETE) was submitted
    /// through the read-only [`QueryManager::query`] path.
    ReadOnly,
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::Sparql(e) => write!(f, "{e}"),
            MlError::NoModel(var) => {
                write!(f, "no trained model satisfies user-defined predicate ?{var}")
            }
            MlError::SelectionInfeasible => {
                write!(f, "no model combination satisfies the inference-time bound")
            }
            MlError::Train(e) => write!(f, "{e}"),
            MlError::Service(e) => write!(f, "{e}"),
            MlError::ReadOnly => {
                write!(f, "write operation rejected: this execution path is read-only")
            }
        }
    }
}

impl std::error::Error for MlError {}

impl From<SparqlError> for MlError {
    fn from(e: SparqlError) -> Self {
        MlError::Sparql(e)
    }
}

impl From<TrainError> for MlError {
    fn from(e: TrainError) -> Self {
        MlError::Train(e)
    }
}

impl From<ServiceError> for MlError {
    fn from(e: ServiceError) -> Self {
        MlError::Service(e)
    }
}

/// Summary of a completed training request.
#[derive(Debug, Clone)]
pub struct TrainedSummary {
    /// Minted model URI.
    pub model_uri: String,
    /// Chosen method.
    pub method: GmlMethodKind,
    /// Test metric (accuracy / Hits@10).
    pub accuracy: f64,
    /// Meta-sampling scope used.
    pub sampler: String,
    /// Triples in the sampled `KG'`.
    pub kg_prime_triples: usize,
    /// Training seconds.
    pub train_time_s: f64,
    /// Peak tracked training memory, bytes.
    pub peak_mem_bytes: usize,
    /// Store generation (MVCC snapshot version) the model was trained on.
    pub trained_generation: u64,
}

/// Result of executing one SPARQL-ML operation.
#[derive(Debug)]
pub enum MlOutcome {
    /// SELECT rows.
    Rows(QueryResult),
    /// A model was trained and registered.
    Trained(TrainedSummary),
    /// Models deleted (their URIs).
    DeletedModels(Vec<String>),
    /// A plain update ran.
    Updated(UpdateStats),
}

/// Tuning knobs of the query manager.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Default training hyper-parameters.
    pub default_cfg: GnnConfig,
    /// Optional bound on summed per-call inference time across predicates.
    pub max_inference_ms: Option<f64>,
    /// Optional cap on total dictionary bytes for plan selection.
    pub dict_bytes_cap: Option<usize>,
    /// Estimated bytes per dictionary entry.
    pub entry_bytes: usize,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            default_cfg: GnnConfig::default(),
            max_inference_ms: None,
            dict_bytes_cap: None,
            entry_bytes: 96,
        }
    }
}

/// The SPARQL-ML query manager.
pub struct QueryManager {
    kgmeta: KgMeta,
    trainer: TrainingManager,
    service: InferenceService,
    config: ManagerConfig,
}

impl Default for QueryManager {
    fn default() -> Self {
        Self::new(ManagerConfig::default())
    }
}

impl QueryManager {
    /// Manager with a fresh model store and KGMeta.
    pub fn new(config: ManagerConfig) -> Self {
        let models = ModelStore::new();
        QueryManager {
            kgmeta: KgMeta::new(),
            trainer: TrainingManager::new(models.clone()),
            service: InferenceService::new(models),
            config,
        }
    }

    /// The KGMeta graph.
    pub fn kgmeta(&self) -> &KgMeta {
        &self.kgmeta
    }

    /// The inference service (exposes HTTP-call counters).
    pub fn service(&self) -> &InferenceService {
        &self.service
    }

    /// The training manager / model registry.
    pub fn trainer(&self) -> &TrainingManager {
        &self.trainer
    }

    /// Execute one SPARQL-ML operation against a data KG (reads and writes;
    /// equivalent to [`QueryManager::update`]).
    pub fn execute(&mut self, data: &mut RdfStore, text: &str) -> Result<MlOutcome, MlError> {
        self.update(data, text)
    }

    /// The read path: evaluate a plain or ML SELECT through shared borrows
    /// only, so any number of queries run concurrently against one store.
    /// Rejects every state-mutating operation with [`MlError::ReadOnly`].
    pub fn query(&self, data: &RdfStore, text: &str) -> Result<MlOutcome, MlError> {
        match parse(text)? {
            SparqlMlOperation::PlainSelect(q) => Ok(MlOutcome::Rows(evaluate_select(data, &q)?)),
            SparqlMlOperation::Select(q) => self.select(data, q),
            SparqlMlOperation::PlainUpdate(_)
            | SparqlMlOperation::Train(_)
            | SparqlMlOperation::DeleteModels(_) => Err(MlError::ReadOnly),
        }
    }

    /// Evaluate an already-parsed SPARQL-ML SELECT through shared borrows —
    /// the read path without re-parsing, for serving layers that classify
    /// the operation themselves.
    pub fn query_select(&self, data: &RdfStore, q: SparqlMlQuery) -> Result<MlOutcome, MlError> {
        self.select(data, q)
    }

    /// The write path: INSERT-MODEL (`TrainGML`), model DELETE and plain
    /// data updates, requiring exclusive access to both the manager state
    /// (KGMeta) and the store. SELECTs are delegated to the read path.
    pub fn update(&mut self, data: &mut RdfStore, text: &str) -> Result<MlOutcome, MlError> {
        match parse(text)? {
            SparqlMlOperation::PlainSelect(q) => Ok(MlOutcome::Rows(evaluate_select(data, &q)?)),
            SparqlMlOperation::Select(q) => self.select(data, q),
            SparqlMlOperation::PlainUpdate(u) => Ok(MlOutcome::Updated(execute_update(data, &u)?)),
            SparqlMlOperation::Train(spec) => self.train(data, spec),
            SparqlMlOperation::DeleteModels(filter) => {
                let uris = self.kgmeta.matching_uris(&filter);
                for uri in &uris {
                    self.kgmeta.unregister(uri);
                    self.trainer.model_store().remove(uri);
                }
                Ok(MlOutcome::DeletedModels(uris))
            }
        }
    }

    /// Register an externally trained artifact in KGMeta. Used by serving
    /// layers whose job queues train through a [`TrainingManager`] clone
    /// outside any manager lock and commit the metadata under a brief
    /// exclusive borrow once training has succeeded.
    pub fn register_artifact(&mut self, artifact: &ModelArtifact) {
        self.kgmeta.register(artifact);
    }

    /// Optimize and rewrite a SPARQL-ML SELECT without executing it.
    pub fn explain(&self, data: &RdfStore, text: &str) -> Result<RewrittenQuery, MlError> {
        match parse(text)? {
            SparqlMlOperation::Select(q) => {
                let (models, plans, _) = self.optimize(data, &q)?;
                Ok(rewrite(&q, &models, &plans))
            }
            _ => Err(MlError::Sparql(SparqlError::parse("explain expects an ML SELECT"))),
        }
    }

    // -- training ----------------------------------------------------------

    fn train(
        &mut self,
        data: &RdfStore,
        spec: crate::parser::TrainGmlSpec,
    ) -> Result<MlOutcome, MlError> {
        let scope = spec
            .sampler
            .as_deref()
            .and_then(SamplingScope::parse)
            .unwrap_or_else(|| SamplingScope::default_for(&spec.task));
        let sampled = meta_sample_task(data, &spec.task, scope);

        let mut cfg = self.config.default_cfg.clone();
        for (key, value) in &spec.hyperparams {
            match key.as_str() {
                "Epochs" => cfg.epochs = *value as usize,
                "Hidden" => cfg.hidden = *value as usize,
                "LR" | "LearningRate" => cfg.lr = *value as f32,
                "Dropout" => cfg.dropout = *value as f32,
                "BatchSize" => cfg.batch_size = *value as usize,
                "Negatives" => cfg.negatives = *value as usize,
                "Seed" => cfg.seed = *value as u64,
                _ => {}
            }
        }
        let req = TrainRequest {
            name: spec.name.clone(),
            task: spec.task.clone(),
            budget: spec.budget,
            cfg,
            forced_method: spec.method.as_deref().and_then(parse_method),
            split_strategy: kgnet_graph::SplitStrategy::Random,
            sampler: scope.name(),
        };
        let (mut artifact, _trace) = self.trainer.train_uncommitted(&sampled.store, &req)?;
        // Stamp which store version the model saw, then commit: registry
        // insert and KGMeta registration happen together as the final step.
        artifact.trained_generation = data.generation();
        let artifact = self.trainer.model_store().insert(artifact);
        self.kgmeta.register(&artifact);
        Ok(MlOutcome::Trained(TrainedSummary {
            model_uri: artifact.uri.clone(),
            method: artifact.method,
            accuracy: artifact.accuracy(),
            sampler: scope.name(),
            kg_prime_triples: sampled.store.len(),
            train_time_s: artifact.report.train_time_s,
            peak_mem_bytes: artifact.report.peak_mem_bytes,
            trained_generation: artifact.trained_generation,
        }))
    }

    // -- SELECT ------------------------------------------------------------

    /// Model + plan selection for an ML query; returns the per-predicate
    /// model URIs, plans and the evaluated base result.
    fn optimize(
        &self,
        data: &RdfStore,
        q: &SparqlMlQuery,
    ) -> Result<(Vec<String>, Vec<RewritePlan>, QueryResult), MlError> {
        // Candidate models per predicate from KGMeta.
        let mut candidates = Vec::with_capacity(q.ud_predicates.len());
        for ud in &q.ud_predicates {
            let models = self.kgmeta.find_models(&ud.filter);
            if models.is_empty() {
                return Err(MlError::NoModel(ud.var.clone()));
            }
            candidates.push(models);
        }
        let chosen = select_models(&candidates, self.config.max_inference_ms)
            .ok_or(MlError::SelectionInfeasible)?;
        let models: Vec<String> =
            chosen.iter().zip(&candidates).map(|(&i, c)| c[i].uri.clone()).collect();

        // Evaluate the base query with subjects projected, to count distinct
        // bindings per predicate (the cardinalities of §IV.B.3).
        let exec = self.executable_base(q);
        let base_result = evaluate_select(data, &exec)?;
        let inputs: Vec<PlanInputs> = q
            .ud_predicates
            .iter()
            .zip(chosen.iter().zip(&candidates))
            .map(|(ud, (&i, c))| PlanInputs {
                bindings: distinct_subject_count(&base_result, &ud.subject),
                model_cardinality: c[i].cardinality,
                entry_bytes: self.config.entry_bytes,
            })
            .collect();
        let plans = select_plans(&inputs, self.config.dict_bytes_cap);
        Ok((models, plans, base_result))
    }

    /// The base query, projected to also bind every UD subject/object var.
    fn executable_base(&self, q: &SparqlMlQuery) -> kgnet_rdf::sparql::SelectQuery {
        let mut exec = q.base.clone();
        exec.distinct = false;
        exec.limit = None;
        exec.offset = None;
        exec.order_by.clear();
        let mut items: Vec<ProjectionItem> = match &exec.projection {
            Projection::All => {
                exec.pattern.bindable_vars().into_iter().map(ProjectionItem::Var).collect()
            }
            Projection::Items(items) => items.clone(),
        };
        let mut have: FxHashSet<String> = items
            .iter()
            .filter_map(|i| match i {
                ProjectionItem::Var(v) => Some(v.clone()),
                ProjectionItem::Agg { .. } => None,
            })
            .collect();
        for ud in &q.ud_predicates {
            if let TermPattern::Var(v) = &ud.subject {
                if have.insert(v.clone()) {
                    items.push(ProjectionItem::Var(v.clone()));
                }
            }
            if have.insert(ud.object_var.clone()) {
                items.push(ProjectionItem::Var(ud.object_var.clone()));
            }
        }
        exec.projection = Projection::Items(items);
        exec
    }

    fn select(&self, data: &RdfStore, q: SparqlMlQuery) -> Result<MlOutcome, MlError> {
        let (models, plans, mut result) = self.optimize(data, &q)?;
        let rewritten = rewrite(&q, &models, &plans);

        for step in &rewritten.steps {
            let subj_col = match &step.ud.subject {
                TermPattern::Var(v) => result.column(v),
                TermPattern::Ground(_) => None,
            };
            let obj_col = result
                .column(&step.ud.object_var)
                .expect("object var projected by executable_base");
            match step.ud.task_kind {
                TaskKind::NodeClassifier => {
                    self.fill_node_class(&mut result, step, subj_col, obj_col)?;
                }
                TaskKind::LinkPredictor | TaskKind::NodeSimilarity => {
                    self.expand_links(&mut result, step, subj_col, obj_col)?;
                }
            }
        }

        // Re-apply the original solution modifiers and projection.
        let final_vars = q.base.output_vars();
        let cols: Vec<usize> = final_vars.iter().filter_map(|v| result.column(v)).collect();
        let mut rows: Vec<Vec<Option<Term>>> =
            result.rows.iter().map(|row| cols.iter().map(|&c| row[c].clone()).collect()).collect();
        if q.base.distinct {
            let mut seen = FxHashSet::default();
            rows.retain(|row| {
                seen.insert(row.iter().map(|t| t.as_ref().map(Term::to_string)).collect::<Vec<_>>())
            });
        }
        if !q.base.order_by.is_empty() {
            let keys: Vec<(usize, Order)> = q
                .base
                .order_by
                .iter()
                .filter_map(|(v, o)| final_vars.iter().position(|x| x == v).map(|i| (i, *o)))
                .collect();
            rows.sort_by(|a, b| {
                for &(i, ord) in &keys {
                    let c = cmp_opt_terms(a[i].as_ref(), b[i].as_ref());
                    let c = if ord == Order::Desc { c.reverse() } else { c };
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        let offset = q.base.offset.unwrap_or(0);
        if offset > 0 {
            rows.drain(..offset.min(rows.len()));
        }
        if let Some(limit) = q.base.limit {
            rows.truncate(limit);
        }
        Ok(MlOutcome::Rows(QueryResult { vars: final_vars, rows }))
    }

    fn fill_node_class(
        &self,
        result: &mut QueryResult,
        step: &crate::rewrite::InferenceStep,
        subj_col: Option<usize>,
        obj_col: usize,
    ) -> Result<(), MlError> {
        let subjects = collect_subjects(result, step, subj_col);
        let mut predicted: FxHashMap<String, String> = FxHashMap::default();
        match step.plan {
            RewritePlan::Dictionary => {
                let resp = self
                    .service
                    .call(&InferenceRequest::GetNodeClassDict { model: step.model_uri.clone() })?;
                if let InferenceResponse::NodeClassDict { predictions } = resp {
                    predicted.extend(predictions);
                }
            }
            RewritePlan::PerBinding => {
                for iri in &subjects {
                    let resp = self.service.call(&InferenceRequest::GetNodeClass {
                        model: step.model_uri.clone(),
                        node: iri.clone(),
                    })?;
                    if let InferenceResponse::NodeClass { class: Some(class), .. } = resp {
                        predicted.insert(iri.clone(), class);
                    }
                }
            }
        }
        // Bind predictions; rows whose subject has no prediction are dropped
        // (the inferred triple pattern did not match).
        result.rows.retain_mut(|row| {
            let subject = subject_of_row(row, step, subj_col);
            let Some(subject) = subject else { return false };
            match predicted.get(&subject) {
                Some(class) => {
                    row[obj_col] = Some(Term::iri(class.clone()));
                    true
                }
                None => false,
            }
        });
        Ok(())
    }

    fn expand_links(
        &self,
        result: &mut QueryResult,
        step: &crate::rewrite::InferenceStep,
        subj_col: Option<usize>,
        obj_col: usize,
    ) -> Result<(), MlError> {
        let subjects = collect_subjects(result, step, subj_col);
        let k = step.ud.topk;
        let mut links: FxHashMap<String, Vec<(String, f32)>> = FxHashMap::default();
        match (step.ud.task_kind, step.plan) {
            (TaskKind::LinkPredictor, RewritePlan::Dictionary) => {
                let resp = self.service.call(&InferenceRequest::GetAllTopkLinks {
                    model: step.model_uri.clone(),
                    k,
                })?;
                if let InferenceResponse::AllTopkLinks { links: l } = resp {
                    links.extend(l);
                }
            }
            (TaskKind::LinkPredictor, RewritePlan::PerBinding) => {
                for iri in &subjects {
                    let resp = self.service.call(&InferenceRequest::GetTopkLinks {
                        model: step.model_uri.clone(),
                        source: iri.clone(),
                        k,
                    })?;
                    if let InferenceResponse::TopkLinks { links: l, .. } = resp {
                        links.insert(iri.clone(), l);
                    }
                }
            }
            (TaskKind::NodeSimilarity, _) => {
                for iri in &subjects {
                    let resp = self.service.call(&InferenceRequest::GetSimilarNodes {
                        model: step.model_uri.clone(),
                        node: iri.clone(),
                        k,
                    })?;
                    if let InferenceResponse::SimilarNodes { neighbors } = resp {
                        links.insert(iri.clone(), neighbors);
                    }
                }
            }
            (TaskKind::NodeClassifier, _) => unreachable!("handled by fill_node_class"),
        }

        let mut expanded = Vec::with_capacity(result.rows.len());
        for row in &result.rows {
            let Some(subject) = subject_of_row(row, step, subj_col) else { continue };
            let Some(ranked) = links.get(&subject) else { continue };
            for (dest, _score) in ranked.iter().take(k) {
                let mut new_row = row.clone();
                new_row[obj_col] = Some(Term::iri(dest.clone()));
                expanded.push(new_row);
            }
        }
        result.rows = expanded;
        Ok(())
    }
}

fn collect_subjects(
    result: &QueryResult,
    step: &crate::rewrite::InferenceStep,
    subj_col: Option<usize>,
) -> Vec<String> {
    match (&step.ud.subject, subj_col) {
        (TermPattern::Ground(t), _) => vec![plain_iri(t)],
        (TermPattern::Var(_), Some(col)) => {
            let mut seen = FxHashSet::default();
            let mut out = Vec::new();
            for row in &result.rows {
                if let Some(t) = &row[col] {
                    let iri = plain_iri(t);
                    if seen.insert(iri.clone()) {
                        out.push(iri);
                    }
                }
            }
            out
        }
        (TermPattern::Var(_), None) => vec![],
    }
}

fn subject_of_row(
    row: &[Option<Term>],
    step: &crate::rewrite::InferenceStep,
    subj_col: Option<usize>,
) -> Option<String> {
    match (&step.ud.subject, subj_col) {
        (TermPattern::Ground(t), _) => Some(plain_iri(t)),
        (TermPattern::Var(_), Some(col)) => row[col].as_ref().map(plain_iri),
        (TermPattern::Var(_), None) => None,
    }
}

fn plain_iri(t: &Term) -> String {
    match t {
        Term::Iri(i) => i.clone(),
        other => other.to_string(),
    }
}

fn distinct_subject_count(result: &QueryResult, subject: &TermPattern) -> usize {
    match subject {
        TermPattern::Ground(_) => 1,
        TermPattern::Var(v) => {
            let Some(col) = result.column(v) else { return 0 };
            result
                .rows
                .iter()
                .filter_map(|r| r[col].as_ref().map(Term::to_string))
                .collect::<FxHashSet<_>>()
                .len()
        }
    }
}

fn cmp_opt_terms(a: Option<&Term>, b: Option<&Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => match (x.numeric(), y.numeric()) {
            (Some(nx), Some(ny)) => nx.partial_cmp(&ny).unwrap_or(Ordering::Equal),
            _ => x.to_string().cmp(&y.to_string()),
        },
    }
}

fn parse_method(name: &str) -> Option<GmlMethodKind> {
    let n = name.to_ascii_lowercase();
    Some(match n.as_str() {
        "gcn" => GmlMethodKind::Gcn,
        "rgcn" => GmlMethodKind::Rgcn,
        "graphsaint" | "g-saint" | "saint" => GmlMethodKind::GraphSaint,
        "shadowsaint" | "sh-saint" | "shadow" => GmlMethodKind::ShadowSaint,
        "morse" => GmlMethodKind::Morse,
        "transe" => GmlMethodKind::TransE,
        "distmult" => GmlMethodKind::DistMult,
        "complex" => GmlMethodKind::ComplEx,
        "rotate" => GmlMethodKind::RotatE,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::plan_calls;
    use kgnet_datagen::{generate_dblp, DblpConfig};

    fn manager() -> QueryManager {
        let cfg = ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() };
        QueryManager::new(cfg)
    }

    fn train_nc(mgr: &mut QueryManager, data: &mut RdfStore) -> TrainedSummary {
        let out = mgr
            .execute(
                data,
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'paper-venue',
                      GML-Task:{ TaskType: kgnet:NodeClassifier,
                                 TargetNode: dblp:Publication,
                                 NodeLabel: dblp:publishedIn},
                      Method: 'GraphSAINT'})}"#,
            )
            .unwrap();
        match out {
            MlOutcome::Trained(s) => s,
            other => panic!("unexpected {other:?}"),
        }
    }

    const PV_QUERY: &str = r#"
        PREFIX dblp: <https://www.dblp.org/>
        PREFIX kgnet: <https://www.kgnet.com/>
        SELECT ?title ?venue WHERE {
          ?paper a dblp:Publication .
          ?paper dblp:title ?title .
          ?paper ?NodeClassifier ?venue .
          ?NodeClassifier a kgnet:NodeClassifier .
          ?NodeClassifier kgnet:TargetNode dblp:Publication .
          ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;

    #[test]
    fn end_to_end_train_then_query() {
        let (mut data, _) = generate_dblp(&DblpConfig::tiny(41));
        let mut mgr = manager();
        let summary = train_nc(&mut mgr, &mut data);
        assert!(summary.kg_prime_triples < data.len());
        assert_eq!(summary.sampler, "d1h1");

        let out = mgr.execute(&mut data, PV_QUERY).unwrap();
        let MlOutcome::Rows(rows) = out else { panic!("expected rows") };
        assert_eq!(rows.vars, vec!["title", "venue"]);
        // Every paper gets a predicted venue.
        assert_eq!(rows.len(), 60);
        for row in &rows.rows {
            let venue = row[1].as_ref().unwrap().as_iri().unwrap();
            assert!(venue.contains("venue/"), "unexpected prediction {venue}");
        }
        // Dictionary plan: exactly one HTTP call for 60 papers.
        assert_eq!(mgr.service().stats().calls, 1);
    }

    #[test]
    fn read_path_runs_ml_select_through_shared_borrows() {
        let (mut data, _) = generate_dblp(&DblpConfig::tiny(41));
        let mut mgr = manager();
        train_nc(&mut mgr, &mut data);
        // From here on: &QueryManager and &RdfStore only.
        let mgr_ref: &QueryManager = &mgr;
        let data_ref: &RdfStore = &data;
        let MlOutcome::Rows(via_query) = mgr_ref.query(data_ref, PV_QUERY).unwrap() else {
            panic!("expected rows")
        };
        assert_eq!(via_query.len(), 60);
        // The read and write paths agree exactly.
        let MlOutcome::Rows(via_execute) = mgr.execute(&mut data, PV_QUERY).unwrap() else {
            panic!("expected rows")
        };
        assert_eq!(via_query, via_execute);
    }

    #[test]
    fn read_path_rejects_writes() {
        let (data, _) = generate_dblp(&DblpConfig::tiny(43));
        let mgr = manager();
        let err =
            mgr.query(&data, "INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap_err();
        assert!(matches!(err, MlError::ReadOnly));
        let err = mgr
            .query(
                &data,
                r#"PREFIX kgnet: <https://www.kgnet.com/>
                   DELETE { ?m ?p ?o } WHERE { ?m a kgnet:NodeClassifier . }"#,
            )
            .unwrap_err();
        assert!(matches!(err, MlError::ReadOnly));
    }

    #[test]
    fn failed_training_leaves_kgmeta_and_registry_unchanged() {
        let (mut data, _) = generate_dblp(&DblpConfig::tiny(45));
        let mut mgr = manager();
        // Unsatisfiable task: no such target type in the graph.
        let err = mgr
            .execute(
                &mut data,
                r#"PREFIX kgnet: <https://www.kgnet.com/>
                   PREFIX nope: <http://nope/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'doomed',
                      GML-Task:{ TaskType: kgnet:NodeClassifier,
                                 TargetNode: nope:T,
                                 NodeLabel: nope:p}})}"#,
            )
            .unwrap_err();
        assert!(matches!(err, MlError::Train(TrainError::EmptyTask)), "unexpected error: {err}");
        assert!(mgr.kgmeta().is_empty(), "failed training must not touch KGMeta");
        assert!(mgr.trainer().model_store().is_empty(), "failed training must not register models");
    }

    #[test]
    fn query_without_model_errors() {
        let (mut data, _) = generate_dblp(&DblpConfig::tiny(43));
        let mut mgr = manager();
        match mgr.execute(&mut data, PV_QUERY) {
            Err(MlError::NoModel(var)) => assert_eq!(var, "NodeClassifier"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_models_clears_kgmeta_and_registry() {
        let (mut data, _) = generate_dblp(&DblpConfig::tiny(47));
        let mut mgr = manager();
        let summary = train_nc(&mut mgr, &mut data);
        let out = mgr
            .execute(
                &mut data,
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   DELETE { ?m ?p ?o } WHERE {
                     ?m a kgnet:NodeClassifier .
                     ?m kgnet:TargetNode dblp:Publication .
                     ?m kgnet:NodeLabel dblp:publishedIn . }"#,
            )
            .unwrap();
        match out {
            MlOutcome::DeletedModels(uris) => assert_eq!(uris, vec![summary.model_uri]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(mgr.kgmeta().is_empty());
        assert!(mgr.trainer().model_store().is_empty());
        // Querying now fails again.
        assert!(matches!(mgr.execute(&mut data, PV_QUERY), Err(MlError::NoModel(_))));
    }

    #[test]
    fn link_prediction_query_expands_topk() {
        let (mut data, _) = generate_dblp(&DblpConfig::tiny(53));
        let mut mgr = manager();
        let out = mgr
            .execute(
                &mut data,
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'author-aff',
                      GML-Task:{ TaskType: kgnet:LinkPredictor,
                                 SourceNode: dblp:Person,
                                 DestinationNode: dblp:Affiliation,
                                 TargetEdge: dblp:affiliatedWith},
                      Method: 'MorsE', Sampler: 'd2h1',
                      Hyperparams: {Epochs: 10}})}"#,
            )
            .unwrap();
        assert!(matches!(out, MlOutcome::Trained(_)));

        let out = mgr
            .execute(
                &mut data,
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   SELECT ?author ?affiliation WHERE {
                     ?author a dblp:Person .
                     ?author ?LinkPredictor ?affiliation .
                     ?LinkPredictor a kgnet:LinkPredictor .
                     ?LinkPredictor kgnet:SourceNode dblp:Person .
                     ?LinkPredictor kgnet:DestinationNode dblp:Affiliation .
                     ?LinkPredictor kgnet:TopK-Links 3 . }"#,
            )
            .unwrap();
        let MlOutcome::Rows(rows) = out else { panic!("expected rows") };
        // 30 authors x top-3 affiliations.
        assert_eq!(rows.len(), 90);
        let aff = rows.rows[0][1].as_ref().unwrap().as_iri().unwrap();
        assert!(aff.contains("org/aff"), "unexpected destination {aff}");
    }

    #[test]
    fn plain_sparql_passes_through() {
        let (mut data, _) = generate_dblp(&DblpConfig::tiny(59));
        let mut mgr = manager();
        let out = mgr
            .execute(
                &mut data,
                "PREFIX dblp: <https://www.dblp.org/> SELECT (COUNT(*) AS ?n) WHERE { ?p a dblp:Publication }",
            )
            .unwrap();
        let MlOutcome::Rows(rows) = out else { panic!("expected rows") };
        assert_eq!(rows.rows[0][0].as_ref().unwrap().as_int(), Some(60));
    }

    #[test]
    fn explain_reports_dictionary_plan() {
        let (mut data, _) = generate_dblp(&DblpConfig::tiny(61));
        let mut mgr = manager();
        train_nc(&mut mgr, &mut data);
        let rewritten = mgr.explain(&data, PV_QUERY).unwrap();
        assert_eq!(rewritten.steps.len(), 1);
        assert_eq!(rewritten.steps[0].plan, RewritePlan::Dictionary);
        assert!(rewritten.sparql.contains("getKeyValue"));
        assert_eq!(plan_calls(rewritten.steps[0].plan, 60), 1);
    }
}
