//! KGMeta: the RDF graph of trained-model metadata (paper Fig. 7) and its
//! governor.
//!
//! Every trained model is described by triples in a dedicated RDF graph —
//! model class (`kgnet:NodeClassifier` / `kgnet:LinkPredictor` /
//! `kgnet:NodeSimilarity`), target/label types, accuracy, inference time,
//! cardinality, method, sampler and budget — interlinked with the data KG
//! through `kgnet:HasGMLTask` on the target node type. The SPARQL-ML query
//! optimizer reads its statistics through ordinary SPARQL.

use kgnet_gmlaas::{ModelArtifact, TaskKind};
use kgnet_rdf::term::RDF_TYPE;
use kgnet_rdf::{RdfStore, Term};

/// The `kgnet:` vocabulary (IRIs used by KGMeta and SPARQL-ML).
pub mod vocab {
    /// Namespace base.
    pub const NS: &str = "https://www.kgnet.com/";

    /// Node classifier model class.
    pub const NODE_CLASSIFIER: &str = "https://www.kgnet.com/NodeClassifier";
    /// Link predictor model class.
    pub const LINK_PREDICTOR: &str = "https://www.kgnet.com/LinkPredictor";
    /// Node-similarity (entity search) model class.
    pub const NODE_SIMILARITY: &str = "https://www.kgnet.com/NodeSimilarity";

    /// Model -> target node type.
    pub const TARGET_NODE: &str = "https://www.kgnet.com/TargetNode";
    /// Model -> label edge type (node classification).
    pub const NODE_LABEL: &str = "https://www.kgnet.com/NodeLabel";
    /// Model -> source node type (link prediction).
    pub const SOURCE_NODE: &str = "https://www.kgnet.com/SourceNode";
    /// Model -> destination node type (link prediction).
    pub const DESTINATION_NODE: &str = "https://www.kgnet.com/DestinationNode";
    /// Query constraint: top-k links requested.
    pub const TOPK_LINKS: &str = "https://www.kgnet.com/TopK-Links";
    /// Model -> accuracy score.
    pub const MODEL_ACCURACY: &str = "https://www.kgnet.com/ModelAccuracy";
    /// Model -> per-call inference time (milliseconds).
    pub const INFERENCE_TIME: &str = "https://www.kgnet.com/InferenceTime";
    /// Model -> prediction cardinality.
    pub const MODEL_CARDINALITY: &str = "https://www.kgnet.com/ModelCardinality";
    /// Model -> GML method name.
    pub const GML_METHOD: &str = "https://www.kgnet.com/GMLMethod";
    /// Model -> meta-sampler scope name.
    pub const SAMPLER: &str = "https://www.kgnet.com/Sampler";
    /// Model -> training time in seconds.
    pub const TRAINING_TIME: &str = "https://www.kgnet.com/TrainingTime";
    /// Model -> peak training memory in bytes.
    pub const TRAINING_MEMORY: &str = "https://www.kgnet.com/TrainingMemory";
    /// Model -> store generation (MVCC snapshot version) it was trained on.
    pub const TRAINED_GENERATION: &str = "https://www.kgnet.com/TrainedGeneration";
    /// Data node type -> model (interlink into the data KG, Fig. 7).
    pub const HAS_GML_TASK: &str = "https://www.kgnet.com/HasGMLTask";

    /// Model class IRI for a task kind.
    pub fn class_of(kind: kgnet_gmlaas::TaskKind) -> &'static str {
        match kind {
            kgnet_gmlaas::TaskKind::NodeClassifier => NODE_CLASSIFIER,
            kgnet_gmlaas::TaskKind::LinkPredictor => LINK_PREDICTOR,
            kgnet_gmlaas::TaskKind::NodeSimilarity => NODE_SIMILARITY,
        }
    }
}

/// Statistics of one registered model, as read back from KGMeta.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Model URI.
    pub uri: String,
    /// Accuracy in `[0,1]`.
    pub accuracy: f64,
    /// Per-call inference time, milliseconds.
    pub inference_time_ms: f64,
    /// Prediction cardinality.
    pub cardinality: usize,
    /// Method name.
    pub method: String,
}

/// Filter describing which models a user-defined predicate accepts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelFilter {
    /// Required model class (task kind).
    pub task_kind: Option<TaskKind>,
    /// Required `kgnet:TargetNode`.
    pub target_type: Option<String>,
    /// Required `kgnet:NodeLabel`.
    pub node_label: Option<String>,
    /// Required `kgnet:SourceNode`.
    pub source_type: Option<String>,
    /// Required `kgnet:DestinationNode`.
    pub destination_type: Option<String>,
}

/// The KGMeta governor: maintains the metadata graph.
#[derive(Default)]
pub struct KgMeta {
    store: RdfStore,
}

impl KgMeta {
    /// Empty KGMeta graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the underlying RDF graph (for SPARQL).
    pub fn store(&self) -> &RdfStore {
        &self.store
    }

    /// Number of metadata triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Register a trained model's metadata (Fig. 7 shape).
    pub fn register(&mut self, artifact: &ModelArtifact) {
        let m = Term::iri(artifact.uri.clone());
        let class = vocab::class_of(artifact.task_kind);
        self.store.insert(m.clone(), Term::iri(RDF_TYPE), Term::iri(class));
        match artifact.task_kind {
            TaskKind::NodeClassifier => {
                self.insert(&m, vocab::TARGET_NODE, Term::iri(artifact.target_type.clone()));
                self.insert(&m, vocab::NODE_LABEL, Term::iri(artifact.label_predicate.clone()));
            }
            TaskKind::LinkPredictor => {
                self.insert(&m, vocab::SOURCE_NODE, Term::iri(artifact.target_type.clone()));
                if let Some(dest) = &artifact.destination_type {
                    self.insert(&m, vocab::DESTINATION_NODE, Term::iri(dest.clone()));
                }
                self.insert(&m, vocab::NODE_LABEL, Term::iri(artifact.label_predicate.clone()));
            }
            TaskKind::NodeSimilarity => {
                self.insert(&m, vocab::TARGET_NODE, Term::iri(artifact.target_type.clone()));
            }
        }
        self.insert(&m, vocab::MODEL_ACCURACY, Term::double(artifact.accuracy()));
        self.insert(&m, vocab::INFERENCE_TIME, Term::double(artifact.inference_time_ms()));
        self.insert(&m, vocab::MODEL_CARDINALITY, Term::int(artifact.cardinality as i64));
        self.insert(&m, vocab::GML_METHOD, Term::str(artifact.method.name()));
        self.insert(&m, vocab::SAMPLER, Term::str(artifact.sampler.clone()));
        self.insert(&m, vocab::TRAINING_TIME, Term::double(artifact.report.train_time_s));
        self.insert(&m, vocab::TRAINING_MEMORY, Term::int(artifact.report.peak_mem_bytes as i64));
        self.insert(&m, vocab::TRAINED_GENERATION, Term::int(artifact.trained_generation as i64));
        // Interlink with the data KG: the target type advertises the task.
        self.store.insert(
            Term::iri(artifact.target_type.clone()),
            Term::iri(vocab::HAS_GML_TASK),
            m,
        );
    }

    fn insert(&mut self, model: &Term, predicate: &str, object: Term) {
        self.store.insert(model.clone(), Term::iri(predicate), object);
    }

    /// Remove every triple about a model URI (including interlinks).
    /// Returns the number of triples removed.
    pub fn unregister(&mut self, uri: &str) -> usize {
        let model = Term::iri(uri);
        let Some(id) = self.store.lookup(&model) else { return 0 };
        let mut doomed = self.store.matches(Some(id), None, None);
        doomed.extend(self.store.matches(None, None, Some(id)));
        let n = doomed.len();
        for (s, p, o) in doomed {
            let (s, p, o) = (
                self.store.resolve(s).clone(),
                self.store.resolve(p).clone(),
                self.store.resolve(o).clone(),
            );
            self.store.remove(&s, &p, &o);
        }
        n
    }

    /// Find models matching a filter, best accuracy first. Implemented as a
    /// SPARQL query against the KGMeta graph (exactly what the paper's query
    /// optimizer does).
    pub fn find_models(&self, filter: &ModelFilter) -> Vec<ModelInfo> {
        let class = filter.task_kind.map(vocab::class_of);
        let mut where_clauses = vec![
            "?m <https://www.kgnet.com/ModelAccuracy> ?acc .".to_owned(),
            "?m <https://www.kgnet.com/InferenceTime> ?time .".to_owned(),
            "?m <https://www.kgnet.com/ModelCardinality> ?card .".to_owned(),
            "?m <https://www.kgnet.com/GMLMethod> ?method .".to_owned(),
        ];
        if let Some(c) = class {
            where_clauses.push(format!("?m a <{c}> ."));
        }
        let mut push_opt = |pred: &str, value: &Option<String>| {
            if let Some(v) = value {
                where_clauses.push(format!("?m <{pred}> <{v}> ."));
            }
        };
        push_opt(vocab::TARGET_NODE, &filter.target_type);
        push_opt(vocab::NODE_LABEL, &filter.node_label);
        push_opt(vocab::SOURCE_NODE, &filter.source_type);
        push_opt(vocab::DESTINATION_NODE, &filter.destination_type);

        let query =
            format!("SELECT ?m ?acc ?time ?card ?method WHERE {{ {} }}", where_clauses.join(" "));
        let result = kgnet_rdf::query(&self.store, &query).expect("well-formed KGMeta query");
        let mut models: Vec<ModelInfo> = result
            .rows
            .iter()
            .filter_map(|row| {
                Some(ModelInfo {
                    uri: row[0].as_ref()?.as_iri()?.to_owned(),
                    accuracy: row[1].as_ref()?.as_f64()?,
                    inference_time_ms: row[2].as_ref()?.as_f64()?,
                    cardinality: row[3].as_ref()?.as_int()? as usize,
                    method: row[4].as_ref()?.as_literal()?.to_owned(),
                })
            })
            .collect();
        models.sort_by(|a, b| {
            b.accuracy.partial_cmp(&a.accuracy).unwrap_or(std::cmp::Ordering::Equal)
        });
        models.dedup_by(|a, b| a.uri == b.uri);
        models
    }

    /// URIs of models matching a filter (used by DELETE queries).
    pub fn matching_uris(&self, filter: &ModelFilter) -> Vec<String> {
        self.find_models(filter).into_iter().map(|m| m.uri).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_gml::config::{GmlMethodKind, TrainReport};
    use kgnet_gmlaas::ArtifactPayload;

    fn artifact(uri: &str, accuracy: f64, infer_ms: f64) -> ModelArtifact {
        ModelArtifact {
            uri: uri.to_owned(),
            task_kind: TaskKind::NodeClassifier,
            target_type: "https://www.dblp.org/Publication".into(),
            label_predicate: "https://www.dblp.org/publishedIn".into(),
            destination_type: None,
            method: GmlMethodKind::GraphSaint,
            report: TrainReport {
                method: GmlMethodKind::GraphSaint,
                train_time_s: 12.0,
                peak_mem_bytes: 4096,
                test_metric: accuracy,
                valid_metric: accuracy,
                mrr: 0.0,
                loss_curve: vec![],
                n_nodes: 5,
                n_edges: 9,
                inference_time_ms: infer_ms,
            },
            sampler: "d1h1".into(),
            cardinality: 42,
            trained_generation: 0,
            payload: ArtifactPayload::NodeClassifier { predictions: Default::default() },
        }
    }

    #[test]
    fn register_creates_fig7_shape() {
        let mut meta = KgMeta::new();
        meta.register(&artifact("https://www.kgnet.com/model/nc/m1", 0.9, 0.2));
        let st = meta.store();
        assert!(st.contains(
            &Term::iri("https://www.kgnet.com/model/nc/m1"),
            &Term::iri(RDF_TYPE),
            &Term::iri(vocab::NODE_CLASSIFIER)
        ));
        assert!(st.contains(
            &Term::iri("https://www.dblp.org/Publication"),
            &Term::iri(vocab::HAS_GML_TASK),
            &Term::iri("https://www.kgnet.com/model/nc/m1")
        ));
        assert!(meta.len() >= 10);
    }

    #[test]
    fn find_models_filters_and_sorts() {
        let mut meta = KgMeta::new();
        meta.register(&artifact("https://www.kgnet.com/model/nc/m1", 0.80, 0.2));
        meta.register(&artifact("https://www.kgnet.com/model/nc/m2", 0.92, 0.9));
        let filter = ModelFilter {
            task_kind: Some(TaskKind::NodeClassifier),
            target_type: Some("https://www.dblp.org/Publication".into()),
            node_label: Some("https://www.dblp.org/publishedIn".into()),
            ..Default::default()
        };
        let models = meta.find_models(&filter);
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].uri, "https://www.kgnet.com/model/nc/m2");
        assert!((models[0].accuracy - 0.92).abs() < 1e-9);
        assert_eq!(models[0].cardinality, 42);
        assert_eq!(models[0].method, "G-SAINT");
    }

    #[test]
    fn mismatched_filter_finds_nothing() {
        let mut meta = KgMeta::new();
        meta.register(&artifact("https://www.kgnet.com/model/nc/m1", 0.8, 0.2));
        let filter = ModelFilter { task_kind: Some(TaskKind::LinkPredictor), ..Default::default() };
        assert!(meta.find_models(&filter).is_empty());
    }

    #[test]
    fn unregister_removes_all_triples() {
        let mut meta = KgMeta::new();
        meta.register(&artifact("https://www.kgnet.com/model/nc/m1", 0.8, 0.2));
        let removed = meta.unregister("https://www.kgnet.com/model/nc/m1");
        assert!(removed >= 10);
        assert!(meta.is_empty());
        assert_eq!(meta.unregister("https://www.kgnet.com/model/nc/m1"), 0);
    }
}
