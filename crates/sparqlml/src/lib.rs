//! # kgnet-sparqlml
//!
//! The SPARQL-ML language service of the KGNet platform: the parser for
//! user-defined predicates and `TrainGML` requests (paper Figs. 2, 8–10),
//! the KGMeta metadata graph and its governor (Fig. 7), the
//! integer-programming query optimizer (model selection and HTTP-call-
//! minimising plan selection, §IV.B.3), the Fig. 11/12 query re-writer, and
//! the end-to-end query manager.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kgmeta;
pub mod manager;
pub mod opt;
pub mod parser;
pub mod relaxed_json;
pub mod rewrite;

pub use kgmeta::{KgMeta, ModelFilter, ModelInfo};
pub use manager::{ManagerConfig, MlError, MlOutcome, QueryManager, TrainedSummary};
pub use opt::{plan_calls, select_models, select_plans, PlanInputs, RewritePlan};
pub use parser::{
    contains_traingml, parse, SparqlMlOperation, SparqlMlQuery, TrainGmlSpec, UdPredicate,
};
pub use rewrite::{rewrite, InferenceStep, RewrittenQuery};
