//! The SPARQL-ML parser.
//!
//! SPARQL-ML extends SPARQL with *user-defined predicates*: a variable in
//! predicate position whose model class is constrained by ordinary triple
//! patterns (`?m a kgnet:NodeClassifier . ?m kgnet:TargetNode dblp:Publication ...`,
//! Fig. 2/10). Three operation shapes are recognised:
//!
//! * SELECT with user-defined predicates (Figs. 2 and 10);
//! * `INSERT ... kgnet.TrainGML({...})` training requests (Fig. 8);
//! * DELETE of trained models by KGMeta pattern (Fig. 9).
//!
//! Anything else falls through as a plain SPARQL operation.

use rustc_hash::FxHashMap;

use kgnet_gmlaas::{Priority, TaskBudget, TaskKind};
use kgnet_graph::{GmlTask, LpTask, NcTask};
use kgnet_rdf::sparql::{Operation, SelectQuery, TermPattern, TriplePattern, Update};
use kgnet_rdf::{SparqlError, Term};

use crate::kgmeta::{vocab, ModelFilter};
use crate::relaxed_json;

/// A user-defined predicate occurrence inside a SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct UdPredicate {
    /// The predicate variable name (e.g. `NodeClassifier` in Fig. 2).
    pub var: String,
    /// The model class required for this predicate.
    pub task_kind: TaskKind,
    /// Subject of the inferred triple (e.g. `?paper`).
    pub subject: TermPattern,
    /// Object variable receiving predictions (e.g. `?venue`).
    pub object_var: String,
    /// Model filter assembled from the `kgnet:` constraint triples.
    pub filter: ModelFilter,
    /// `kgnet:TopK-Links` bound for link prediction (defaults to 10).
    pub topk: usize,
}

/// A parsed SPARQL-ML SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SparqlMlQuery {
    /// The data query with UD-predicate and `kgnet:` triples removed.
    pub base: SelectQuery,
    /// The user-defined predicates to evaluate.
    pub ud_predicates: Vec<UdPredicate>,
}

/// A parsed `TrainGML` request.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainGmlSpec {
    /// Model name.
    pub name: String,
    /// The task to train.
    pub task: GmlTask,
    /// The task budget.
    pub budget: TaskBudget,
    /// Optional expert method override (by method name, e.g. "RGCN").
    pub method: Option<String>,
    /// Optional hyper-parameter overrides.
    pub hyperparams: FxHashMap<String, f64>,
    /// Optional sampler scope name override (e.g. "d2h1").
    pub sampler: Option<String>,
}

/// Any SPARQL-ML operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SparqlMlOperation {
    /// A SELECT with at least one user-defined predicate.
    Select(SparqlMlQuery),
    /// A plain SPARQL SELECT (no ML predicates).
    PlainSelect(SelectQuery),
    /// A model-training request.
    Train(TrainGmlSpec),
    /// Deletion of trained models matching a KGMeta filter.
    DeleteModels(ModelFilter),
    /// A plain SPARQL update.
    PlainUpdate(Update),
}

/// Parse a SPARQL-ML operation.
pub fn parse(input: &str) -> Result<SparqlMlOperation, SparqlError> {
    if contains_traingml(input) {
        return parse_traingml(input);
    }
    match kgnet_rdf::sparql::parse(input)? {
        Operation::Select(q) => Ok(classify_select(q)),
        Operation::Update(u) => Ok(classify_update(u)),
    }
}

/// The raw-text gate [`parse`] applies *before* tokenizing: a query
/// mentioning TrainGML anywhere (comments included) is routed to the
/// relaxed TrainGML parser. Exported so serving layers that cache by token
/// stream can mirror the classification exactly instead of re-deriving it.
pub fn contains_traingml(input: &str) -> bool {
    input.as_bytes().windows("traingml".len()).any(|w| w.eq_ignore_ascii_case(b"traingml"))
}

// ---------------------------------------------------------------------------
// SELECT classification
// ---------------------------------------------------------------------------

fn task_kind_of_class(iri: &str) -> Option<TaskKind> {
    match iri {
        vocab::NODE_CLASSIFIER => Some(TaskKind::NodeClassifier),
        vocab::LINK_PREDICTOR => Some(TaskKind::LinkPredictor),
        vocab::NODE_SIMILARITY => Some(TaskKind::NodeSimilarity),
        _ => None,
    }
}

/// Split a SELECT into its data part and its user-defined predicates.
pub fn classify_select(query: SelectQuery) -> SparqlMlOperation {
    let mut base = query.clone();
    let triples = std::mem::take(&mut base.pattern.triples);

    // Predicate-position variables typed as kgnet model classes.
    let mut ud: FxHashMap<String, UdPredicate> = FxHashMap::default();
    for tp in &triples {
        let Some(var) = tp.s.as_var() else { continue };
        let (Some(p), Some(o)) = (tp.p.as_ground(), tp.o.as_ground()) else { continue };
        if p.as_iri() != Some(kgnet_rdf::term::RDF_TYPE) {
            continue;
        }
        let Some(kind) = o.as_iri().and_then(task_kind_of_class) else { continue };
        ud.insert(
            var.to_owned(),
            UdPredicate {
                var: var.to_owned(),
                task_kind: kind,
                subject: TermPattern::Var(String::new()),
                object_var: String::new(),
                filter: ModelFilter { task_kind: Some(kind), ..Default::default() },
                topk: 10,
            },
        );
    }
    if ud.is_empty() {
        // Nothing ML about this query.
        base.pattern.triples = triples;
        return SparqlMlOperation::PlainSelect(base);
    }

    // Constraint triples (?m kgnet:X value) and the inferred triples
    // (?s ?m ?o); everything else stays in the data pattern.
    let mut kept = Vec::with_capacity(triples.len());
    for tp in triples {
        // Constraint triple on a UD variable subject.
        if let Some(var) = tp.s.as_var() {
            if let Some(entry) = ud.get_mut(var) {
                apply_constraint(entry, &tp);
                continue;
            }
        }
        // Inferred triple: variable predicate matching a UD variable.
        if let TermPattern::Var(pvar) = &tp.p {
            if let Some(entry) = ud.get_mut(pvar) {
                entry.subject = tp.s.clone();
                if let Some(ovar) = tp.o.as_var() {
                    entry.object_var = ovar.to_owned();
                }
                continue;
            }
        }
        kept.push(tp);
    }
    base.pattern.triples = kept;

    let mut ud_predicates: Vec<UdPredicate> =
        ud.into_values().filter(|u| !u.object_var.is_empty()).collect();
    ud_predicates.sort_by(|a, b| a.var.cmp(&b.var));
    if ud_predicates.is_empty() {
        return SparqlMlOperation::PlainSelect(base);
    }
    SparqlMlOperation::Select(SparqlMlQuery { base, ud_predicates })
}

fn apply_constraint(entry: &mut UdPredicate, tp: &TriplePattern) {
    let Some(pred) = tp.p.as_ground().and_then(Term::as_iri) else { return };
    let object_iri = tp.o.as_ground().and_then(Term::as_iri).map(str::to_owned);
    match pred {
        vocab::TARGET_NODE => entry.filter.target_type = object_iri,
        vocab::NODE_LABEL => entry.filter.node_label = object_iri,
        vocab::SOURCE_NODE => entry.filter.source_type = object_iri,
        vocab::DESTINATION_NODE => entry.filter.destination_type = object_iri,
        vocab::TOPK_LINKS => {
            if let Some(k) = tp.o.as_ground().and_then(Term::as_int) {
                entry.topk = k.max(1) as usize;
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// DELETE classification
// ---------------------------------------------------------------------------

fn classify_update(update: Update) -> SparqlMlOperation {
    let pattern_triples: Option<&Vec<TriplePattern>> = match &update {
        Update::DeleteWhere(ts) => Some(ts),
        Update::Modify { pattern, insert, .. } if insert.is_empty() => Some(&pattern.triples),
        _ => None,
    };
    let Some(triples) = pattern_triples else {
        return SparqlMlOperation::PlainUpdate(update);
    };

    // A model-delete names a variable typed as a kgnet model class.
    let mut filter: Option<(String, ModelFilter)> = None;
    for tp in triples {
        let Some(var) = tp.s.as_var() else { continue };
        let (Some(p), Some(o)) = (tp.p.as_ground(), tp.o.as_ground()) else { continue };
        if p.as_iri() == Some(kgnet_rdf::term::RDF_TYPE) {
            if let Some(kind) = o.as_iri().and_then(task_kind_of_class) {
                filter = Some((
                    var.to_owned(),
                    ModelFilter { task_kind: Some(kind), ..Default::default() },
                ));
            }
        }
    }
    let Some((var, mut mf)) = filter else {
        return SparqlMlOperation::PlainUpdate(update);
    };
    for tp in triples {
        if tp.s.as_var() == Some(var.as_str()) {
            let mut probe = UdPredicate {
                var: var.clone(),
                task_kind: mf.task_kind.expect("set above"),
                subject: TermPattern::Var(String::new()),
                object_var: String::new(),
                filter: mf.clone(),
                topk: 10,
            };
            apply_constraint(&mut probe, tp);
            mf = probe.filter;
        }
    }
    SparqlMlOperation::DeleteModels(mf)
}

// ---------------------------------------------------------------------------
// TrainGML parsing (Fig. 8)
// ---------------------------------------------------------------------------

fn parse_traingml(input: &str) -> Result<SparqlMlOperation, SparqlError> {
    // Collect prefixes with the standard prologue parser.
    let mut prologue = kgnet_rdf::sparql::Parser::from_query(input)?;
    prologue.parse_prologue()?;
    let prefixes = prologue.prefixes().clone();

    // Locate TrainGML( ... ) and extract the balanced argument.
    let lower = input.to_ascii_lowercase();
    let at = lower.find("traingml").expect("caller checked");
    let open = input[at..]
        .find('(')
        .map(|i| at + i)
        .ok_or_else(|| SparqlError::parse("TrainGML missing '('"))?;
    let arg = balanced_parens(input, open)
        .ok_or_else(|| SparqlError::parse("TrainGML argument not balanced"))?;
    let json = relaxed_json::parse(arg.trim(), &prefixes)
        .map_err(|e| SparqlError::parse(format!("TrainGML JSON: {e}")))?;

    let name = json.get("Name").and_then(|v| v.as_str()).unwrap_or("unnamed-model").to_owned();
    let task_obj = json
        .get("GML-Task")
        .or_else(|| json.get("GMLTask"))
        .and_then(|v| v.as_object())
        .ok_or_else(|| SparqlError::parse("TrainGML: missing GML-Task object"))?;
    let get_s = |key: &str| -> Option<String> {
        task_obj.get(key).and_then(|v| v.as_str()).map(str::to_owned)
    };
    let task_type =
        get_s("TaskType").ok_or_else(|| SparqlError::parse("TrainGML: missing TaskType"))?;
    let task = match task_kind_of_class(&task_type) {
        Some(TaskKind::NodeClassifier) => {
            let target = get_s("TargetNode")
                .ok_or_else(|| SparqlError::parse("TrainGML: missing TargetNode"))?;
            // The paper's Fig. 8 spells it "NodeLable"; accept both.
            let label = get_s("NodeLabel")
                .or_else(|| get_s("NodeLable"))
                .ok_or_else(|| SparqlError::parse("TrainGML: missing NodeLabel"))?;
            GmlTask::NodeClassification(NcTask { target_type: target, label_predicate: label })
        }
        Some(TaskKind::LinkPredictor) => {
            let source = get_s("SourceNode")
                .ok_or_else(|| SparqlError::parse("TrainGML: missing SourceNode"))?;
            let dest = get_s("DestinationNode")
                .ok_or_else(|| SparqlError::parse("TrainGML: missing DestinationNode"))?;
            let edge = get_s("TargetEdge")
                .ok_or_else(|| SparqlError::parse("TrainGML: missing TargetEdge"))?;
            GmlTask::LinkPrediction(LpTask {
                source_type: source,
                edge_predicate: edge,
                dest_type: dest,
            })
        }
        Some(TaskKind::NodeSimilarity) => {
            let target = get_s("TargetNode")
                .ok_or_else(|| SparqlError::parse("TrainGML: missing TargetNode"))?;
            GmlTask::EntitySimilarity { target_type: target }
        }
        None => {
            return Err(SparqlError::parse(format!("TrainGML: unknown TaskType '{task_type}'")))
        }
    };

    let mut budget = TaskBudget::unlimited();
    if let Some(b) = json.get("Task Budget").or_else(|| json.get("TaskBudget")) {
        if let Some(mem) = b.get("MaxMemory").and_then(|v| v.as_str()) {
            budget.max_memory_bytes = TaskBudget::parse_memory(mem);
        }
        if let Some(mem) = b.get("MaxMemory").and_then(|v| v.as_i64()) {
            budget.max_memory_bytes = Some(mem.max(0) as usize);
        }
        if let Some(t) = b.get("MaxTime").and_then(|v| v.as_str()) {
            budget.max_time_s = TaskBudget::parse_time(t);
        }
        if let Some(t) = b.get("MaxTime").and_then(|v| v.as_f64()) {
            budget.max_time_s = Some(t);
        }
        if let Some(p) = b.get("Priority").and_then(|v| v.as_str()) {
            budget.priority = match p {
                "TrainingTime" | "Time" => Priority::TrainingTime,
                "Memory" => Priority::Memory,
                _ => Priority::ModelScore,
            };
        }
    }

    let method = json.get("Method").and_then(|v| v.as_str()).map(str::to_owned);
    let sampler = json.get("Sampler").and_then(|v| v.as_str()).map(str::to_owned);
    let mut hyperparams = FxHashMap::default();
    if let Some(h) = json.get("Hyperparams").and_then(|v| v.as_object()) {
        for (k, v) in h {
            if let Some(f) = v.as_f64() {
                hyperparams.insert(k.clone(), f);
            }
        }
    }

    Ok(SparqlMlOperation::Train(TrainGmlSpec { name, task, budget, method, hyperparams, sampler }))
}

/// Content between the parenthesis at `open` and its match.
fn balanced_parens(input: &str, open: usize) -> Option<&str> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[open], b'(');
    let mut depth = 0usize;
    let mut in_string: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match in_string {
            Some(q) => {
                if b == q {
                    in_string = None;
                }
            }
            None => match b {
                b'\'' | b'"' => in_string = Some(b),
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&input[open + 1..i]);
                    }
                }
                _ => {}
            },
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = r#"
        PREFIX dblp: <https://www.dblp.org/>
        PREFIX kgnet: <https://www.kgnet.com/>
        SELECT ?title ?venue
        WHERE {
          ?paper a dblp:Publication .
          ?paper dblp:title ?title .
          ?paper ?NodeClassifier ?venue .
          ?NodeClassifier a kgnet:NodeClassifier .
          ?NodeClassifier kgnet:TargetNode dblp:Publication .
          ?NodeClassifier kgnet:NodeLabel dblp:venue .
        }"#;

    #[test]
    fn parses_fig2_node_classifier_query() {
        let op = parse(FIG2).unwrap();
        let SparqlMlOperation::Select(q) = op else { panic!("expected ML select") };
        assert_eq!(q.ud_predicates.len(), 1);
        let ud = &q.ud_predicates[0];
        assert_eq!(ud.var, "NodeClassifier");
        assert_eq!(ud.task_kind, TaskKind::NodeClassifier);
        assert_eq!(ud.subject, TermPattern::Var("paper".into()));
        assert_eq!(ud.object_var, "venue");
        assert_eq!(ud.filter.target_type.as_deref(), Some("https://www.dblp.org/Publication"));
        assert_eq!(ud.filter.node_label.as_deref(), Some("https://www.dblp.org/venue"));
        // Base query keeps only the two data triples.
        assert_eq!(q.base.pattern.triples.len(), 2);
        assert_eq!(q.base.output_vars(), vec!["title", "venue"]);
    }

    #[test]
    fn parses_fig10_link_predictor_query() {
        let op = parse(
            r#"
            PREFIX dblp: <https://www.dblp.org/>
            PREFIX kgnet: <https://www.kgnet.com/>
            SELECT ?author ?affiliation
            WHERE {
              ?author a dblp:Person .
              ?author ?LinkPredictor ?affiliation .
              ?LinkPredictor a kgnet:LinkPredictor .
              ?LinkPredictor kgnet:SourceNode dblp:Person .
              ?LinkPredictor kgnet:DestinationNode dblp:Affiliation .
              ?LinkPredictor kgnet:TopK-Links 10 .
            }"#,
        )
        .unwrap();
        let SparqlMlOperation::Select(q) = op else { panic!("expected ML select") };
        let ud = &q.ud_predicates[0];
        assert_eq!(ud.task_kind, TaskKind::LinkPredictor);
        assert_eq!(ud.topk, 10);
        assert_eq!(ud.filter.source_type.as_deref(), Some("https://www.dblp.org/Person"));
        assert_eq!(ud.filter.destination_type.as_deref(), Some("https://www.dblp.org/Affiliation"));
    }

    #[test]
    fn plain_select_passes_through() {
        let op = parse("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        assert!(matches!(op, SparqlMlOperation::PlainSelect(_)));
    }

    #[test]
    fn parses_fig8_traingml_insert() {
        let op = parse(
            r#"
            PREFIX dblp: <https://www.dblp.org/>
            PREFIX kgnet: <https://www.kgnet.com/>
            Insert into <kgnet> { ?s ?p ?o }
            where { select * from kgnet.TrainGML(
              {Name: 'DBLP_Paper-Venue_Classifier',
               GML-Task:{ TaskType: kgnet:NodeClassifier,
                          TargetNode: dblp:Publication,
                          NodeLable: dblp:publishedIn},
               Task Budget:{ MaxMemory:50GB, MaxTime:1h, Priority:ModelScore} } )}"#,
        )
        .unwrap();
        let SparqlMlOperation::Train(spec) = op else { panic!("expected train") };
        assert_eq!(spec.name, "DBLP_Paper-Venue_Classifier");
        match &spec.task {
            GmlTask::NodeClassification(nc) => {
                assert_eq!(nc.target_type, "https://www.dblp.org/Publication");
                assert_eq!(nc.label_predicate, "https://www.dblp.org/publishedIn");
            }
            other => panic!("unexpected task {other:?}"),
        }
        assert_eq!(spec.budget.max_memory_bytes, Some(50 * 1024 * 1024 * 1024));
        assert_eq!(spec.budget.max_time_s, Some(3600.0));
    }

    #[test]
    fn parses_traingml_link_prediction_with_overrides() {
        let op = parse(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'aff-lp',
                  GML-Task:{ TaskType: kgnet:LinkPredictor,
                             SourceNode: dblp:Person,
                             DestinationNode: dblp:Affiliation,
                             TargetEdge: dblp:affiliatedWith},
                  Method: 'MorsE', Sampler: 'd2h1',
                  Hyperparams: {Epochs: 25, Hidden: 16}})}"#,
        )
        .unwrap();
        let SparqlMlOperation::Train(spec) = op else { panic!("expected train") };
        assert_eq!(spec.method.as_deref(), Some("MorsE"));
        assert_eq!(spec.sampler.as_deref(), Some("d2h1"));
        assert_eq!(spec.hyperparams.get("Epochs"), Some(&25.0));
        assert!(matches!(spec.task, GmlTask::LinkPrediction(_)));
    }

    #[test]
    fn parses_fig9_delete_models() {
        let op = parse(
            r#"
            PREFIX dblp: <https://www.dblp.org/>
            PREFIX kgnet: <https://www.kgnet.com/>
            DELETE {?NodeClassifier ?p ?o}
            WHERE {
              ?NodeClassifier a kgnet:NodeClassifier .
              ?NodeClassifier kgnet:TargetNode dblp:Publication .
              ?NodeClassifier kgnet:NodeLabel dblp:venue . }"#,
        )
        .unwrap();
        let SparqlMlOperation::DeleteModels(filter) = op else { panic!("expected delete") };
        assert_eq!(filter.task_kind, Some(TaskKind::NodeClassifier));
        assert_eq!(filter.target_type.as_deref(), Some("https://www.dblp.org/Publication"));
        assert_eq!(filter.node_label.as_deref(), Some("https://www.dblp.org/venue"));
    }

    #[test]
    fn plain_update_passes_through() {
        let op = parse("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap();
        assert!(matches!(op, SparqlMlOperation::PlainUpdate(_)));
    }

    #[test]
    fn missing_constraints_are_tolerated() {
        // No TargetNode constraint: the filter simply stays open.
        let op = parse(
            r#"PREFIX kgnet: <https://www.kgnet.com/>
               SELECT ?s ?c WHERE {
                 ?s ?M ?c . ?M a kgnet:NodeClassifier . }"#,
        )
        .unwrap();
        let SparqlMlOperation::Select(q) = op else { panic!("expected ML select") };
        assert!(q.ud_predicates[0].filter.target_type.is_none());
    }
}
