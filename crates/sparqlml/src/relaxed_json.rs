//! Parser for the relaxed JSON used by `kgnet.TrainGML({...})` (Fig. 8).
//!
//! The paper's insert queries pass a JSON-ish object with unquoted keys,
//! single-quoted strings, prefixed names (`kgnet:NodeClassifier`) and unit
//! suffixed values (`50GB`, `1h`). This module tolerantly parses that
//! dialect into `serde_json::Value`, expanding prefixed names through the
//! query's `PREFIX` table.

use rustc_hash::FxHashMap;
use serde_json::{Map, Number, Value};

/// Parse relaxed JSON. `prefixes` maps prefix -> namespace IRI for expanding
/// bare `prefix:local` tokens.
pub fn parse(input: &str, prefixes: &FxHashMap<String, String>) -> Result<Value, String> {
    let mut p = P { bytes: input.as_bytes(), input, pos: 0, prefixes };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct P<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    prefixes: &'a FxHashMap<String, String>,
}

impl P<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && (self.bytes[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('\'') | Some('"') => Ok(Value::String(self.quoted()?)),
            Some(c) if c.is_ascii_digit() || c == '-' => self.number_or_word(),
            Some(_) => self.bareword(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = match self.peek() {
                Some('\'') | Some('"') => self.quoted()?,
                _ => self.key_word()?,
            };
            self.skip_ws();
            self.expect(':')?;
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(format!("expected '{c}' at byte {}, found {:?}", self.pos, self.peek()))
        }
    }

    fn quoted(&mut self) -> Result<String, String> {
        let quote = self.peek().expect("caller checked");
        self.pos += 1;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.pos += c.len_utf8();
            if c == quote {
                return Ok(out);
            }
            if c == '\\' {
                if let Some(esc) = self.peek() {
                    self.pos += esc.len_utf8();
                    out.push(esc);
                }
            } else {
                out.push(c);
            }
        }
        Err("unterminated string".into())
    }

    /// A key: letters, digits, `_`, `-`, spaces are NOT included; the
    /// paper's `Task Budget` key is written with a space, so allow interior
    /// single spaces when followed by a word char.
    fn key_word(&mut self) -> Result<String, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                self.pos += 1;
            } else if c == ' ' {
                // Lookahead: space inside a key only if a word char follows
                // before the ':'.
                let rest = &self.input[self.pos + 1..];
                let next = rest.chars().next();
                if next.is_some_and(|n| n.is_ascii_alphanumeric() || n == '_') {
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(format!("expected key at byte {start}"));
        }
        Ok(self.input[start..self.pos].trim().to_owned())
    }

    /// Numbers, possibly with a unit suffix (`50GB`, `1h`): a pure number
    /// becomes a JSON number, a suffixed one stays a string.
    fn number_or_word(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '+' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.input[start..self.pos];
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(i.into()));
        }
        if let Ok(f) = text.parse::<f64>() {
            if let Some(n) = Number::from_f64(f) {
                return Ok(Value::Number(n));
            }
        }
        Ok(Value::String(text.to_owned()))
    }

    /// Bare words: `true`/`false`/`null`, `prefix:local` (expanded), or a
    /// plain token kept as a string.
    fn bareword(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | ':' | '.' | '/' | '#') {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(format!("unexpected character at byte {start}"));
        }
        let word = &self.input[start..self.pos];
        Ok(match word {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            "null" => Value::Null,
            _ => Value::String(self.expand(word)),
        })
    }

    fn expand(&self, word: &str) -> String {
        if let Some((prefix, local)) = word.split_once(':') {
            if let Some(ns) = self.prefixes.get(prefix) {
                return format!("{ns}{local}");
            }
        }
        word.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefixes() -> FxHashMap<String, String> {
        let mut m = FxHashMap::default();
        m.insert("kgnet".to_owned(), "https://www.kgnet.com/".to_owned());
        m.insert("dblp".to_owned(), "https://www.dblp.org/".to_owned());
        m
    }

    #[test]
    fn parses_fig8_style_object() {
        let text = "{Name: 'MAG_Paper-Venue_Classifer',\n\
                    GML-Task:{ TaskType: kgnet:NodeClassifier,\n\
                               TargetNode: dblp:publication,\n\
                               NodeLable: dblp:venue},\n\
                    Task Budget:{ MaxMemory:50GB, MaxTime:1h,\n\
                                  Priority:ModelScore} }";
        let v = parse(text, &prefixes()).unwrap();
        assert_eq!(v["Name"], "MAG_Paper-Venue_Classifer");
        assert_eq!(v["GML-Task"]["TaskType"], "https://www.kgnet.com/NodeClassifier");
        assert_eq!(v["GML-Task"]["TargetNode"], "https://www.dblp.org/publication");
        assert_eq!(v["Task Budget"]["MaxMemory"], "50GB");
        assert_eq!(v["Task Budget"]["Priority"], "ModelScore");
    }

    #[test]
    fn parses_numbers_arrays_bools() {
        let v = parse("{Epochs: 30, LR: 0.01, Tags: [a, 'b c'], Deep: true}", &prefixes()).unwrap();
        assert_eq!(v["Epochs"], 30);
        assert_eq!(v["LR"], 0.01);
        assert_eq!(v["Tags"][1], "b c");
        assert_eq!(v["Deep"], true);
    }

    #[test]
    fn double_quoted_keys_and_values() {
        let v = parse(r#"{"Name": "x", "K": 5}"#, &prefixes()).unwrap();
        assert_eq!(v["Name"], "x");
        assert_eq!(v["K"], 5);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{Name 'x'}", &prefixes()).is_err());
        assert!(parse("{Name: 'x'", &prefixes()).is_err());
        assert!(parse("{} extra", &prefixes()).is_err());
    }

    #[test]
    fn unknown_prefix_stays_verbatim() {
        let v = parse("{T: foo:bar}", &prefixes()).unwrap();
        assert_eq!(v["T"], "foo:bar");
    }
}
