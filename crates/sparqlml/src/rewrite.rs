//! The SPARQL-ML query re-writer (paper §IV.B.3, Figs. 11/12).
//!
//! Rewrites a SPARQL-ML SELECT into (a) a candidate plain-SPARQL rendering
//! with `sql:UDFS.*` calls — the textual form the paper shows — and (b) an
//! executable plan: the stripped data query plus one inference step per
//! user-defined predicate.

use kgnet_rdf::sparql::{Projection, ProjectionItem, SelectQuery, TermPattern};

use crate::opt::RewritePlan;
use crate::parser::{SparqlMlQuery, UdPredicate};

/// One inference step of the rewritten query.
#[derive(Debug, Clone)]
pub struct InferenceStep {
    /// The predicate being evaluated.
    pub ud: UdPredicate,
    /// The model chosen by the optimizer.
    pub model_uri: String,
    /// The chosen plan.
    pub plan: RewritePlan,
}

/// A rewritten SPARQL-ML query.
#[derive(Debug, Clone)]
pub struct RewrittenQuery {
    /// The executable data query (UD triples removed, no modifiers).
    pub base: SelectQuery,
    /// Inference steps, applied in order after the base query.
    pub steps: Vec<InferenceStep>,
    /// Candidate plain-SPARQL rendering (Figs. 11/12 style), for logging
    /// and endpoint submission.
    pub sparql: String,
}

/// Build the rewritten query from a parsed ML query, the chosen model per
/// predicate and the chosen plan per predicate.
pub fn rewrite(query: &SparqlMlQuery, models: &[String], plans: &[RewritePlan]) -> RewrittenQuery {
    assert_eq!(models.len(), query.ud_predicates.len(), "one model per predicate");
    assert_eq!(plans.len(), query.ud_predicates.len(), "one plan per predicate");
    let steps: Vec<InferenceStep> = query
        .ud_predicates
        .iter()
        .zip(models.iter().zip(plans))
        .map(|(ud, (m, &plan))| InferenceStep { ud: ud.clone(), model_uri: m.clone(), plan })
        .collect();

    // Strip solution modifiers from the executable base: they are re-applied
    // after the inferred columns are filled.
    let mut base = query.base.clone();
    base.distinct = false;
    base.limit = None;
    base.offset = None;
    base.order_by.clear();

    let sparql = render(query, &steps);
    RewrittenQuery { base, steps, sparql }
}

/// Render the candidate SPARQL text (the Fig. 11 / Fig. 12 shapes).
fn render(query: &SparqlMlQuery, steps: &[InferenceStep]) -> String {
    let mut out = String::from("SELECT");
    let projected: Vec<String> = match &query.base.projection {
        Projection::All => query.base.output_vars(),
        Projection::Items(items) => items
            .iter()
            .map(|i| match i {
                ProjectionItem::Var(v) => v.clone(),
                ProjectionItem::Agg { alias, .. } => alias.clone(),
            })
            .collect(),
    };
    let inferred: Vec<&str> = steps.iter().map(|s| s.ud.object_var.as_str()).collect();
    for v in &projected {
        if inferred.contains(&v.as_str()) {
            continue; // rendered as a UDF projection below
        }
        out.push_str(&format!(" ?{v}"));
    }
    for step in steps {
        let subject = render_term(&step.ud.subject);
        match step.plan {
            RewritePlan::PerBinding => {
                out.push_str(&format!(
                    "\n  sql:UDFS.getNodeClass(<{}>, {subject}) as ?{}",
                    step.model_uri, step.ud.object_var
                ));
            }
            RewritePlan::Dictionary => {
                out.push_str(&format!(
                    "\n  sql:UDFS.getKeyValue(?{}_dic, {subject}) as ?{}",
                    step.ud.object_var, step.ud.object_var
                ));
            }
        }
    }
    out.push_str("\nWHERE {\n");
    for tp in &query.base.pattern.triples {
        out.push_str(&format!("  {tp}\n"));
    }
    for step in steps {
        if step.plan == RewritePlan::Dictionary {
            out.push_str(&format!(
                "  {{ SELECT sql:UDFS.getNodeClassDict(<{}>) as ?{}_dic WHERE {{ }} }}\n",
                step.model_uri, step.ud.object_var
            ));
        }
    }
    out.push('}');
    out
}

fn render_term(t: &TermPattern) -> String {
    match t {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Ground(g) => g.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, SparqlMlOperation};

    fn fig2_query() -> SparqlMlQuery {
        let op = parse(
            r#"
            PREFIX dblp: <https://www.dblp.org/>
            PREFIX kgnet: <https://www.kgnet.com/>
            SELECT ?title ?venue WHERE {
              ?paper a dblp:Publication .
              ?paper dblp:title ?title .
              ?paper ?NodeClassifier ?venue .
              ?NodeClassifier a kgnet:NodeClassifier .
              ?NodeClassifier kgnet:TargetNode dblp:Publication .
              ?NodeClassifier kgnet:NodeLabel dblp:venue . }"#,
        )
        .unwrap();
        match op {
            SparqlMlOperation::Select(q) => q,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn per_binding_renders_fig11_shape() {
        let q = fig2_query();
        let rw =
            rewrite(&q, &["https://www.kgnet.com/model/nc/m1".into()], &[RewritePlan::PerBinding]);
        assert!(rw.sparql.contains(
            "sql:UDFS.getNodeClass(<https://www.kgnet.com/model/nc/m1>, ?paper) as ?venue"
        ));
        assert!(!rw.sparql.contains("getKeyValue"));
        assert_eq!(rw.steps.len(), 1);
    }

    #[test]
    fn dictionary_renders_fig12_shape() {
        let q = fig2_query();
        let rw =
            rewrite(&q, &["https://www.kgnet.com/model/nc/m1".into()], &[RewritePlan::Dictionary]);
        assert!(rw.sparql.contains("sql:UDFS.getKeyValue(?venue_dic, ?paper) as ?venue"));
        assert!(rw.sparql.contains("getNodeClassDict"));
        assert!(rw.sparql.contains("{ SELECT"));
    }

    #[test]
    fn base_query_loses_modifiers() {
        let mut q = fig2_query();
        q.base.limit = Some(5);
        q.base.distinct = true;
        let rw = rewrite(&q, &["m".into()], &[RewritePlan::Dictionary]);
        assert_eq!(rw.base.limit, None);
        assert!(!rw.base.distinct);
    }
}
