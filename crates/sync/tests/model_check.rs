//! Deterministic model-check suite for the lock-site contention profiler:
//! concurrent tracked acquisitions never lose a counter increment, no
//! matter how the scheduler interleaves them.
//!
//! Compiled only under `--cfg kgnet_check`, where the facade routes the
//! `Mutex`/`RwLock` underneath [`lock_tracked`]/[`read_tracked`]/
//! [`write_tracked`] to the `kgnet-check` scheduler — so `explore` drives
//! the *production* tracked-acquire paths through distinct interleavings
//! while the profiler's counters ride along. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg kgnet_check" cargo test -p kgnet-sync --test model_check
//! ```
//!
//! The [`SyncSite`] statics are process-wide and the checker replays the
//! closure thousands of times, so every assertion is on the *delta* of a
//! snapshot taken at the top of the execution — never on absolute counts.
//!
//! Budgets come from `kgnet_check::Config::default()` and can be capped in
//! CI via `KGNET_CHECK_MAX_SCHEDULES` / `KGNET_CHECK_RANDOM_ITERS`; the
//! coverage floors below only apply when no cap is set.

#![cfg(kgnet_check)]

use std::sync::Arc;

use kgnet_check::{explore, Config, Report};
use kgnet_sync::profile::SyncSite;
use kgnet_sync::thread;
use kgnet_sync::tracked::{read_tracked, write_tracked, TrackedMutex};
use kgnet_sync::RwLock;

static MUTEX_SITE: SyncSite = SyncSite::new("sync.model-check.mutex");
static READ_SITE: SyncSite = SyncSite::new("sync.model-check.read");
static WRITE_SITE: SyncSite = SyncSite::new("sync.model-check.write");

fn cfg() -> Config {
    Config {
        preemption_bound: Some(2),
        max_schedules: 3_000,
        random_iters: 3_000,
        ..Config::default()
    }
}

fn assert_coverage(suite: &str, reports: &[Report], floor: usize) {
    let distinct: usize = reports.iter().map(|r| r.distinct_schedules).sum();
    let runs: usize = reports.iter().map(|r| r.schedules).sum();
    println!("model-check[{suite}]: {runs} schedules run, {distinct} distinct");
    let capped = std::env::var_os("KGNET_CHECK_MAX_SCHEDULES").is_some()
        || std::env::var_os("KGNET_CHECK_RANDOM_ITERS").is_some();
    if !capped {
        assert!(distinct >= floor, "{suite}: only {distinct} distinct schedules (floor {floor})");
    }
}

/// Three threads funnel through one [`TrackedMutex`]: in every
/// interleaving the protected data sees all three writes *and* the site's
/// acquire counter sees all three acquisitions — profiling must never
/// trade away an increment, and contended acquisitions can never
/// outnumber acquisitions.
#[test]
fn concurrent_tracked_acquires_lose_no_increments() {
    let report = explore(&cfg(), || {
        let before = MUTEX_SITE.snapshot();
        let shared = Arc::new(TrackedMutex::new(&MUTEX_SITE, 0u64));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let shared = shared.clone();
                thread::spawn(move || *shared.lock() += 1)
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(*shared.lock(), 3, "a mutex-protected write was lost");
        let after = MUTEX_SITE.snapshot();
        // 3 worker acquisitions + the assertion's own lock above.
        assert_eq!(after.acquires - before.acquires, 4, "tracked acquisitions lost an increment");
        assert!(
            after.contended - before.contended <= after.acquires - before.acquires,
            "more contended acquisitions than acquisitions"
        );
    });
    assert_coverage("sync-tracked-mutex", &[report], 50);
}

/// Two tracked readers race one tracked writer on an `RwLock`: the reader
/// and writer sites account for every acquisition separately, and the
/// writer's increments are never lost to a racing reader.
#[test]
fn tracked_rwlock_attributes_reads_and_writes_to_their_sites() {
    let report = explore(&cfg(), || {
        let read_before = READ_SITE.snapshot();
        let write_before = WRITE_SITE.snapshot();
        let shared = Arc::new(RwLock::new(0u64));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let shared = shared.clone();
                thread::spawn(move || *read_tracked(&shared, &READ_SITE))
            })
            .collect();
        let writer = {
            let shared = shared.clone();
            thread::spawn(move || *write_tracked(&shared, &WRITE_SITE) = 7)
        };
        for r in readers {
            // Readers observe either the initial or the written value,
            // never anything else.
            let seen = r.join().unwrap();
            assert!(seen == 0 || seen == 7, "reader saw torn value {seen}");
        }
        writer.join().unwrap();
        assert_eq!(*read_tracked(&shared, &READ_SITE), 7);
        let read_after = READ_SITE.snapshot();
        let write_after = WRITE_SITE.snapshot();
        // 2 racing readers + the final assertion read; exactly 1 write.
        assert_eq!(read_after.acquires - read_before.acquires, 3);
        assert_eq!(write_after.acquires - write_before.acquires, 1);
    });
    assert_coverage("sync-tracked-rwlock", &[report], 50);
}
