//! Per-site lock-contention instruments: the *pure-atomic* fast path.
//!
//! A [`SyncSite`] is a static label attached to one lock (or one family of
//! locks guarding the same resource). The tracked acquire helpers in
//! [`crate::tracked`] classify every acquisition as uncontended (the
//! try-acquire succeeded immediately) or contended (the caller had to
//! block) and record it here. This file is the instrumentation hot path
//! and is policed by the `obs-hot-path` lint rule exactly like
//! `crates/obs/src/metrics.rs`: recording an acquire must cost only atomic
//! operations — no locks, no allocation, no syscalls — so an uncontended
//! facade lock stays as cheap as an untracked one plus a couple of
//! relaxed counter bumps.
//!
//! The counters are deliberately plain `std` atomics in *both* build
//! modes (normal and `--cfg kgnet_check`): they are measurements with no
//! synchronisation role, exactly like `kgnet_linalg::memtrack`, so they
//! must not add scheduler yield points to model-checked executions. The
//! `model_check` suite of this crate still proves the increments are
//! lossless under concurrent acquires, because `fetch_add` is atomic
//! regardless of how the checker interleaves the surrounding code.
//!
//! Cold paths — registering a site the first time it records, enumerating
//! all sites for a metrics harvest — live in [`crate::sites`].

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

thread_local! {
    /// Nanoseconds this thread has spent blocked on tracked acquires.
    /// Sessions read the delta around a request to attribute lock wait to
    /// that request without any cross-thread bookkeeping.
    static THREAD_WAIT_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Total nanoseconds the *calling thread* has spent blocked on tracked
/// lock acquires since it started. Take a delta around a unit of work to
/// attribute lock wait to it.
pub fn thread_wait_nanos() -> u64 {
    THREAD_WAIT_NANOS.with(Cell::get)
}

/// A static label naming one lock acquisition site, carrying its
/// contention counters. Declare one per instrumented lock:
///
/// ```
/// use kgnet_sync::profile::SyncSite;
/// static SITE: SyncSite = SyncSite::new("mycrate.job_table");
/// ```
///
/// and hand it to the helpers in [`crate::tracked`] (or call
/// [`record_uncontended`](SyncSite::record_uncontended) /
/// [`record_contended`](SyncSite::record_contended) directly from a
/// hand-rolled acquire loop, as the MVCC writer gate does).
pub struct SyncSite {
    name: &'static str,
    registered: AtomicBool,
    acquires: AtomicU64,
    contended: AtomicU64,
    wait_nanos: AtomicU64,
}

impl SyncSite {
    /// A new site; usable in `static` position.
    pub const fn new(name: &'static str) -> SyncSite {
        SyncSite {
            name,
            registered: AtomicBool::new(false),
            acquires: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_nanos: AtomicU64::new(0),
        }
    }

    /// The site's label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one acquisition that succeeded without blocking. The fast
    /// path: one flag load plus one relaxed counter bump.
    #[inline]
    pub fn record_uncontended(&'static self) {
        self.ensure_registered();
        self.acquires.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one acquisition that had to block for `wait_nanos`.
    #[inline]
    pub fn record_contended(&'static self, wait_nanos: u64) {
        self.ensure_registered();
        self.acquires.fetch_add(1, Ordering::Relaxed);
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.wait_nanos.fetch_add(wait_nanos, Ordering::Relaxed);
        THREAD_WAIT_NANOS.with(|c| c.set(c.get().saturating_add(wait_nanos)));
    }

    /// Consistent-enough point read of the counters (each counter is read
    /// once; relaxed, like all monotonic metric snapshots).
    pub fn snapshot(&self) -> SiteSnapshot {
        SiteSnapshot {
            name: self.name,
            acquires: self.acquires.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            wait_nanos: self.wait_nanos.load(Ordering::Relaxed),
        }
    }

    /// First-record hook: hand the site to the global registry exactly
    /// once. The common case is one already-`true` flag load.
    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Acquire) {
            crate::sites::register(self);
        }
    }

    /// Claim the registration slot (called by [`crate::sites::register`]
    /// under its lock). True exactly once per site.
    pub(crate) fn mark_registered(&self) -> bool {
        !self.registered.swap(true, Ordering::AcqRel)
    }
}

impl std::fmt::Debug for SyncSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("SyncSite")
            .field("name", &snap.name)
            .field("acquires", &snap.acquires)
            .field("contended", &snap.contended)
            .field("wait_nanos", &snap.wait_nanos)
            .finish()
    }
}

/// Point-in-time counters of one [`SyncSite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSnapshot {
    /// The site's label.
    pub name: &'static str,
    /// Total tracked acquisitions (uncontended + contended).
    pub acquires: u64,
    /// Acquisitions that had to block.
    pub contended: u64,
    /// Total nanoseconds spent blocked across contended acquisitions.
    pub wait_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_classify_and_accumulate() {
        static SITE: SyncSite = SyncSite::new("test.profile.classify");
        let before = SITE.snapshot();
        SITE.record_uncontended();
        SITE.record_contended(250);
        SITE.record_contended(750);
        let after = SITE.snapshot();
        assert_eq!(after.acquires - before.acquires, 3);
        assert_eq!(after.contended - before.contended, 2);
        assert_eq!(after.wait_nanos - before.wait_nanos, 1000);
        assert_eq!(after.name, "test.profile.classify");
    }

    #[test]
    fn contended_waits_accrue_to_the_calling_thread() {
        static SITE: SyncSite = SyncSite::new("test.profile.thread-wait");
        let base = thread_wait_nanos();
        SITE.record_uncontended(); // uncontended acquires add no wait
        assert_eq!(thread_wait_nanos(), base);
        SITE.record_contended(40);
        SITE.record_contended(2);
        assert_eq!(thread_wait_nanos() - base, 42);
        // Another thread's waits are invisible here.
        let handle = crate::thread::spawn(|| {
            SITE.record_contended(1_000_000);
            thread_wait_nanos()
        });
        let theirs = handle.join().unwrap();
        assert!(theirs >= 1_000_000);
        assert_eq!(thread_wait_nanos() - base, 42);
    }
}
