//! Contention-tracked acquire helpers and lock wrappers.
//!
//! These functions acquire a facade lock while classifying the
//! acquisition against a static [`SyncSite`]: a try-acquire that succeeds
//! immediately records as uncontended (pure counter bump, no timing
//! syscall), anything else falls back to a timed blocking acquire and
//! records the wait. They return the *plain* facade guards — callers'
//! types do not change when a lock becomes tracked.
//!
//! Under `--cfg kgnet_check` the model checker's locks expose no
//! try-acquire, and wall-clock timing is meaningless across explored
//! schedules anyway, so the helpers degrade to a plain acquire recorded
//! as uncontended: acquisition *counts* stay exact (that is what the
//! model-check case asserts), wait classification is a real-runtime-only
//! concern.

use crate::profile::SyncSite;
use crate::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquire `lock`, recording the acquisition against `site`.
#[cfg(not(kgnet_check))]
#[inline]
pub fn lock_tracked<'a, T: ?Sized>(
    lock: &'a Mutex<T>,
    site: &'static SyncSite,
) -> MutexGuard<'a, T> {
    if let Some(guard) = lock.try_lock() {
        site.record_uncontended();
        return guard;
    }
    let t0 = std::time::Instant::now();
    let guard = lock.lock();
    site.record_contended(elapsed_nanos(t0));
    guard
}

/// Acquire shared read access to `lock`, recording against `site`.
#[cfg(not(kgnet_check))]
#[inline]
pub fn read_tracked<'a, T: ?Sized>(
    lock: &'a RwLock<T>,
    site: &'static SyncSite,
) -> RwLockReadGuard<'a, T> {
    if let Some(guard) = lock.try_read() {
        site.record_uncontended();
        return guard;
    }
    let t0 = std::time::Instant::now();
    let guard = lock.read();
    site.record_contended(elapsed_nanos(t0));
    guard
}

/// Acquire exclusive write access to `lock`, recording against `site`.
#[cfg(not(kgnet_check))]
#[inline]
pub fn write_tracked<'a, T: ?Sized>(
    lock: &'a RwLock<T>,
    site: &'static SyncSite,
) -> RwLockWriteGuard<'a, T> {
    if let Some(guard) = lock.try_write() {
        site.record_uncontended();
        return guard;
    }
    let t0 = std::time::Instant::now();
    let guard = lock.write();
    site.record_contended(elapsed_nanos(t0));
    guard
}

#[cfg(not(kgnet_check))]
fn elapsed_nanos(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Model-check build: the checker's mutex has no try path; count the
/// acquire, skip wait classification.
#[cfg(kgnet_check)]
#[inline]
pub fn lock_tracked<'a, T: ?Sized>(
    lock: &'a Mutex<T>,
    site: &'static SyncSite,
) -> MutexGuard<'a, T> {
    let guard = lock.lock();
    site.record_uncontended();
    guard
}

/// Model-check build: plain read acquire, counted as uncontended.
#[cfg(kgnet_check)]
#[inline]
pub fn read_tracked<'a, T: ?Sized>(
    lock: &'a RwLock<T>,
    site: &'static SyncSite,
) -> RwLockReadGuard<'a, T> {
    let guard = lock.read();
    site.record_uncontended();
    guard
}

/// Model-check build: plain write acquire, counted as uncontended.
#[cfg(kgnet_check)]
#[inline]
pub fn write_tracked<'a, T: ?Sized>(
    lock: &'a RwLock<T>,
    site: &'static SyncSite,
) -> RwLockWriteGuard<'a, T> {
    let guard = lock.write();
    site.record_uncontended();
    guard
}

/// A mutex bound to its [`SyncSite`]: every `lock()` is tracked.
pub struct TrackedMutex<T: ?Sized> {
    site: &'static SyncSite,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// A new tracked mutex holding `value`, attributed to `site`.
    pub fn new(site: &'static SyncSite, value: T) -> TrackedMutex<T> {
        TrackedMutex { site, inner: Mutex::new(value) }
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Acquire the lock, recording the acquisition.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        lock_tracked(&self.inner, self.site)
    }

    /// The site this mutex reports under.
    pub fn site(&self) -> &'static SyncSite {
        self.site
    }
}

/// A reader-writer lock bound to its [`SyncSite`]: every `read()` and
/// `write()` is tracked.
pub struct TrackedRwLock<T: ?Sized> {
    site: &'static SyncSite,
    inner: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// A new tracked lock holding `value`, attributed to `site`.
    pub fn new(site: &'static SyncSite, value: T) -> TrackedRwLock<T> {
        TrackedRwLock { site, inner: RwLock::new(value) }
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquire shared read access, recording the acquisition.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        read_tracked(&self.inner, self.site)
    }

    /// Acquire exclusive write access, recording the acquisition.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        write_tracked(&self.inner, self.site)
    }

    /// The site this lock reports under.
    pub fn site(&self) -> &'static SyncSite {
        self.site
    }
}

#[cfg(all(test, not(kgnet_check)))]
mod tests {
    use super::*;
    use crate::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn uncontended_acquires_count_without_wait() {
        static SITE: SyncSite = SyncSite::new("test.tracked.uncontended");
        let m = Mutex::new(7);
        for _ in 0..5 {
            let g = lock_tracked(&m, &SITE);
            assert_eq!(*g, 7);
        }
        let snap = SITE.snapshot();
        assert_eq!(snap.acquires, 5);
        assert_eq!(snap.contended, 0);
        assert_eq!(snap.wait_nanos, 0);
    }

    #[test]
    fn blocked_acquires_record_wait_time() {
        static SITE: SyncSite = SyncSite::new("test.tracked.contended");
        static HOLDING: AtomicBool = AtomicBool::new(false);
        let m = crate::Arc::new(Mutex::new(0u32));
        let holder = {
            let m = crate::Arc::clone(&m);
            crate::thread::spawn(move || {
                let mut g = m.lock();
                HOLDING.store(true, Ordering::Release);
                std::thread::sleep(Duration::from_millis(30));
                *g += 1;
            })
        };
        while !HOLDING.load(Ordering::Acquire) {
            crate::thread::yield_now();
        }
        let g = lock_tracked(&m, &SITE);
        assert_eq!(*g, 1);
        drop(g);
        holder.join().unwrap();
        let snap = SITE.snapshot();
        assert_eq!(snap.acquires, 1);
        assert_eq!(snap.contended, 1);
        assert!(snap.wait_nanos > 0, "contended acquire recorded no wait");
    }

    #[test]
    fn tracked_wrappers_report_both_rwlock_modes() {
        static SITE: SyncSite = SyncSite::new("test.tracked.rwlock");
        let l = TrackedRwLock::new(&SITE, vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        let snap = l.site().snapshot();
        assert_eq!(snap.acquires, 3);
        assert_eq!(snap.contended, 0);
    }
}
