//! kgnet-sync: the workspace's single doorway to blocking synchronisation.
//!
//! Every crate that holds a lock, parks on a condvar, spins an atomic or
//! spawns a worker thread imports the primitive from here (`kgnet-lint`
//! enforces this — direct `std::sync`/`parking_lot` lock imports outside
//! this facade and `vendor/` fail CI). In a normal build the facade costs
//! nothing: mutexes and rwlocks are the `parking_lot` non-poisoning
//! wrappers, condvars/atomics/threads are thin `std` re-exports.
//!
//! Compiled with `RUSTFLAGS="--cfg kgnet_check"`, the same names resolve to
//! the instrumented primitives of the `kgnet-check` deterministic model
//! checker: one logical thread runs at a time, every operation is a
//! schedule point, and the `#[cfg(kgnet_check)]`-gated `model_check` test
//! suites systematically explore interleavings of the real production code
//! paths (MVCC commit/pin, job-queue cancel/complete, plan-cache fills).
//!
//! API notes shared by both modes:
//! - locks do not poison: a panic while holding a guard simply unlocks;
//! - [`Condvar`] waits on this facade's [`MutexGuard`] and follows the
//!   std shape (`wait` consumes and returns the guard, `wait_timeout`
//!   additionally returns a [`WaitTimeoutResult`]);
//! - [`thread::spawn`]/[`thread::Builder`] mirror `std::thread`.

#![forbid(unsafe_code)]

pub mod profile;
pub mod sites;
pub mod tracked;

// ---- model-checking mode: everything routes through the scheduler ----

#[cfg(kgnet_check)]
pub use kgnet_check::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(kgnet_check)]
pub use kgnet_check::sync::atomic;

#[cfg(kgnet_check)]
pub use kgnet_check::thread;

// ---- normal mode: parking_lot locks, std condvar/atomics/threads ----

#[cfg(not(kgnet_check))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// `std::sync::atomic` re-exported under the facade's roof.
#[cfg(not(kgnet_check))]
pub mod atomic {
    pub use std::sync::atomic::{
        AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

/// `std::thread` spawn/join/yield surface under the facade's roof.
#[cfg(not(kgnet_check))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, Builder, JoinHandle};
}

#[cfg(not(kgnet_check))]
mod condvar {
    use std::sync::PoisonError;
    use std::time::Duration;

    use super::MutexGuard;

    /// Outcome of a [`Condvar::wait_timeout`].
    pub struct WaitTimeoutResult {
        pub(super) timed_out: bool,
    }

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    /// A condition variable that waits on the facade's [`MutexGuard`]
    /// (which in normal builds *is* the std guard) and never reports
    /// poisoning.
    #[derive(Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub const fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
        }

        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
            let (guard, res) =
                self.0.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner);
            (guard, WaitTimeoutResult { timed_out: res.timed_out() })
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(not(kgnet_check))]
pub use condvar::{Condvar, WaitTimeoutResult};

// Shared-ownership types are the same in both modes; re-exported so facade
// users can pull their whole sync vocabulary from one place.
pub use std::sync::{Arc, Weak};

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicUsize, Ordering};
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let worker = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (flag, cv) = &*pair;
                *flag.lock() = true;
                cv.notify_one();
            })
        };
        let (flag, cv) = &*pair;
        let mut g = flag.lock();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        worker.join().unwrap();
    }

    #[test]
    fn wait_timeout_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let (_g, res) = cv.wait_timeout(g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_and_atomics_work() {
        let lock = Arc::new(RwLock::new(1u32));
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let n = Arc::clone(&n);
                thread::Builder::new()
                    .name("facade-test".to_owned())
                    .spawn(move || {
                        n.fetch_add(*lock.read() as usize, Ordering::SeqCst);
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        *lock.write() += 1;
        assert_eq!(n.load(Ordering::SeqCst), 2);
        assert_eq!(*lock.read(), 2);
    }
}
