//! Cold-path global registry of [`SyncSite`]s.
//!
//! A site registers itself the first time it records an acquisition; the
//! registry exists so a metrics harvest (the server's `refresh_system`)
//! can enumerate every site that has ever been touched without the
//! harvester knowing the full static list. Registration and enumeration
//! take a plain `std` mutex — both are cold: registration happens once
//! per site per process, enumeration once per metrics scrape. Nothing
//! here runs on a lock-acquire fast path.

use crate::profile::{SiteSnapshot, SyncSite};

/// Every site that has recorded at least one acquisition.
static SITES: std::sync::Mutex<Vec<&'static SyncSite>> = std::sync::Mutex::new(Vec::new());

/// Add `site` to the registry if it is not there yet. Called from
/// [`SyncSite::record_uncontended`]/[`record_contended`]'s slow path
/// (first record for the site); idempotent under races because the
/// site's own registration flag is claimed under the registry lock.
pub(crate) fn register(site: &'static SyncSite) {
    let mut sites = SITES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if site.mark_registered() {
        sites.push(site);
    }
}

/// Snapshots of every registered site, in registration order.
pub fn all() -> Vec<SiteSnapshot> {
    let sites = SITES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    sites.iter().map(|s| s.snapshot()).collect()
}

/// Process-wide totals over every registered site.
pub fn totals() -> SiteTotals {
    let mut totals = SiteTotals::default();
    let sites = SITES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for site in sites.iter() {
        let snap = site.snapshot();
        totals.acquires += snap.acquires;
        totals.contended += snap.contended;
        totals.wait_nanos += snap.wait_nanos;
    }
    totals
}

/// Sum of all sites' counters at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteTotals {
    /// Total tracked acquisitions across all sites.
    pub acquires: u64,
    /// Acquisitions that had to block, across all sites.
    pub contended: u64,
    /// Nanoseconds spent blocked, across all sites.
    pub wait_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_appear_once_and_feed_totals() {
        static SITE: SyncSite = SyncSite::new("test.sites.once");
        let count_named = || all().iter().filter(|s| s.name == "test.sites.once").count();
        SITE.record_uncontended();
        SITE.record_uncontended();
        SITE.record_contended(9);
        assert_eq!(count_named(), 1, "duplicate registration");
        let snap = all().into_iter().find(|s| s.name == "test.sites.once").unwrap();
        assert_eq!(snap.acquires, 3);
        assert_eq!(snap.contended, 1);
        assert_eq!(snap.wait_nanos, 9);
        let t = totals();
        assert!(t.acquires >= snap.acquires);
        assert!(t.wait_nanos >= snap.wait_nanos);
    }

    #[test]
    fn concurrent_first_records_register_exactly_once() {
        static SITE: SyncSite = SyncSite::new("test.sites.race");
        let handles: Vec<_> =
            (0..8).map(|_| crate::thread::spawn(|| SITE.record_uncontended())).collect();
        for h in handles {
            h.join().unwrap();
        }
        let named = all().iter().filter(|s| s.name == "test.sites.race").count();
        assert_eq!(named, 1);
        let snap = all().into_iter().find(|s| s.name == "test.sites.race").unwrap();
        assert_eq!(snap.acquires, 8);
    }
}
