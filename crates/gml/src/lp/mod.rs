//! Link-prediction trainers: MorsE and the KGE family.

pub mod kge;
pub mod morse;

use kgnet_linalg::Matrix;

use crate::config::{GmlMethodKind, GnnConfig, TrainReport};
use crate::control::TrainControl;
use crate::dataset::LpDataset;
use crate::metrics::{hits_at, mrr, rank_of, Rank};

/// A trained link predictor with a full source x destination score matrix.
pub struct TrainedLp {
    /// Training/evaluation record (`test_metric` is Hits@10).
    pub report: TrainReport,
    /// Score of every dataset source against every candidate destination
    /// (`sources x destinations`, higher is better).
    pub scores: Matrix,
    /// Source embedding per dataset source (`sources x d`).
    pub source_embeddings: Matrix,
}

impl TrainedLp {
    /// Top-k destination indexes (into the dataset's `destinations`) for a
    /// source position, best first.
    pub fn topk(&self, source_pos: usize, k: usize) -> Vec<(usize, f32)> {
        let row = self.scores.row(source_pos);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal));
        idx.into_iter().take(k).map(|i| (i, row[i])).collect()
    }
}

/// Dispatch a link-prediction training run by method kind.
///
/// Panics if `method` is not an LP method.
pub fn train_lp(method: GmlMethodKind, data: &LpDataset, cfg: &GnnConfig) -> TrainedLp {
    train_lp_ctl(method, data, cfg, TrainControl::NONE)
}

/// [`train_lp`] with a cancellation handle polled between epochs: raising
/// the flag stops the run at the next epoch boundary with a partial result.
pub fn train_lp_ctl(
    method: GmlMethodKind,
    data: &LpDataset,
    cfg: &GnnConfig,
    ctl: TrainControl<'_>,
) -> TrainedLp {
    match method {
        GmlMethodKind::Morse => morse::train(data, cfg, ctl),
        GmlMethodKind::TransE
        | GmlMethodKind::DistMult
        | GmlMethodKind::ComplEx
        | GmlMethodKind::RotatE => kge::train(method, data, cfg, ctl),
        other => panic!("{other} is not a link-prediction method"),
    }
}

/// Evaluate ranking metrics over a set of edges. `score_all(src_node)` must
/// return one score per candidate destination, aligned with
/// `data.destinations`.
pub(crate) fn rank_edges(
    data: &LpDataset,
    edge_idx: &[u32],
    mut score_all: impl FnMut(u32) -> Vec<f32>,
) -> (f64, f64) {
    let dest_pos = |node: u32| data.destinations.iter().position(|&d| d == node);
    let mut ranks: Vec<Rank> = Vec::with_capacity(edge_idx.len());
    for &i in edge_idx {
        let (s, d) = data.edges[i as usize];
        let Some(true_pos) = dest_pos(d) else { continue };
        let scores = score_all(s);
        ranks.push(rank_of(true_pos, &scores));
    }
    (hits_at(10, &ranks), mrr(&ranks))
}

/// Assemble the final [`TrainedLp`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_lp(
    method: GmlMethodKind,
    data: &LpDataset,
    scores: Matrix,
    source_embeddings: Matrix,
    loss_curve: Vec<f32>,
    train_time_s: f64,
    peak_mem_bytes: usize,
    inference_time_ms: f64,
) -> TrainedLp {
    // Rank test/valid edges straight from the precomputed score matrix.
    let src_pos = |node: u32| data.sources.iter().position(|&s| s == node);
    let eval = |idx: &[u32]| -> (f64, f64) {
        rank_edges(data, idx, |s| match src_pos(s) {
            Some(p) => scores.row(p).to_vec(),
            None => vec![0.0; data.destinations.len()],
        })
    };
    let (test_hits, test_mrr) = eval(&data.split.test);
    let (valid_hits, _) = eval(&data.split.valid);
    TrainedLp {
        report: TrainReport {
            method,
            train_time_s,
            peak_mem_bytes,
            test_metric: test_hits,
            valid_metric: valid_hits,
            mrr: test_mrr,
            loss_curve,
            n_nodes: data.graph.n_nodes(),
            n_edges: data.graph.n_edges(),
            inference_time_ms,
        },
        scores,
        source_embeddings,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use kgnet_datagen::vocab::dblp as v;
    use kgnet_datagen::{generate_dblp, DblpConfig};
    use kgnet_graph::{LpTask, SplitRatios};

    use crate::dataset::{build_lp_dataset, LpDataset};

    /// A tiny DBLP LP dataset for trainer smoke tests. Uses extra
    /// affiliations so Hits@10 is not trivially perfect.
    pub fn tiny_lp() -> LpDataset {
        let cfg = DblpConfig {
            n_affiliations: 40,
            n_authors: 120,
            n_papers: 150,
            ..DblpConfig::tiny(29)
        };
        let (st, _) = generate_dblp(&cfg);
        build_lp_dataset(
            &st,
            &LpTask {
                source_type: v::PERSON.into(),
                edge_predicate: v::AFFILIATED_WITH.into(),
                dest_type: v::AFFILIATION.into(),
            },
            SplitRatios::default(),
            7,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_raised_cancel_runs_zero_epochs() {
        use std::sync::atomic::AtomicBool;
        let data = testutil::tiny_lp();
        let cfg = GnnConfig { epochs: 5000, ..GnnConfig::fast_test() };
        let flag = AtomicBool::new(true);
        for method in [GmlMethodKind::Morse, GmlMethodKind::TransE, GmlMethodKind::DistMult] {
            let out = train_lp_ctl(method, &data, &cfg, TrainControl::with_flag(&flag));
            assert!(
                out.report.loss_curve.is_empty(),
                "{method} ran {} epochs after cancellation",
                out.report.loss_curve.len()
            );
        }
        // The unsupervised similarity trainer polls the same handle.
        let (_, report) =
            kge::train_unsupervised_ctl(&data.graph, &cfg, TrainControl::with_flag(&flag));
        assert!(report.loss_curve.is_empty());
    }

    #[test]
    fn topk_orders_by_score() {
        let scores = Matrix::from_vec(1, 4, vec![0.2, 0.9, -1.0, 0.5]);
        let lp = TrainedLp {
            report: TrainReport {
                method: GmlMethodKind::TransE,
                train_time_s: 0.0,
                peak_mem_bytes: 0,
                test_metric: 0.0,
                valid_metric: 0.0,
                mrr: 0.0,
                loss_curve: vec![],
                n_nodes: 0,
                n_edges: 0,
                inference_time_ms: 0.0,
            },
            scores,
            source_embeddings: Matrix::zeros(1, 1),
        };
        let top = lp.topk(0, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 3);
    }
}
