//! Knowledge-graph embedding link predictors: TransE, DistMult, ComplEx,
//! RotatE (the KGE branch of the paper's Fig. 5 taxonomy).
//!
//! One entity table is trained jointly over all context relations plus the
//! predicted relation; negatives corrupt the tail. TransE/RotatE use margin
//! ranking over L2 distance; DistMult/ComplEx use the logistic (softplus)
//! loss over their bilinear scores.

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use kgnet_linalg::{init, memtrack, Adam, Matrix, Optimizer, ParamStore, Tape, Var};

use crate::config::{GmlMethodKind, GnnConfig};
use crate::control::TrainControl;
use crate::dataset::LpDataset;
use crate::lp::{finish_lp, TrainedLp};
use crate::par;

/// One sampled triple batch (positives plus corrupted tails), ready for
/// tape evaluation on any worker.
struct PreparedBatch {
    heads: Vec<u32>,
    rels: Vec<u32>,
    tails: Vec<u32>,
    negs: Vec<u32>,
}

/// Train a KGE method on the dataset. Cancellation via `ctl` is polled at
/// every epoch boundary.
pub fn train(
    method: GmlMethodKind,
    data: &LpDataset,
    cfg: &GnnConfig,
    ctl: TrainControl<'_>,
) -> TrainedLp {
    let scope = memtrack::MemScope::begin();
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let n = data.graph.n_nodes();
    let d = cfg.hidden & !1; // even width for the complex-paired methods
    let d = d.max(2);
    let n_rel = data.graph.n_edge_types() + 1; // context relations + target
    let target_rel = (n_rel - 1) as u16;

    // Training triples: all typed context edges + train-split target edges.
    let mut triples: Vec<(u16, u32, u32)> = Vec::new();
    for r in 0..data.graph.n_edge_types() {
        for &(s, t) in data.graph.edges_of_type(r as u16) {
            triples.push((r as u16, s, t));
        }
    }
    for &i in &data.split.train {
        let (s, t) = data.edges[i as usize];
        triples.push((target_rel, s, t));
    }

    let mut ps = ParamStore::new();
    let entities = ps.add(init::xavier_uniform(n, d, &mut rng));
    // For RotatE the relation table stores d/2 phases; otherwise d values.
    let rel_width = if method == GmlMethodKind::RotatE { d / 2 } else { d };
    let relations = ps.add(init::xavier_uniform(n_rel, rel_width, &mut rng));
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

    let batches_per_epoch = (triples.len() / cfg.batch_size.max(1)).clamp(1, 16);
    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if ctl.is_cancelled() {
            break;
        }
        let mut epoch_loss = 0.0f32;
        let mut done = 0usize;
        // Waves of GRAD_WAVE batches: sampling (positives and corrupted
        // tails) stays on the trainer's RNG stream; the scoring/gradient
        // tapes run in parallel and reduce in batch order.
        while done < batches_per_epoch {
            let wave_len = par::GRAD_WAVE.min(batches_per_epoch - done);
            let mut prepared: Vec<PreparedBatch> = (0..wave_len)
                .map(|_| {
                    let mut batch: Vec<(u16, u32, u32)> = Vec::with_capacity(cfg.batch_size);
                    for _ in 0..cfg.batch_size {
                        batch.push(*triples.choose(&mut rng).expect("non-empty triples"));
                    }
                    PreparedBatch {
                        heads: batch.iter().map(|&(_, s, _)| s).collect(),
                        rels: batch.iter().map(|&(r, _, _)| r as u32).collect(),
                        tails: batch.iter().map(|&(_, _, t)| t).collect(),
                        negs: batch.iter().map(|_| rng.gen_range(0..n as u32)).collect(),
                    }
                })
                .collect();
            done += wave_len;

            let wave = par::parallel_batch_grads(&mut prepared, |pb| {
                let mut tape = Tape::new();
                let ve = tape.param(ps.get(entities).clone());
                let vr = tape.param(ps.get(relations).clone());
                let h = tape.gather(ve, Rc::new(std::mem::take(&mut pb.heads)));
                let r = tape.gather(vr, Rc::new(std::mem::take(&mut pb.rels)));
                let t = tape.gather(ve, Rc::new(std::mem::take(&mut pb.tails)));
                let t_neg = tape.gather(ve, Rc::new(std::mem::take(&mut pb.negs)));

                let loss = match method {
                    GmlMethodKind::TransE => {
                        let pos = transe_dist(&mut tape, h, r, t);
                        let neg = transe_dist(&mut tape, h, r, t_neg);
                        margin_loss(&mut tape, pos, neg, cfg.margin)
                    }
                    GmlMethodKind::RotatE => {
                        let pos = rotate_dist(&mut tape, h, r, t, d);
                        let neg = rotate_dist(&mut tape, h, r, t_neg, d);
                        margin_loss(&mut tape, pos, neg, cfg.margin)
                    }
                    GmlMethodKind::DistMult => {
                        let pos = distmult_score(&mut tape, h, r, t);
                        let neg = distmult_score(&mut tape, h, r, t_neg);
                        logistic_loss(&mut tape, pos, neg)
                    }
                    GmlMethodKind::ComplEx => {
                        let pos = complex_score(&mut tape, h, r, t, d);
                        let neg = complex_score(&mut tape, h, r, t_neg, d);
                        logistic_loss(&mut tape, pos, neg)
                    }
                    other => panic!("{other} is not a KGE method"),
                };
                tape.backward(loss);
                let grads = [(entities, ve), (relations, vr)]
                    .map(|(pid, var)| (pid, tape.take_grad(var)))
                    .to_vec();
                (tape.scalar(loss), grads)
            });
            epoch_loss += par::reduce_grads_into(&mut ps, wave);
            opt.step(&mut ps);
        }
        loss_curve.push(epoch_loss / batches_per_epoch as f32);
        ctl.epoch_completed(epoch);
    }
    let train_time_s = t0.elapsed().as_secs_f64();
    let peak = scope.peak_delta();

    // Inference: score every source against every destination under the
    // target relation (tape-free).
    let ti = Instant::now();
    let ent = ps.get(entities);
    let rel_row = ps.get(relations).row(target_rel as usize).to_vec();
    let mut scores = Matrix::zeros(data.sources.len(), data.destinations.len());
    let mut source_embeddings = Matrix::zeros(data.sources.len(), d);
    for (i, &s) in data.sources.iter().enumerate() {
        let es = ent.row(s as usize);
        source_embeddings.row_mut(i).copy_from_slice(es);
        for (j, &dst) in data.destinations.iter().enumerate() {
            let ed = ent.row(dst as usize);
            scores.set(i, j, score_rows(method, es, &rel_row, ed));
        }
    }
    let infer_ms = ti.elapsed().as_secs_f64() * 1e3 / data.sources.len().max(1) as f64;

    finish_lp(method, data, scores, source_embeddings, loss_curve, train_time_s, peak, infer_ms)
}

/// Train TransE embeddings over every typed edge of a graph without a
/// prediction target (used by the entity-similarity task): returns one
/// embedding row per graph node plus the training report.
pub fn train_unsupervised(
    graph: &kgnet_graph::HeteroGraph,
    cfg: &GnnConfig,
) -> (Matrix, crate::config::TrainReport) {
    train_unsupervised_ctl(graph, cfg, TrainControl::NONE)
}

/// [`train_unsupervised`] with a cancellation handle polled between epochs.
pub fn train_unsupervised_ctl(
    graph: &kgnet_graph::HeteroGraph,
    cfg: &GnnConfig,
    ctl: TrainControl<'_>,
) -> (Matrix, crate::config::TrainReport) {
    let scope = memtrack::MemScope::begin();
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = graph.n_nodes();
    let d = cfg.hidden.max(2);
    let n_rel = graph.n_edge_types().max(1);

    let mut triples: Vec<(u16, u32, u32)> = Vec::new();
    for r in 0..graph.n_edge_types() {
        for &(s, t) in graph.edges_of_type(r as u16) {
            triples.push((r as u16, s, t));
        }
    }
    let mut ps = ParamStore::new();
    let entities = ps.add(init::xavier_uniform(n, d, &mut rng));
    let relations = ps.add(init::xavier_uniform(n_rel, d, &mut rng));
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    if !triples.is_empty() {
        for epoch in 0..cfg.epochs {
            if ctl.is_cancelled() {
                break;
            }
            let mut batch: Vec<(u16, u32, u32)> = Vec::with_capacity(cfg.batch_size);
            for _ in 0..cfg.batch_size {
                batch.push(*triples.choose(&mut rng).expect("non-empty triples"));
            }
            let heads: Rc<Vec<u32>> = Rc::new(batch.iter().map(|&(_, s, _)| s).collect());
            let rels: Rc<Vec<u32>> = Rc::new(batch.iter().map(|&(r, _, _)| r as u32).collect());
            let tails: Rc<Vec<u32>> = Rc::new(batch.iter().map(|&(_, _, t)| t).collect());
            let negs: Rc<Vec<u32>> =
                Rc::new(batch.iter().map(|_| rng.gen_range(0..n as u32)).collect());
            let mut tape = Tape::new();
            let ve = tape.param(ps.get(entities).clone());
            let vr = tape.param(ps.get(relations).clone());
            let h = tape.gather(ve, heads);
            let r = tape.gather(vr, rels);
            let t = tape.gather(ve, tails);
            let t_neg = tape.gather(ve, negs);
            let pos = transe_dist(&mut tape, h, r, t);
            let neg = transe_dist(&mut tape, h, r, t_neg);
            let loss = margin_loss(&mut tape, pos, neg, cfg.margin);
            tape.backward(loss);
            loss_curve.push(tape.scalar(loss));
            for (pid, var) in [(entities, ve), (relations, vr)] {
                if let Some(g) = tape.take_grad(var) {
                    ps.set_grad(pid, g);
                }
            }
            opt.step(&mut ps);
            ctl.epoch_completed(epoch);
        }
    }
    let report = crate::config::TrainReport {
        method: GmlMethodKind::TransE,
        train_time_s: t0.elapsed().as_secs_f64(),
        peak_mem_bytes: scope.peak_delta(),
        test_metric: 0.0,
        valid_metric: 0.0,
        mrr: 0.0,
        loss_curve,
        n_nodes: n,
        n_edges: graph.n_edges(),
        inference_time_ms: 0.01,
    };
    (ps.get(entities).clone(), report)
}

fn transe_dist(tape: &mut Tape, h: Var, r: Var, t: Var) -> Var {
    let hr = tape.add(h, r);
    let diff = tape.sub(hr, t);
    let sq = tape.mul(diff, diff);
    let ss = tape.row_sum(sq);
    tape.sqrt(ss)
}

fn rotate_dist(tape: &mut Tape, h: Var, phases: Var, t: Var, d: usize) -> Var {
    let half = d / 2;
    let h_re = tape.slice_cols(h, 0, half);
    let h_im = tape.slice_cols(h, half, d);
    let t_re = tape.slice_cols(t, 0, half);
    let t_im = tape.slice_cols(t, half, d);
    let cosp = tape.cos(phases);
    let sinp = tape.sin(phases);
    // (h_re + i h_im)(cos + i sin)
    let a = tape.mul(h_re, cosp);
    let b = tape.mul(h_im, sinp);
    let rot_re = tape.sub(a, b);
    let c = tape.mul(h_re, sinp);
    let e = tape.mul(h_im, cosp);
    let rot_im = tape.add(c, e);
    let dre = tape.sub(rot_re, t_re);
    let dim = tape.sub(rot_im, t_im);
    let sre = tape.mul(dre, dre);
    let sim = tape.mul(dim, dim);
    let s = tape.add(sre, sim);
    let ss = tape.row_sum(s);
    tape.sqrt(ss)
}

fn distmult_score(tape: &mut Tape, h: Var, r: Var, t: Var) -> Var {
    let hr = tape.mul(h, r);
    let hrt = tape.mul(hr, t);
    tape.row_sum(hrt)
}

fn complex_score(tape: &mut Tape, h: Var, r: Var, t: Var, d: usize) -> Var {
    let half = d / 2;
    let (h_re, h_im) = (tape.slice_cols(h, 0, half), tape.slice_cols(h, half, d));
    let (r_re, r_im) = (tape.slice_cols(r, 0, half), tape.slice_cols(r, half, d));
    let (t_re, t_im) = (tape.slice_cols(t, 0, half), tape.slice_cols(t, half, d));
    // Re(<h, r, conj(t)>) expanded over real pairs.
    let a = tape.mul(h_re, r_re);
    let a = tape.mul(a, t_re);
    let b = tape.mul(h_im, r_re);
    let b = tape.mul(b, t_im);
    let c = tape.mul(h_re, r_im);
    let c = tape.mul(c, t_im);
    let e = tape.mul(h_im, r_im);
    let e = tape.mul(e, t_re);
    let ab = tape.add(a, b);
    let abc = tape.add(ab, c);
    let full = tape.sub(abc, e);
    tape.row_sum(full)
}

fn margin_loss(tape: &mut Tape, pos_dist: Var, neg_dist: Var, margin: f32) -> Var {
    let gap = tape.sub(pos_dist, neg_dist);
    let gap = tape.add_scalar(gap, margin);
    let hinge = tape.relu(gap);
    tape.mean_all(hinge)
}

fn logistic_loss(tape: &mut Tape, pos_score: Var, neg_score: Var) -> Var {
    let npos = tape.scale(pos_score, -1.0);
    let lp = tape.softplus(npos);
    let ln = tape.softplus(neg_score);
    let s = tape.add(lp, ln);
    tape.mean_all(s)
}

/// Tape-free scoring of one (head, relation, tail) row triple.
fn score_rows(method: GmlMethodKind, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    match method {
        GmlMethodKind::TransE => {
            let mut ss = 0.0f32;
            for ((&a, &b), &c) in h.iter().zip(r).zip(t) {
                let v = a + b - c;
                ss += v * v;
            }
            -ss.max(1e-12).sqrt()
        }
        GmlMethodKind::DistMult => h.iter().zip(r).zip(t).map(|((&a, &b), &c)| a * b * c).sum(),
        GmlMethodKind::ComplEx => {
            let half = h.len() / 2;
            let mut s = 0.0f32;
            for i in 0..half {
                let (hre, him) = (h[i], h[half + i]);
                let (rre, rim) = (r[i], r[half + i]);
                let (tre, tim) = (t[i], t[half + i]);
                s += hre * rre * tre + him * rre * tim + hre * rim * tim - him * rim * tre;
            }
            s
        }
        GmlMethodKind::RotatE => {
            let half = h.len() / 2;
            let mut ss = 0.0f32;
            for i in 0..half {
                let (hre, him) = (h[i], h[half + i]);
                let (cosp, sinp) = (r[i].cos(), r[i].sin());
                let rot_re = hre * cosp - him * sinp;
                let rot_im = hre * sinp + him * cosp;
                let dre = rot_re - t[i];
                let dim = rot_im - t[half + i];
                ss += dre * dre + dim * dim;
            }
            -ss.max(1e-12).sqrt()
        }
        other => panic!("{other} is not a KGE method"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::testutil::tiny_lp;

    fn run(method: GmlMethodKind) -> f64 {
        let data = tiny_lp();
        let cfg = GnnConfig { epochs: 40, batch_size: 128, ..GnnConfig::fast_test() };
        let out = train(method, &data, &cfg, TrainControl::NONE);
        let random = 10.0 / data.destinations.len() as f64;
        assert!(out.report.loss_curve.len() == 40);
        assert!(
            out.report.test_metric >= random * 0.5,
            "{method}: Hits@10 {} catastrophically below random {random}",
            out.report.test_metric
        );
        out.report.test_metric
    }

    #[test]
    fn transe_trains_and_ranks() {
        let hits = run(GmlMethodKind::TransE);
        assert!(hits > 0.0);
    }

    #[test]
    fn distmult_trains_and_ranks() {
        run(GmlMethodKind::DistMult);
    }

    #[test]
    fn complex_trains_and_ranks() {
        run(GmlMethodKind::ComplEx);
    }

    #[test]
    fn rotate_trains_and_ranks() {
        run(GmlMethodKind::RotatE);
    }

    #[test]
    fn score_rows_consistency_transe() {
        // Perfect translation scores 0 (max), mismatch scores negative.
        let h = [1.0f32, 0.0];
        let r = [0.5f32, 0.5];
        let t = [1.5f32, 0.5];
        assert!(score_rows(GmlMethodKind::TransE, &h, &r, &t) > -1e-3);
        let t_bad = [9.0f32, 9.0];
        assert!(score_rows(GmlMethodKind::TransE, &h, &r, &t_bad) < -1.0);
    }

    #[test]
    fn score_rows_consistency_rotate() {
        // Zero phase = identity rotation.
        let h = [0.6f32, 0.8];
        let r = [0.0f32];
        let t = [0.6f32, 0.8];
        assert!(score_rows(GmlMethodKind::RotatE, &h, &r, &t) > -1e-3);
    }
}
