//! MorsE (Chen et al., SIGIR 2022): inductive, entity-agnostic link
//! prediction via meta-knowledge transfer.
//!
//! Each entity's representation is *produced* from its relational
//! structure plus the Xavier-random node features the paper's evaluation
//! setup prescribes for all experiments:
//!
//! 1. an entity initializer builds `E0 = X + C A`, where `X` is the
//!    Xavier-initialised node-feature table, `C` is the (constant,
//!    row-normalised) incidence profile of each entity over relation x
//!    direction, and `A` holds learnable relation-direction embeddings;
//! 2. a two-layer GNN refines it: `E_l = E_{l-1} + (N E_{l-1}) W_l`, with
//!    `N` the row-normalised neighbour adjacency rebuilt from each epoch's
//!    sampled sub-KG (two hops let a held-out entity reach the relational
//!    evidence of its neighbours' neighbours);
//! 3. scoring is TransE-style: `score(s, d) = -|| e_s + p - e_d ||`.
//!
//! Meta-training samples a sub-KG each epoch (a random 80% of the context
//! edges), rebuilds `C`/`N` from it and trains on triples drawn from the
//! *sampled sub-KG across all relations* (each relation has its own
//! translation vector), so the meta-knowledge must work across KG samples —
//! the edge-sampled regime the paper benchmarks in Fig. 15. This is why
//! meta-sampling matters so much for MorsE (paper Fig. 15): on the full KG
//! the predicted relation is a sliver of the meta-training signal, while on
//! the task-specific `KG'` it dominates.

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use kgnet_linalg::{init, memtrack, Adam, CsrMatrix, Matrix, Optimizer, ParamStore, Tape};

use crate::config::{GmlMethodKind, GnnConfig};
use crate::control::TrainControl;
use crate::dataset::LpDataset;
use crate::lp::{finish_lp, TrainedLp};

/// Train MorsE on the dataset. Cancellation via `ctl` is polled at every
/// epoch boundary.
pub fn train(data: &LpDataset, cfg: &GnnConfig, ctl: TrainControl<'_>) -> TrainedLp {
    let scope = memtrack::MemScope::begin();
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let n = data.graph.n_nodes();
    let d = cfg.hidden;
    // Context relations plus one slot for the predicted edge type: its
    // *train-split* edges stay in the message-passing structure (standard LP
    // practice — only valid/test edges are held out).
    let n_rel = data.graph.n_edge_types() + 1;
    let target_rel = (n_rel - 1) as u16;

    // Typed context edges: (relation, src, dst).
    let mut context: Vec<(u16, u32, u32)> = Vec::with_capacity(data.graph.n_edges());
    for r in 0..data.graph.n_edge_types() {
        for &(s, t) in data.graph.edges_of_type(r as u16) {
            context.push((r as u16, s, t));
        }
    }
    for &i in &data.split.train {
        let (s, t) = data.edges[i as usize];
        context.push((target_rel, s, t));
    }

    let mut ps = ParamStore::new();
    let x = ps.add(init::xavier_uniform(n, d, &mut rng));
    let a = ps.add(init::xavier_uniform(2 * n_rel, d, &mut rng));
    let w1 = ps.add(init::xavier_uniform(d, d, &mut rng));
    let w2 = ps.add(init::xavier_uniform(d, d, &mut rng));
    // One translation vector per relation (row `target_rel` scores the
    // predicted edge type at inference time).
    let p = ps.add(init::xavier_uniform(n_rel, d, &mut rng));
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

    let train_edges: Vec<(u32, u32)> =
        data.split.train.iter().map(|&i| data.edges[i as usize]).collect();
    if train_edges.is_empty() {
        let scores = Matrix::zeros(data.sources.len(), data.destinations.len());
        let emb = Matrix::zeros(data.sources.len(), d);
        return finish_lp(GmlMethodKind::Morse, data, scores, emb, vec![], 0.0, 0, 0.0);
    }

    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if ctl.is_cancelled() {
            break;
        }
        // --- Sample a sub-KG: 80% of the context edges.
        let sampled: Vec<(u16, u32, u32)> =
            context.iter().filter(|_| rng.gen_bool(0.8)).copied().collect();
        let (c_adj, n_adj) = build_structure(n, n_rel, &sampled);
        let c_adj = Rc::new(c_adj);
        let n_adj = Rc::new(n_adj);

        // --- Positive batch drawn uniformly from the sampled sub-KG across
        // all relations (MorsE's meta-objective). On the full KG the target
        // relation is a sliver of the edges, so the task receives a sliver
        // of the meta-training signal; on the task-specific KG' it is a
        // large share — the mechanism behind Fig. 15's full-vs-KG' gap.
        let mut batch: Vec<(u16, u32, u32)> = Vec::with_capacity(cfg.batch_size.max(16));
        for _ in 0..cfg.batch_size.max(16) {
            batch.push(*sampled.choose(&mut rng).unwrap_or(&context[0]));
        }
        // `negatives` corrupted tails per positive: positives are tiled so
        // each copy is contrasted against a fresh negative.
        let k = cfg.negatives.max(1);
        let mut h_idx = Vec::with_capacity(batch.len() * k);
        let mut r_idx = Vec::with_capacity(batch.len() * k);
        let mut t_idx = Vec::with_capacity(batch.len() * k);
        let mut n_idx = Vec::with_capacity(batch.len() * k);
        for &(r, s, t) in &batch {
            for _ in 0..k {
                h_idx.push(s);
                r_idx.push(r as u32);
                t_idx.push(t);
                n_idx.push(if r == target_rel && !data.destinations.is_empty() {
                    data.destinations[rng.gen_range(0..data.destinations.len())]
                } else {
                    rng.gen_range(0..n as u32)
                });
            }
        }
        let heads: Rc<Vec<u32>> = Rc::new(h_idx);
        let rels: Rc<Vec<u32>> = Rc::new(r_idx);
        let tails: Rc<Vec<u32>> = Rc::new(t_idx);
        let negs: Rc<Vec<u32>> = Rc::new(n_idx);

        // --- Forward on the tape.
        let mut tape = Tape::new();
        let ca = tape.adjacency(c_adj);
        let na = tape.adjacency(n_adj);
        let vx = tape.param(ps.get(x).clone());
        let va = tape.param(ps.get(a).clone());
        let vw1 = tape.param(ps.get(w1).clone());
        let vw2 = tape.param(ps.get(w2).clone());
        let vp = tape.param(ps.get(p).clone());

        let profile = tape.spmm(ca, va); // n x d
        let e0 = tape.add(vx, profile);
        let nb1 = tape.spmm(na, e0); // n x d
        let nb1w = tape.matmul(nb1, vw1);
        let e1 = tape.add(e0, nb1w);
        let nb2 = tape.spmm(na, e1);
        let nb2w = tape.matmul(nb2, vw2);
        let e = tape.add(e1, nb2w);

        let eh = tape.gather(e, heads.clone());
        let et = tape.gather(e, tails.clone());
        let en = tape.gather(e, negs.clone());
        let pr = tape.gather(vp, rels.clone());
        let ehp = tape.add(eh, pr);
        let dpos = distance(&mut tape, ehp, et);
        let dneg = distance(&mut tape, ehp, en);
        let gap = tape.sub(dpos, dneg);
        let gap = tape.add_scalar(gap, cfg.margin);
        let hinge = tape.relu(gap);
        let loss = tape.mean_all(hinge);
        tape.backward(loss);
        loss_curve.push(tape.scalar(loss));

        for (pid, var) in [(x, vx), (a, va), (w1, vw1), (w2, vw2), (p, vp)] {
            if let Some(g) = tape.take_grad(var) {
                ps.set_grad(pid, g);
            }
        }
        opt.step(&mut ps);
        ctl.epoch_completed(epoch);
    }
    let train_time_s = t0.elapsed().as_secs_f64();
    let peak = scope.peak_delta();

    // --- Full-structure inference.
    let ti = Instant::now();
    let (c_adj, n_adj) = build_structure(n, n_rel, &context);
    let mut e0 = c_adj.spmm(ps.get(a));
    e0.add_assign(ps.get(x));
    let mut e1 = n_adj.spmm(&e0).matmul(ps.get(w1));
    e1.add_assign(&e0);
    let mut e = n_adj.spmm(&e1).matmul(ps.get(w2));
    e.add_assign(&e1);
    let pvec = ps.get(p).row(target_rel as usize).to_vec();

    let mut scores = Matrix::zeros(data.sources.len(), data.destinations.len());
    let mut source_embeddings = Matrix::zeros(data.sources.len(), d);
    for (i, &s) in data.sources.iter().enumerate() {
        let es = e.row(s as usize);
        source_embeddings.row_mut(i).copy_from_slice(es);
        let translated: Vec<f32> = es.iter().zip(&pvec).map(|(&a, &b)| a + b).collect();
        for (j, &dst) in data.destinations.iter().enumerate() {
            let ed = e.row(dst as usize);
            scores.set(i, j, -Matrix::row_l2(&translated, ed));
        }
    }
    let infer_ms = ti.elapsed().as_secs_f64() * 1e3 / data.sources.len().max(1) as f64;

    finish_lp(
        GmlMethodKind::Morse,
        data,
        scores,
        source_embeddings,
        loss_curve,
        train_time_s,
        peak,
        infer_ms,
    )
}

/// L2 distance per row between two `k x d` vars.
fn distance(tape: &mut Tape, a: kgnet_linalg::Var, b: kgnet_linalg::Var) -> kgnet_linalg::Var {
    let diff = tape.sub(a, b);
    let sq = tape.mul(diff, diff);
    let ss = tape.row_sum(sq);
    tape.sqrt(ss)
}

/// Build the incidence-profile matrix `C` (`n x 2R`, row-normalised) and the
/// neighbour adjacency `N` (`n x n`, row-normalised) from typed edges.
fn build_structure(n: usize, n_rel: usize, edges: &[(u16, u32, u32)]) -> (CsrMatrix, CsrMatrix) {
    let mut deg = vec![0u32; n];
    for &(_, s, t) in edges {
        deg[s as usize] += 1;
        deg[t as usize] += 1;
    }
    let mut c_entries = Vec::with_capacity(edges.len() * 2);
    let mut n_entries = Vec::with_capacity(edges.len() * 2);
    for &(r, s, t) in edges {
        // Outgoing slot r, incoming slot R + r.
        c_entries.push((s, r as u32, 1.0 / deg[s as usize] as f32));
        c_entries.push((t, n_rel as u32 + r as u32, 1.0 / deg[t as usize] as f32));
        n_entries.push((s, t, 1.0 / deg[s as usize] as f32));
        n_entries.push((t, s, 1.0 / deg[t as usize] as f32));
    }
    (CsrMatrix::from_coo(n, 2 * n_rel, c_entries), CsrMatrix::from_coo(n, n, n_entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::testutil::tiny_lp;
    use crate::metrics::{hits_at, Rank};

    #[test]
    fn morse_beats_random_ranking() {
        let data = tiny_lp();
        let cfg = GnnConfig { epochs: 60, batch_size: 64, ..GnnConfig::fast_test() };
        let out = train(&data, &cfg, TrainControl::NONE);
        // Random ranking over D destinations gives Hits@10 = 10/D.
        let random = 10.0 / data.destinations.len() as f64;
        assert!(
            out.report.test_metric > random,
            "Hits@10 {} not better than random {random}",
            out.report.test_metric
        );
        assert!(out.report.mrr > 0.0);
    }

    #[test]
    fn morse_loss_decreases() {
        let data = tiny_lp();
        let cfg = GnnConfig { epochs: 40, batch_size: 64, ..GnnConfig::fast_test() };
        let out = train(&data, &cfg, TrainControl::NONE);
        let first: f32 = out.report.loss_curve[..5].iter().sum::<f32>() / 5.0;
        let last: f32 =
            out.report.loss_curve[out.report.loss_curve.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn structure_matrices_are_row_stochastic() {
        let edges = vec![(0u16, 0u32, 1u32), (1u16, 0u32, 2u32), (0u16, 2u32, 1u32)];
        let (c, nadj) = build_structure(3, 2, &edges);
        for r in 0..3 {
            let crow: f32 = c.row(r).1.iter().sum();
            let nrow: f32 = nadj.row(r).1.iter().sum();
            assert!((crow - 1.0).abs() < 1e-5, "C row {r} sums to {crow}");
            assert!((nrow - 1.0).abs() < 1e-5, "N row {r} sums to {nrow}");
        }
    }

    #[test]
    fn hits_metric_sanity() {
        let ranks = vec![Rank(1), Rank(11)];
        assert_eq!(hits_at(10, &ranks), 0.5);
    }
}
