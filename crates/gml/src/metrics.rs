//! Evaluation metrics: accuracy, F1, MRR, Hits@K.

/// Fraction of predictions equal to the label.
pub fn accuracy(pred: &[usize], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|&(&p, &t)| p == t as usize).count();
    hits as f64 / pred.len() as f64
}

/// Macro-averaged F1 over `n_classes` classes.
pub fn macro_f1(pred: &[usize], truth: &[u32], n_classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    if n_classes == 0 {
        return 0.0;
    }
    let mut tp = vec![0usize; n_classes];
    let mut fp = vec![0usize; n_classes];
    let mut fnn = vec![0usize; n_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        let t = t as usize;
        if p == t {
            tp[p] += 1;
        } else {
            if p < n_classes {
                fp[p] += 1;
            }
            fnn[t] += 1;
        }
    }
    let mut f1_sum = 0.0;
    let mut seen = 0usize;
    for c in 0..n_classes {
        let support = tp[c] + fnn[c];
        if support == 0 {
            continue;
        }
        seen += 1;
        let prec = if tp[c] + fp[c] > 0 { tp[c] as f64 / (tp[c] + fp[c]) as f64 } else { 0.0 };
        let rec = tp[c] as f64 / support as f64;
        if prec + rec > 0.0 {
            f1_sum += 2.0 * prec * rec / (prec + rec);
        }
    }
    if seen == 0 {
        0.0
    } else {
        f1_sum / seen as f64
    }
}

/// Ranking outcome for one query: the 1-based rank of the true item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rank(pub usize);

/// 1-based rank of the true candidate among scores (higher score = better).
/// Ties count optimistically at the smallest rank among equals, matching the
/// common "optimistic" convention.
pub fn rank_of(true_idx: usize, scores: &[f32]) -> Rank {
    let target = scores[true_idx];
    let better = scores.iter().filter(|&&s| s > target).count();
    Rank(better + 1)
}

/// Mean reciprocal rank.
pub fn mrr(ranks: &[Rank]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().map(|r| 1.0 / r.0 as f64).sum::<f64>() / ranks.len() as f64
}

/// Fraction of queries whose true item ranks in the top `k`.
pub fn hits_at(k: usize, ranks: &[Rank]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().filter(|r| r.0 <= k).count() as f64 / ranks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_and_empty_classes() {
        // Perfect predictions -> macro F1 = 1 regardless of unused classes.
        assert!((macro_f1(&[0, 1, 0], &[0, 1, 0], 5) - 1.0).abs() < 1e-12);
        // All-wrong single class.
        assert_eq!(macro_f1(&[1, 1], &[0, 0], 2), 0.0);
    }

    #[test]
    fn rank_and_mrr_and_hits() {
        let scores = vec![0.1, 0.9, 0.5, 0.7];
        assert_eq!(rank_of(1, &scores), Rank(1));
        assert_eq!(rank_of(2, &scores), Rank(3));
        assert_eq!(rank_of(0, &scores), Rank(4));
        let ranks = vec![Rank(1), Rank(3), Rank(12)];
        assert!((mrr(&ranks) - (1.0 + 1.0 / 3.0 + 1.0 / 12.0) / 3.0).abs() < 1e-12);
        assert!((hits_at(10, &ranks) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(hits_at(1, &ranks), 1.0 / 3.0);
    }

    #[test]
    fn rank_ties_are_optimistic() {
        let scores = vec![0.5, 0.5, 0.5];
        assert_eq!(rank_of(1, &scores), Rank(1));
    }
}
