//! Resource estimation for the "Optimal GML Method Selection" step (Fig. 6).
//!
//! The paper: "We estimate the required memory for each method based on the
//! size and the number of generated sparse-matrices, as well as the training
//! time based on the matrix dimensions and feature aggregation approach."
//! These closed-form models mirror this repository's trainer implementations
//! (parameter tables + optimizer state + activation working set) and are
//! validated against measured runs in the integration tests — they only
//! need to be *rank-correct* for the selector to pick sensible methods.

use crate::config::{GmlMethodKind, GnnConfig};
use crate::dataset::{LpDataset, NcDataset};

/// Dimensions of a training problem, extracted from a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphDims {
    /// Nodes in the (sub)graph.
    pub n_nodes: usize,
    /// Edges in the (sub)graph.
    pub n_edges: usize,
    /// Edge types.
    pub n_relations: usize,
    /// Task targets (NC) or query sources (LP).
    pub n_targets: usize,
    /// Classes (NC) or candidate destinations (LP).
    pub n_classes: usize,
}

impl GraphDims {
    /// Dimensions of a node-classification dataset.
    pub fn of_nc(data: &NcDataset) -> Self {
        GraphDims {
            n_nodes: data.graph.n_nodes(),
            n_edges: data.graph.n_edges(),
            n_relations: data.graph.n_edge_types(),
            n_targets: data.n_targets(),
            n_classes: data.n_classes(),
        }
    }

    /// Dimensions of a link-prediction dataset.
    pub fn of_lp(data: &LpDataset) -> Self {
        GraphDims {
            n_nodes: data.graph.n_nodes(),
            n_edges: data.graph.n_edges(),
            n_relations: data.graph.n_edge_types(),
            n_targets: data.sources.len(),
            n_classes: data.destinations.len(),
        }
    }
}

/// Predicted resource envelope of one training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Peak training memory in bytes.
    pub memory_bytes: usize,
    /// Training wall-clock seconds.
    pub time_s: f64,
    /// Prior expected quality in `[0, 1]` (rank heuristic, not a promise).
    pub expected_quality: f64,
}

/// Nominal sustained throughput of the scalar kernels, flops/second.
/// Calibrated for rank-correctness, not absolute accuracy.
const FLOPS: f64 = 1.5e9;

/// Estimate the resources one method needs on one problem.
pub fn estimate(method: GmlMethodKind, dims: &GraphDims, cfg: &GnnConfig) -> ResourceEstimate {
    let n = dims.n_nodes as f64;
    let e = dims.n_edges as f64;
    let r = dims.n_relations.max(1) as f64;
    let c = dims.n_classes.max(2) as f64;
    let f = cfg.hidden as f64;
    let epochs = cfg.epochs as f64;
    let bytes = 4.0;

    // Embedding table + Adam moments are common to every method.
    let table = n * f * bytes * 3.0;

    let (mem, flops, quality) = match method {
        GmlMethodKind::Gcn => {
            let act = 6.0 * n * f * bytes + 2.0 * n * c * bytes + e * 12.0;
            let flops = epochs * (2.0 * e * f + 2.0 * n * f * (f + c)) * 3.0;
            (table + act, flops, 0.72)
        }
        GmlMethodKind::Rgcn => {
            // Per-relation compact activations cover ~2E rows per layer,
            // forward + gradients.
            let act = 2.0 * 2.0 * e * (f + c) * bytes * 2.0 + 2.0 * n * (f + c) * bytes;
            let params = r * (f * f + f * c) * bytes * 3.0;
            let flops = epochs * (2.0 * e * f + 2.0 * 2.0 * e * f * (f + c)) * 3.0;
            (table + act + params, flops, 0.78)
        }
        GmlMethodKind::GraphSaint => {
            let sub = (cfg.saint_roots * (cfg.saint_walk_length + 1)) as f64;
            let steps = (dims.n_targets as f64 / cfg.saint_roots.max(1) as f64).clamp(1.0, 32.0);
            let act = 6.0 * sub * f * bytes + sub * c * bytes;
            let flops = epochs * steps * (2.0 * sub * f * (f + c)) * 3.0 + 2.0 * n * f * (f + c); // final full inference
            (table + act, flops, 0.82)
        }
        GmlMethodKind::ShadowSaint => {
            let scope = (cfg.shadow_neighbor_cap + 1).pow(cfg.shadow_depth as u32) as f64;
            let batch_nodes = cfg.batch_size as f64 * scope;
            let act = 6.0 * batch_nodes * f * bytes;
            let flops = epochs * (dims.n_targets as f64 * scope * 2.0 * f * (2.0 * f + c)) * 3.0;
            (table + act, flops, 0.85)
        }
        GmlMethodKind::Morse => {
            let act = 3.0 * n * f * bytes * 2.0 + 2.0 * e * 12.0;
            let params = (2.0 * r * f + f * f) * bytes * 3.0;
            let flops = epochs * (2.0 * e * f + n * f * f) * 3.0;
            // MorsE owns no entity table — that is its point.
            (act + params, flops, 0.80)
        }
        GmlMethodKind::TransE
        | GmlMethodKind::DistMult
        | GmlMethodKind::ComplEx
        | GmlMethodKind::RotatE => {
            let act = cfg.batch_size as f64 * f * bytes * 12.0;
            let params = r * f * bytes * 3.0;
            let batches = (e / cfg.batch_size.max(1) as f64).clamp(1.0, 16.0);
            let flops = epochs * batches * cfg.batch_size as f64 * f * 30.0;
            let q = match method {
                GmlMethodKind::ComplEx => 0.76,
                GmlMethodKind::RotatE => 0.75,
                GmlMethodKind::DistMult => 0.70,
                _ => 0.68,
            };
            (table + act + params, flops, q)
        }
    };

    ResourceEstimate {
        memory_bytes: mem as usize,
        time_s: flops / FLOPS,
        expected_quality: quality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(n: usize, e: usize, r: usize) -> GraphDims {
        GraphDims { n_nodes: n, n_edges: e, n_relations: r, n_targets: n / 2, n_classes: 10 }
    }

    #[test]
    fn rgcn_needs_more_memory_than_sampled_methods() {
        let d = dims(10_000, 60_000, 50);
        let cfg = GnnConfig::default();
        let rgcn = estimate(GmlMethodKind::Rgcn, &d, &cfg);
        let saint = estimate(GmlMethodKind::GraphSaint, &d, &cfg);
        let shadow = estimate(GmlMethodKind::ShadowSaint, &d, &cfg);
        assert!(rgcn.memory_bytes > saint.memory_bytes);
        assert!(rgcn.memory_bytes > shadow.memory_bytes);
    }

    #[test]
    fn estimates_scale_with_graph_size() {
        let cfg = GnnConfig::default();
        for method in GmlMethodKind::NC_METHODS {
            let small = estimate(method, &dims(1_000, 5_000, 10), &cfg);
            let large = estimate(method, &dims(100_000, 500_000, 10), &cfg);
            assert!(large.memory_bytes > small.memory_bytes, "{method} memory does not scale");
            assert!(large.time_s >= small.time_s, "{method} time does not scale");
        }
    }

    #[test]
    fn morse_memory_below_full_batch_rgcn() {
        let d = dims(50_000, 200_000, 40);
        let cfg = GnnConfig::default();
        let morse = estimate(GmlMethodKind::Morse, &d, &cfg);
        let rgcn = estimate(GmlMethodKind::Rgcn, &d, &cfg);
        assert!(morse.memory_bytes < rgcn.memory_bytes);
    }

    #[test]
    fn all_methods_produce_positive_estimates() {
        let d = dims(500, 2_000, 5);
        let cfg = GnnConfig::default();
        for method in GmlMethodKind::NC_METHODS.into_iter().chain(GmlMethodKind::LP_METHODS) {
            let est = estimate(method, &d, &cfg);
            assert!(est.memory_bytes > 0);
            assert!(est.time_s > 0.0);
            assert!(est.expected_quality > 0.0 && est.expected_quality <= 1.0);
        }
    }
}
