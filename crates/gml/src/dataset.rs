//! Task datasets: the transformed graph plus labels/edges and a split.
//!
//! This is the hand-off point between the paper's "Data Transformer" and the
//! method trainers: an [`NcDataset`] (node classification) or [`LpDataset`]
//! (link prediction) built from any [`RdfStore`] — the full KG or a
//! meta-sampled `KG'`.

use rustc_hash::FxHashMap;

use kgnet_graph::{
    community_split, extract_lp_edges, extract_nc_labels, random_split, transform, HeteroGraph,
    LpTask, NcTask, Split, SplitRatios, SplitStrategy, TransformStats,
};
use kgnet_rdf::RdfStore;

/// Plain-IRI string of a term (falls back to the display form for
/// non-IRI terms).
fn iri_string(store: &RdfStore, id: kgnet_rdf::TermId) -> String {
    match store.resolve(id) {
        kgnet_rdf::Term::Iri(i) => i.clone(),
        other => other.to_string(),
    }
}

/// A ready-to-train node-classification dataset.
pub struct NcDataset {
    /// The transformed graph (label edges and literals removed).
    pub graph: HeteroGraph,
    /// Global node index of each target.
    pub target_nodes: Vec<u32>,
    /// IRI of each target (for inference dictionaries).
    pub target_iris: Vec<String>,
    /// Class index of each target.
    pub labels: Vec<u32>,
    /// IRI of each class.
    pub class_iris: Vec<String>,
    /// Train/valid/test indexes into `target_nodes`.
    pub split: Split,
    /// Transformer statistics.
    pub stats: TransformStats,
}

impl NcDataset {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_iris.len()
    }

    /// Number of targets.
    pub fn n_targets(&self) -> usize {
        self.target_nodes.len()
    }
}

/// Build an [`NcDataset`] from a store.
///
/// Mirrors Fig. 6: extract labels, transform the graph excluding the label
/// predicate and literals, ensure every labelled target is present as a
/// node, and split targets.
pub fn build_nc_dataset(
    store: &RdfStore,
    task: &NcTask,
    strategy: SplitStrategy,
    ratios: SplitRatios,
    seed: u64,
) -> NcDataset {
    let nc = extract_nc_labels(store, task);
    let (mut graph, stats) = transform(store, std::slice::from_ref(&task.label_predicate));

    let target_type = graph.add_node_type(&format!("<{}>", task.target_type));
    let mut target_nodes = Vec::with_capacity(nc.targets.len());
    let mut target_iris = Vec::with_capacity(nc.targets.len());
    for &t in &nc.targets {
        let node = graph.node_of(t).unwrap_or_else(|| graph.add_node(t, target_type));
        target_nodes.push(node);
        target_iris.push(iri_string(store, t));
    }
    let class_iris = nc.classes.iter().map(|&c| iri_string(store, c)).collect();

    let split = match strategy {
        SplitStrategy::Random => random_split(target_nodes.len(), ratios, seed),
        SplitStrategy::Community => {
            let (offsets, neighbors) = graph.neighbor_lists();
            let target_neighbors: Vec<Vec<u32>> = target_nodes
                .iter()
                .map(|&n| neighbors[offsets[n as usize]..offsets[n as usize + 1]].to_vec())
                .collect();
            community_split(&target_neighbors, ratios, seed)
        }
    };

    NcDataset { graph, target_nodes, target_iris, labels: nc.labels, class_iris, split, stats }
}

/// A ready-to-train link-prediction dataset.
pub struct LpDataset {
    /// The transformed graph (the predicted edge type removed).
    pub graph: HeteroGraph,
    /// (source, destination) node pairs of the predicted edge type.
    pub edges: Vec<(u32, u32)>,
    /// IRIs of the edge endpoints.
    pub edge_iris: Vec<(String, String)>,
    /// Candidate destination nodes (ranking universe).
    pub destinations: Vec<u32>,
    /// IRIs of candidate destinations.
    pub destination_iris: Vec<String>,
    /// All source-type nodes (the query universe).
    pub sources: Vec<u32>,
    /// IRIs of the source nodes.
    pub source_iris: Vec<String>,
    /// Train/valid/test indexes into `edges`.
    pub split: Split,
    /// Transformer statistics.
    pub stats: TransformStats,
}

impl LpDataset {
    /// Number of positive edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Build an [`LpDataset`] from a store.
pub fn build_lp_dataset(
    store: &RdfStore,
    task: &LpTask,
    ratios: SplitRatios,
    seed: u64,
) -> LpDataset {
    let lp = extract_lp_edges(store, task);
    let (mut graph, stats) = transform(store, std::slice::from_ref(&task.edge_predicate));

    let src_type = graph.add_node_type(&format!("<{}>", task.source_type));
    let dst_type = graph.add_node_type(&format!("<{}>", task.dest_type));

    let mut dest_index: FxHashMap<u32, usize> = FxHashMap::default();
    let mut destinations = Vec::new();
    let mut destination_iris = Vec::new();
    for &d in &lp.destinations {
        let node = graph.node_of(d).unwrap_or_else(|| graph.add_node(d, dst_type));
        if let std::collections::hash_map::Entry::Vacant(e) = dest_index.entry(node) {
            e.insert(destinations.len());
            destinations.push(node);
            destination_iris.push(iri_string(store, d));
        }
    }

    let mut edges = Vec::with_capacity(lp.edges.len());
    let mut edge_iris = Vec::with_capacity(lp.edges.len());
    for &(s, d) in &lp.edges {
        let sn = graph.node_of(s).unwrap_or_else(|| graph.add_node(s, src_type));
        let dn = graph.node_of(d).unwrap_or_else(|| graph.add_node(d, dst_type));
        if let std::collections::hash_map::Entry::Vacant(e) = dest_index.entry(dn) {
            e.insert(destinations.len());
            destinations.push(dn);
            destination_iris.push(iri_string(store, d));
        }
        edges.push((sn, dn));
        edge_iris.push((iri_string(store, s), iri_string(store, d)));
    }

    let mut sources = Vec::new();
    let mut source_iris = Vec::new();
    for s in store.subjects_of_type(&task.source_type) {
        let sn = graph.node_of(s).unwrap_or_else(|| graph.add_node(s, src_type));
        sources.push(sn);
        source_iris.push(iri_string(store, s));
    }

    let split = random_split(edges.len(), ratios, seed);
    LpDataset {
        graph,
        edges,
        edge_iris,
        destinations,
        destination_iris,
        sources,
        source_iris,
        split,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_datagen::vocab::dblp as v;
    use kgnet_datagen::{generate_dblp, DblpConfig};

    fn nc_task() -> NcTask {
        NcTask { target_type: v::PUBLICATION.into(), label_predicate: v::PUBLISHED_IN.into() }
    }

    fn lp_task() -> LpTask {
        LpTask {
            source_type: v::PERSON.into(),
            edge_predicate: v::AFFILIATED_WITH.into(),
            dest_type: v::AFFILIATION.into(),
        }
    }

    #[test]
    fn nc_dataset_covers_all_labelled_targets() {
        let cfg = DblpConfig::tiny(11);
        let (st, _) = generate_dblp(&cfg);
        let ds =
            build_nc_dataset(&st, &nc_task(), SplitStrategy::Random, SplitRatios::default(), 1);
        assert_eq!(ds.n_targets(), cfg.n_papers);
        assert_eq!(ds.n_classes(), cfg.n_venues);
        assert_eq!(ds.split.len(), cfg.n_papers);
        // Label edges must be gone from the graph.
        assert!(ds.graph.edge_type_id(&format!("<{}>", v::PUBLISHED_IN)).is_none());
    }

    #[test]
    fn nc_dataset_community_split_also_partitions() {
        let cfg = DblpConfig::tiny(13);
        let (st, _) = generate_dblp(&cfg);
        let ds =
            build_nc_dataset(&st, &nc_task(), SplitStrategy::Community, SplitRatios::default(), 1);
        assert_eq!(ds.split.len(), ds.n_targets());
    }

    #[test]
    fn lp_dataset_extracts_affiliation_edges() {
        let cfg = DblpConfig::tiny(17);
        let (st, _) = generate_dblp(&cfg);
        let ds = build_lp_dataset(&st, &lp_task(), SplitRatios::default(), 2);
        assert_eq!(ds.n_edges(), cfg.n_authors); // one affiliation per author
        assert_eq!(ds.destinations.len(), cfg.n_affiliations);
        // Predicted edges must be gone from the graph.
        assert!(ds.graph.edge_type_id(&format!("<{}>", v::AFFILIATED_WITH)).is_none());
    }

    #[test]
    fn labels_are_within_class_range() {
        let cfg = DblpConfig::tiny(19);
        let (st, _) = generate_dblp(&cfg);
        let ds =
            build_nc_dataset(&st, &nc_task(), SplitStrategy::Random, SplitRatios::default(), 1);
        assert!(ds.labels.iter().all(|&l| (l as usize) < ds.n_classes()));
    }
}
