//! Node-classification trainers.
//!
//! All four methods of the paper's NC experiments are implemented on the
//! autodiff tape: full-batch [`gcn`] and [`rgcn`], and the sampling-based
//! [`saint`] (GraphSAINT) and [`shadow`] (ShadowSAINT / shaDow-GNN).

pub mod gcn;
pub mod rgcn;
pub mod saint;
pub mod shadow;

use kgnet_linalg::{CsrMatrix, Matrix};

use crate::config::{GmlMethodKind, GnnConfig, TrainReport};
use crate::control::TrainControl;
use crate::dataset::NcDataset;
use crate::metrics::accuracy;

/// A trained node classifier, with full inference over the dataset targets.
pub struct TrainedNc {
    /// Training/evaluation record.
    pub report: TrainReport,
    /// Logits for every dataset target (`n_targets x n_classes`).
    pub target_logits: Matrix,
    /// Final hidden embedding of every target (`n_targets x hidden`).
    pub target_embeddings: Matrix,
    /// Argmax class index per target.
    pub predictions: Vec<usize>,
}

/// Dispatch a node-classification training run by method kind.
///
/// Panics if `method` is not an NC method.
pub fn train_nc(method: GmlMethodKind, data: &NcDataset, cfg: &GnnConfig) -> TrainedNc {
    train_nc_ctl(method, data, cfg, TrainControl::NONE)
}

/// [`train_nc`] with a cancellation handle polled between epochs: raising
/// the flag stops the run at the next epoch boundary with a partial result.
pub fn train_nc_ctl(
    method: GmlMethodKind,
    data: &NcDataset,
    cfg: &GnnConfig,
    ctl: TrainControl<'_>,
) -> TrainedNc {
    match method {
        GmlMethodKind::Gcn => gcn::train(data, cfg, ctl),
        GmlMethodKind::Rgcn => rgcn::train(data, cfg, ctl),
        GmlMethodKind::GraphSaint => saint::train(data, cfg, ctl),
        GmlMethodKind::ShadowSaint => shadow::train(data, cfg, ctl),
        other => panic!("{other} is not a node-classification method"),
    }
}

/// Plain (tape-free) two-layer GCN forward used for evaluation:
/// `H = relu(Â X W1 + b1)`, `Z = Â H W2 + b2`. Returns `(H, Z)`.
pub(crate) fn gcn_forward(
    adj: &CsrMatrix,
    x: &Matrix,
    w1: &Matrix,
    b1: &Matrix,
    w2: &Matrix,
    b2: &Matrix,
) -> (Matrix, Matrix) {
    let mut h = adj.spmm(&x.matmul(w1));
    add_bias_inplace(&mut h, b1);
    relu_inplace(&mut h);
    let mut z = adj.spmm(&h.matmul(w2));
    add_bias_inplace(&mut z, b2);
    (h, z)
}

pub(crate) fn add_bias_inplace(m: &mut Matrix, bias: &Matrix) {
    for r in 0..m.rows() {
        for (o, &b) in m.row_mut(r).iter_mut().zip(bias.row(0)) {
            *o += b;
        }
    }
}

pub(crate) fn relu_inplace(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Split-wise accuracy of predictions indexed by target position.
pub(crate) fn split_accuracy(pred: &[usize], labels: &[u32], idx: &[u32]) -> f64 {
    let p: Vec<usize> = idx.iter().map(|&i| pred[i as usize]).collect();
    let t: Vec<u32> = idx.iter().map(|&i| labels[i as usize]).collect();
    accuracy(&p, &t)
}

/// Assemble the final [`TrainedNc`] from full-target logits/embeddings.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish(
    method: GmlMethodKind,
    data: &NcDataset,
    target_logits: Matrix,
    target_embeddings: Matrix,
    loss_curve: Vec<f32>,
    train_time_s: f64,
    peak_mem_bytes: usize,
    inference_time_ms: f64,
) -> TrainedNc {
    let predictions = target_logits.argmax_rows();
    let test_metric = split_accuracy(&predictions, &data.labels, &data.split.test);
    let valid_metric = split_accuracy(&predictions, &data.labels, &data.split.valid);
    TrainedNc {
        report: TrainReport {
            method,
            train_time_s,
            peak_mem_bytes,
            test_metric,
            valid_metric,
            mrr: 0.0,
            loss_curve,
            n_nodes: data.graph.n_nodes(),
            n_edges: data.graph.n_edges(),
            inference_time_ms,
        },
        target_logits,
        target_embeddings,
        predictions,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use kgnet_datagen::vocab::dblp as v;
    use kgnet_datagen::{generate_dblp, DblpConfig};
    use kgnet_graph::{NcTask, SplitRatios, SplitStrategy};

    use crate::dataset::{build_nc_dataset, NcDataset};

    /// A tiny DBLP NC dataset with strong signal for trainer smoke tests.
    pub fn tiny_nc() -> NcDataset {
        let (st, _) = generate_dblp(&DblpConfig::tiny(23));
        build_nc_dataset(
            &st,
            &NcTask { target_type: v::PUBLICATION.into(), label_predicate: v::PUBLISHED_IN.into() },
            SplitStrategy::Random,
            SplitRatios::default(),
            5,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_forward_shapes() {
        let adj = CsrMatrix::gcn_norm(4, &[(0, 1), (1, 2), (2, 3)]);
        let x = Matrix::filled(4, 3, 0.5);
        let w1 = Matrix::filled(3, 5, 0.1);
        let b1 = Matrix::zeros(1, 5);
        let w2 = Matrix::filled(5, 2, 0.1);
        let b2 = Matrix::zeros(1, 2);
        let (h, z) = gcn_forward(&adj, &x, &w1, &b1, &w2, &b2);
        assert_eq!(h.shape(), (4, 5));
        assert_eq!(z.shape(), (4, 2));
    }

    #[test]
    fn pre_raised_cancel_runs_zero_epochs() {
        use std::sync::atomic::AtomicBool;
        // A flag raised before the run starts proves the poll sits at the
        // top of every epoch loop: not a single epoch may execute, no
        // matter how many are configured.
        let data = testutil::tiny_nc();
        let cfg = GnnConfig { epochs: 5000, ..GnnConfig::fast_test() };
        let flag = AtomicBool::new(true);
        for method in [
            GmlMethodKind::Gcn,
            GmlMethodKind::Rgcn,
            GmlMethodKind::GraphSaint,
            GmlMethodKind::ShadowSaint,
        ] {
            let out = train_nc_ctl(method, &data, &cfg, TrainControl::with_flag(&flag));
            assert!(
                out.report.loss_curve.is_empty(),
                "{method} ran {} epochs after cancellation",
                out.report.loss_curve.len()
            );
        }
    }

    #[test]
    fn mid_run_cancel_stops_within_epochs_not_at_run_end() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // The run is configured far beyond what could finish quickly; a
        // cancel raised shortly after the start must end it long before the
        // configured horizon (the per-epoch poll bounds the overshoot).
        let data = testutil::tiny_nc();
        let cfg = GnnConfig { epochs: 200_000, dropout: 0.0, ..GnnConfig::fast_test() };
        let flag = Arc::new(AtomicBool::new(false));
        let raiser = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                flag.store(true, Ordering::SeqCst);
            })
        };
        let out = train_nc_ctl(GmlMethodKind::Gcn, &data, &cfg, TrainControl::with_flag(&flag));
        raiser.join().unwrap();
        let epochs_run = out.report.loss_curve.len();
        assert!(
            epochs_run < cfg.epochs / 10,
            "cancel did not bound the run: {epochs_run}/{} epochs",
            cfg.epochs
        );
    }

    #[test]
    fn relu_and_bias_helpers() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 2.0]);
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.5, 2.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        add_bias_inplace(&mut m, &b);
        assert_eq!(m.as_slice(), &[1.0, 1.5, 3.0]);
    }
}
