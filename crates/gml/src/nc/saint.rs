//! GraphSAINT (Zeng et al., ICLR 2020): mini-batch training on sampled
//! subgraphs with full-graph inference.
//!
//! Each step samples a subgraph by random walks from a root set (half train
//! targets, half uniform nodes), induces the edge set among sampled nodes,
//! builds the normalised sub-adjacency, and trains a two-layer GCN on it.
//! Loss normalisation uses uniform weights (the unbiased-estimator
//! coefficients of the paper are a variance reduction; the sampled-training
//! time/memory profile measured by Fig. 13/14 is preserved).

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use kgnet_linalg::{init, memtrack, Adam, CsrMatrix, Matrix, Optimizer, ParamStore, Tape};

use crate::config::{GmlMethodKind, GnnConfig};
use crate::control::TrainControl;
use crate::dataset::NcDataset;
use crate::nc::{finish, gcn_forward, TrainedNc};
use crate::par;

/// One sampled subgraph batch, ready for tape evaluation on any worker.
struct PreparedBatch {
    nodes: Vec<u32>,
    edges: Vec<(u32, u32)>,
    batch_rows: Vec<u32>,
    batch_labels: Vec<u32>,
    /// Derived dropout seed (see [`par::batch_seed`]).
    seed: u64,
}

/// Train GraphSAINT on the dataset. Cancellation via `ctl` is polled at
/// every epoch boundary.
pub fn train(data: &NcDataset, cfg: &GnnConfig, ctl: TrainControl<'_>) -> TrainedNc {
    let scope = memtrack::MemScope::begin();
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let n = data.graph.n_nodes();
    let c = data.n_classes().max(2);
    let f = cfg.hidden;
    let (offsets, neighbors) = data.graph.neighbor_lists();

    let mut ps = ParamStore::new();
    let x = ps.add(init::xavier_uniform(n, f, &mut rng));
    let w1 = ps.add(init::xavier_uniform(f, f, &mut rng));
    let b1 = ps.add(Matrix::zeros(1, f));
    let w2 = ps.add(init::xavier_uniform(f, c, &mut rng));
    let b2 = ps.add(Matrix::zeros(1, c));
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

    // Label lookup: global node -> (target index).
    let mut label_of_node: FxHashMap<u32, u32> = FxHashMap::default();
    for &i in &data.split.train {
        label_of_node.insert(data.target_nodes[i as usize], data.labels[i as usize]);
    }
    let train_target_nodes: Vec<u32> =
        data.split.train.iter().map(|&i| data.target_nodes[i as usize]).collect();

    let steps_per_epoch = (train_target_nodes.len() / cfg.saint_roots.max(1)).clamp(1, 32);

    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if ctl.is_cancelled() {
            break;
        }
        let mut epoch_loss = 0.0f32;
        let mut counted = 0usize;
        let mut step = 0usize;
        // Waves of GRAD_WAVE sampled subgraphs: sampling stays sequential on
        // the trainer's RNG stream; the gradient tapes run in parallel and
        // reduce in batch order into one synchronous optimizer step.
        while step < steps_per_epoch {
            let wave_len = par::GRAD_WAVE.min(steps_per_epoch - step);
            let mut prepared: Vec<PreparedBatch> = Vec::with_capacity(wave_len);
            for wave_step in 0..wave_len {
                // --- Sample subgraph by random walks.
                let mut nodes: Vec<u32> =
                    Vec::with_capacity(cfg.saint_roots * (cfg.saint_walk_length + 1));
                let mut local: FxHashMap<u32, u32> = FxHashMap::default();
                let push = |v: u32, nodes: &mut Vec<u32>, local: &mut FxHashMap<u32, u32>| {
                    local.entry(v).or_insert_with(|| {
                        nodes.push(v);
                        (nodes.len() - 1) as u32
                    });
                };
                for r in 0..cfg.saint_roots {
                    let root = if r % 2 == 0 {
                        *train_target_nodes.choose(&mut rng).expect("train targets")
                    } else {
                        rng.gen_range(0..n as u32)
                    };
                    push(root, &mut nodes, &mut local);
                    let mut cur = root;
                    for _ in 0..cfg.saint_walk_length {
                        let (s, e) = (offsets[cur as usize], offsets[cur as usize + 1]);
                        if s == e {
                            break;
                        }
                        cur = neighbors[rng.gen_range(s..e)];
                        push(cur, &mut nodes, &mut local);
                    }
                }
                // --- Induce edges among sampled nodes.
                let mut edges = Vec::new();
                for (&u, &lu) in local.iter() {
                    let (s, e) = (offsets[u as usize], offsets[u as usize + 1]);
                    for &v in &neighbors[s..e] {
                        if let Some(&lv) = local.get(&v) {
                            if lu < lv {
                                edges.push((lu, lv));
                            }
                        }
                    }
                }

                // --- Train targets inside the subgraph.
                let mut batch_rows = Vec::new();
                let mut batch_labels = Vec::new();
                for (i, &g) in nodes.iter().enumerate() {
                    if let Some(&lab) = label_of_node.get(&g) {
                        batch_rows.push(i as u32);
                        batch_labels.push(lab);
                    }
                }
                if batch_labels.is_empty() {
                    continue;
                }
                let seed = par::batch_seed(cfg.seed, epoch, step + wave_step);
                prepared.push(PreparedBatch { nodes, edges, batch_rows, batch_labels, seed });
            }
            step += wave_len;
            if prepared.is_empty() {
                continue;
            }

            // --- One data-parallel GCN wave over the sampled subgraphs.
            counted += prepared.len();
            let wave = par::parallel_batch_grads(&mut prepared, |batch| {
                let mut drop_rng = StdRng::seed_from_u64(batch.seed);
                let k = batch.nodes.len();
                let sub_adj = Rc::new(CsrMatrix::gcn_norm(k, &batch.edges));
                let mut tape = Tape::new();
                let a = tape.adjacency(sub_adj);
                let vx = tape.param(ps.get(x).clone());
                let vw1 = tape.param(ps.get(w1).clone());
                let vb1 = tape.param(ps.get(b1).clone());
                let vw2 = tape.param(ps.get(w2).clone());
                let vb2 = tape.param(ps.get(b2).clone());
                let xs = tape.gather(vx, Rc::new(std::mem::take(&mut batch.nodes)));
                let xw = tape.matmul(xs, vw1);
                let h = tape.spmm(a, xw);
                let h = tape.add_bias(h, vb1);
                let h = tape.relu(h);
                let h = tape.dropout(h, cfg.dropout, &mut drop_rng);
                let hw = tape.matmul(h, vw2);
                let z = tape.spmm(a, hw);
                let z = tape.add_bias(z, vb2);
                let zt = tape.gather(z, Rc::new(std::mem::take(&mut batch.batch_rows)));
                let loss = tape.softmax_ce(zt, Rc::new(std::mem::take(&mut batch.batch_labels)));
                tape.backward(loss);
                let grads = [(x, vx), (w1, vw1), (b1, vb1), (w2, vw2), (b2, vb2)]
                    .map(|(pid, var)| (pid, tape.take_grad(var)))
                    .to_vec();
                (tape.scalar(loss), grads)
            });
            epoch_loss += par::reduce_grads_into(&mut ps, wave);
            opt.step(&mut ps);
        }
        loss_curve.push(if counted > 0 { epoch_loss / counted as f32 } else { f32::NAN });
        ctl.epoch_completed(epoch);
    }
    let train_time_s = t0.elapsed().as_secs_f64();
    let peak = scope.peak_delta();

    // Full-graph inference with the trained weights (standard GraphSAINT).
    let ti = Instant::now();
    let adj = data.graph.gcn_adjacency();
    let (h, z) = gcn_forward(&adj, ps.get(x), ps.get(w1), ps.get(b1), ps.get(w2), ps.get(b2));
    let infer_ms = ti.elapsed().as_secs_f64() * 1e3 / data.target_nodes.len().max(1) as f64;

    let target_logits = z.gather_rows(&data.target_nodes);
    let target_embeddings = h.gather_rows(&data.target_nodes);
    finish(
        GmlMethodKind::GraphSaint,
        data,
        target_logits,
        target_embeddings,
        loss_curve,
        train_time_s,
        peak,
        infer_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nc::testutil::tiny_nc;

    #[test]
    fn saint_learns_better_than_chance() {
        let data = tiny_nc();
        let cfg = GnnConfig {
            epochs: 60,
            dropout: 0.0,
            saint_roots: 24,
            saint_walk_length: 2,
            ..GnnConfig::fast_test()
        };
        let out = train(&data, &cfg, TrainControl::NONE);
        let chance = 1.0 / data.n_classes() as f64;
        assert!(
            out.report.test_metric > chance * 2.0,
            "test accuracy {} vs chance {chance}",
            out.report.test_metric
        );
    }

    #[test]
    fn saint_records_sampling_based_profile() {
        let data = tiny_nc();
        let out = train(&data, &GnnConfig::fast_test(), TrainControl::NONE);
        assert_eq!(out.report.method, GmlMethodKind::GraphSaint);
        assert!(out.report.train_time_s > 0.0);
        assert_eq!(out.target_logits.rows(), data.n_targets());
    }
}
