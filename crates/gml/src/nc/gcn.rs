//! Full-batch two-layer GCN (Kipf & Welling) with learnable node features.
//!
//! Node features are a trainable embedding table initialised with Xavier
//! weights, matching the paper's setup ("node features are initialized
//! randomly using Xavier weight initialization").

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use kgnet_linalg::{init, memtrack, Adam, CsrMatrix, Matrix, Optimizer, ParamStore, Tape};

use crate::config::{GmlMethodKind, GnnConfig};
use crate::control::TrainControl;
use crate::dataset::NcDataset;
use crate::nc::{finish, gcn_forward, TrainedNc};

/// Train a full-batch GCN on the dataset. Cancellation via `ctl` is polled
/// at every epoch boundary.
pub fn train(data: &NcDataset, cfg: &GnnConfig, ctl: TrainControl<'_>) -> TrainedNc {
    let scope = memtrack::MemScope::begin();
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let n = data.graph.n_nodes();
    let c = data.n_classes().max(2);
    let f = cfg.hidden;
    let adj = Rc::new(data.graph.gcn_adjacency());

    let mut ps = ParamStore::new();
    let x = ps.add(init::xavier_uniform(n, f, &mut rng));
    let w1 = ps.add(init::xavier_uniform(f, f, &mut rng));
    let b1 = ps.add(Matrix::zeros(1, f));
    let w2 = ps.add(init::xavier_uniform(f, c, &mut rng));
    let b2 = ps.add(Matrix::zeros(1, c));
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

    let train_nodes: Rc<Vec<u32>> =
        Rc::new(data.split.train.iter().map(|&i| data.target_nodes[i as usize]).collect());
    let train_labels: Rc<Vec<u32>> =
        Rc::new(data.split.train.iter().map(|&i| data.labels[i as usize]).collect());

    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if ctl.is_cancelled() {
            break;
        }
        let mut tape = Tape::new();
        let a = tape.adjacency(adj.clone());
        let vx = tape.param(ps.get(x).clone());
        let vw1 = tape.param(ps.get(w1).clone());
        let vb1 = tape.param(ps.get(b1).clone());
        let vw2 = tape.param(ps.get(w2).clone());
        let vb2 = tape.param(ps.get(b2).clone());

        let xw = tape.matmul(vx, vw1);
        let h = tape.spmm(a, xw);
        let h = tape.add_bias(h, vb1);
        let h = tape.relu(h);
        let h = tape.dropout(h, cfg.dropout, &mut rng);
        let hw = tape.matmul(h, vw2);
        let z = tape.spmm(a, hw);
        let z = tape.add_bias(z, vb2);
        let zt = tape.gather(z, train_nodes.clone());
        let loss = tape.softmax_ce(zt, train_labels.clone());
        tape.backward(loss);
        loss_curve.push(tape.scalar(loss));

        for (pid, var) in [(x, vx), (w1, vw1), (b1, vb1), (w2, vw2), (b2, vb2)] {
            if let Some(g) = tape.take_grad(var) {
                ps.set_grad(pid, g);
            }
        }
        opt.step(&mut ps);
        ctl.epoch_completed(epoch);
    }
    let train_time_s = t0.elapsed().as_secs_f64();
    let peak = scope.peak_delta();

    // Final full-graph inference.
    let ti = Instant::now();
    let (h, z) = evaluate(&adj, &ps, x, w1, b1, w2, b2);
    let infer_ms = ti.elapsed().as_secs_f64() * 1e3 / data.target_nodes.len().max(1) as f64;

    let target_logits = z.gather_rows(&data.target_nodes);
    let target_embeddings = h.gather_rows(&data.target_nodes);
    finish(
        GmlMethodKind::Gcn,
        data,
        target_logits,
        target_embeddings,
        loss_curve,
        train_time_s,
        peak,
        infer_ms,
    )
}

#[allow(clippy::too_many_arguments)]
fn evaluate(
    adj: &CsrMatrix,
    ps: &ParamStore,
    x: kgnet_linalg::ParamId,
    w1: kgnet_linalg::ParamId,
    b1: kgnet_linalg::ParamId,
    w2: kgnet_linalg::ParamId,
    b2: kgnet_linalg::ParamId,
) -> (Matrix, Matrix) {
    gcn_forward(adj, ps.get(x), ps.get(w1), ps.get(b1), ps.get(w2), ps.get(b2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nc::testutil::tiny_nc;

    #[test]
    fn gcn_learns_better_than_chance() {
        let data = tiny_nc();
        let cfg = GnnConfig { epochs: 60, dropout: 0.0, ..GnnConfig::fast_test() };
        let out = train(&data, &cfg, TrainControl::NONE);
        let chance = 1.0 / data.n_classes() as f64;
        assert!(
            out.report.test_metric > chance * 2.0,
            "test accuracy {} not better than chance {chance}",
            out.report.test_metric
        );
        assert_eq!(out.predictions.len(), data.n_targets());
        assert_eq!(out.target_logits.shape(), (data.n_targets(), data.n_classes()));
    }

    #[test]
    fn loss_decreases_over_training() {
        let data = tiny_nc();
        let cfg = GnnConfig { epochs: 30, dropout: 0.0, ..GnnConfig::fast_test() };
        let out = train(&data, &cfg, TrainControl::NONE);
        let first = out.report.loss_curve[0];
        let last = *out.report.loss_curve.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn report_records_resources() {
        let data = tiny_nc();
        let out = train(&data, &GnnConfig::fast_test(), TrainControl::NONE);
        assert!(out.report.train_time_s > 0.0);
        assert!(out.report.peak_mem_bytes > 0);
        assert!(out.report.n_nodes > 0 && out.report.n_edges > 0);
    }
}
