//! Full-batch relational GCN (Schlichtkrull et al., ESWC 2018).
//!
//! Message passing runs per relation (edge type), including inverse
//! directions, with a separate projection per relation plus a self-loop
//! projection:
//!
//! `H^(l+1) = σ( Σ_r Â_r H^(l) W_r^(l) + H^(l) W_self^(l) + b )`
//!
//! At reproduction scale we use direct per-relation weights instead of basis
//! decomposition (the decomposition is a regulariser for very large relation
//! counts; the memory/time profile that the paper's Fig. 13/14 measures —
//! full-batch propagation over every relation — is preserved).
//!
//! Per-relation propagation is restricted to rows with outgoing edges under
//! that relation (`select_rows`), then scatter-summed back, which keeps the
//! dense work proportional to the number of edges rather than
//! `relations x nodes`.

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use kgnet_linalg::{
    init, memtrack, Adam, CsrMatrix, Matrix, Optimizer, ParamId, ParamStore, Tape, Var,
};

use crate::config::{GmlMethodKind, GnnConfig};
use crate::control::TrainControl;
use crate::dataset::NcDataset;
use crate::nc::{add_bias_inplace, finish, relu_inplace, TrainedNc};

struct Relation {
    /// Compact adjacency over active source rows (`k x n`).
    sub_adj: Rc<CsrMatrix>,
    /// The active source rows.
    rows: Rc<Vec<u32>>,
}

/// Train a full-batch RGCN on the dataset. Cancellation via `ctl` is
/// polled at every epoch boundary.
pub fn train(data: &NcDataset, cfg: &GnnConfig, ctl: TrainControl<'_>) -> TrainedNc {
    let scope = memtrack::MemScope::begin();
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let n = data.graph.n_nodes();
    let c = data.n_classes().max(2);
    let f = cfg.hidden;

    // Build per-relation compact adjacencies (forward + inverse).
    let relations: Vec<Relation> = data
        .graph
        .relation_adjacencies(true)
        .into_iter()
        .filter(|adj| adj.nnz() > 0)
        .map(|adj| {
            let rows = adj.active_rows();
            let sub_adj = Rc::new(adj.select_rows(&rows));
            Relation { sub_adj, rows: Rc::new(rows) }
        })
        .collect();
    let n_rel = relations.len();

    let mut ps = ParamStore::new();
    let x = ps.add(init::xavier_uniform(n, f, &mut rng));
    let w1_self = ps.add(init::xavier_uniform(f, f, &mut rng));
    let b1 = ps.add(Matrix::zeros(1, f));
    let w2_self = ps.add(init::xavier_uniform(f, c, &mut rng));
    let b2 = ps.add(Matrix::zeros(1, c));
    let w1_rel: Vec<ParamId> =
        (0..n_rel).map(|_| ps.add(init::xavier_uniform(f, f, &mut rng))).collect();
    let w2_rel: Vec<ParamId> =
        (0..n_rel).map(|_| ps.add(init::xavier_uniform(f, c, &mut rng))).collect();
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

    let train_nodes: Rc<Vec<u32>> =
        Rc::new(data.split.train.iter().map(|&i| data.target_nodes[i as usize]).collect());
    let train_labels: Rc<Vec<u32>> =
        Rc::new(data.split.train.iter().map(|&i| data.labels[i as usize]).collect());

    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if ctl.is_cancelled() {
            break;
        }
        let mut tape = Tape::new();
        let adj_ids: Vec<usize> =
            relations.iter().map(|r| tape.adjacency(r.sub_adj.clone())).collect();
        let vx = tape.param(ps.get(x).clone());
        let vw1s = tape.param(ps.get(w1_self).clone());
        let vb1 = tape.param(ps.get(b1).clone());
        let vw2s = tape.param(ps.get(w2_self).clone());
        let vb2 = tape.param(ps.get(b2).clone());
        let vw1r: Vec<Var> = w1_rel.iter().map(|&p| tape.param(ps.get(p).clone())).collect();
        let vw2r: Vec<Var> = w2_rel.iter().map(|&p| tape.param(ps.get(p).clone())).collect();

        let h = rgcn_layer(&mut tape, &relations, &adj_ids, vx, &vw1r, vw1s, vb1, n);
        let h = tape.relu(h);
        let h = tape.dropout(h, cfg.dropout, &mut rng);
        let z = rgcn_layer(&mut tape, &relations, &adj_ids, h, &vw2r, vw2s, vb2, n);
        let zt = tape.gather(z, train_nodes.clone());
        let loss = tape.softmax_ce(zt, train_labels.clone());
        tape.backward(loss);
        loss_curve.push(tape.scalar(loss));

        for (pid, var) in [(x, vx), (w1_self, vw1s), (b1, vb1), (w2_self, vw2s), (b2, vb2)] {
            if let Some(g) = tape.take_grad(var) {
                ps.set_grad(pid, g);
            }
        }
        for (pid, var) in w1_rel.iter().zip(&vw1r).chain(w2_rel.iter().zip(&vw2r)) {
            if let Some(g) = tape.take_grad(*var) {
                ps.set_grad(*pid, g);
            }
        }
        opt.step(&mut ps);
        ctl.epoch_completed(epoch);
    }
    let train_time_s = t0.elapsed().as_secs_f64();
    let peak = scope.peak_delta();

    // Final inference (tape-free forward).
    let ti = Instant::now();
    let (h, z) = forward_eval(data, &relations, &ps, x, &w1_rel, w1_self, b1, &w2_rel, w2_self, b2);
    let infer_ms = ti.elapsed().as_secs_f64() * 1e3 / data.target_nodes.len().max(1) as f64;

    let target_logits = z.gather_rows(&data.target_nodes);
    let target_embeddings = h.gather_rows(&data.target_nodes);
    finish(
        GmlMethodKind::Rgcn,
        data,
        target_logits,
        target_embeddings,
        loss_curve,
        train_time_s,
        peak,
        infer_ms,
    )
}

/// One RGCN layer on the tape.
#[allow(clippy::too_many_arguments)]
fn rgcn_layer(
    tape: &mut Tape,
    relations: &[Relation],
    adj_ids: &[usize],
    input: Var,
    w_rel: &[Var],
    w_self: Var,
    bias: Var,
    n: usize,
) -> Var {
    let mut parts = Vec::with_capacity(relations.len());
    for (rel, (&adj, &w)) in relations.iter().zip(adj_ids.iter().zip(w_rel)) {
        let msg = tape.spmm(adj, input); // k x f
        let proj = tape.matmul(msg, w); // k x out
        parts.push((proj, rel.rows.clone()));
    }
    let self_msg = tape.matmul(input, w_self);
    let agg = if parts.is_empty() {
        self_msg
    } else {
        let scattered = tape.scatter_sum(parts, n);
        tape.add(scattered, self_msg)
    };
    tape.add_bias(agg, bias)
}

/// Tape-free forward for evaluation.
#[allow(clippy::too_many_arguments)]
fn forward_eval(
    data: &NcDataset,
    relations: &[Relation],
    ps: &ParamStore,
    x: ParamId,
    w1_rel: &[ParamId],
    w1_self: ParamId,
    b1: ParamId,
    w2_rel: &[ParamId],
    w2_self: ParamId,
    b2: ParamId,
) -> (Matrix, Matrix) {
    let n = data.graph.n_nodes();
    let layer = |input: &Matrix, w_rel: &[ParamId], w_self: ParamId, b: ParamId, out_dim: usize| {
        let mut acc = input.matmul(ps.get(w_self));
        debug_assert_eq!(acc.cols(), out_dim);
        for (rel, &w) in relations.iter().zip(w_rel) {
            let msg = rel.sub_adj.spmm(input);
            let proj = msg.matmul(ps.get(w));
            for (j, &r) in rel.rows.iter().enumerate() {
                let dst = acc.row_mut(r as usize);
                for (o, &v) in dst.iter_mut().zip(proj.row(j)) {
                    *o += v;
                }
            }
        }
        add_bias_inplace(&mut acc, ps.get(b));
        acc
    };
    let _ = n;
    let mut h = layer(ps.get(x), w1_rel, w1_self, b1, ps.get(w1_self).cols());
    relu_inplace(&mut h);
    let z = layer(&h, w2_rel, w2_self, b2, ps.get(w2_self).cols());
    (h, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nc::testutil::tiny_nc;

    #[test]
    fn rgcn_learns_better_than_chance() {
        let data = tiny_nc();
        let cfg = GnnConfig { epochs: 40, dropout: 0.0, ..GnnConfig::fast_test() };
        let out = train(&data, &cfg, TrainControl::NONE);
        let chance = 1.0 / data.n_classes() as f64;
        assert!(
            out.report.test_metric > chance * 2.0,
            "test accuracy {} vs chance {chance}",
            out.report.test_metric
        );
    }

    #[test]
    fn rgcn_loss_decreases() {
        let data = tiny_nc();
        let cfg = GnnConfig { epochs: 25, dropout: 0.0, ..GnnConfig::fast_test() };
        let out = train(&data, &cfg, TrainControl::NONE);
        assert!(out.report.loss_curve.last().unwrap() < &out.report.loss_curve[0]);
    }

    #[test]
    fn rgcn_uses_more_memory_than_sampled_methods_would() {
        // Full-batch RGCN must at least allocate per-relation activations.
        let data = tiny_nc();
        let out = train(&data, &GnnConfig::fast_test(), TrainControl::NONE);
        assert!(out.report.peak_mem_bytes > data.graph.n_nodes() * 16);
    }
}
