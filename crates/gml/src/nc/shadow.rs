//! ShadowSAINT / shaDow-GNN (Zeng et al., 2022): decoupled depth and scope.
//!
//! For every target node a small bounded-scope subgraph is extracted once
//! (BFS with a per-node neighbour cap); batches of these ego-subgraphs are
//! assembled into one block-diagonal adjacency, a two-layer GCN runs on the
//! batch, and each target is classified from its own root-node
//! representation. Inference for valid/test targets uses the same batched
//! extraction, so both training and inference touch only the local scopes.

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashMap;

use kgnet_linalg::{init, memtrack, Adam, CsrMatrix, Matrix, Optimizer, ParamStore, Tape};

use crate::config::{GmlMethodKind, GnnConfig};
use crate::control::TrainControl;
use crate::dataset::NcDataset;
use crate::nc::{finish, TrainedNc};
use crate::par;

/// A cached per-target ego subgraph (local node 0 is the root).
struct EgoNet {
    nodes: Vec<u32>,
    edges: Vec<(u32, u32)>,
}

/// One assembled mini-batch, ready for tape evaluation on any worker.
struct PreparedBatch {
    nodes: Vec<u32>,
    edges: Vec<(u32, u32)>,
    roots: Vec<u32>,
    labels: Vec<u32>,
    /// Derived dropout seed (see [`par::batch_seed`]).
    seed: u64,
}

/// Train ShadowSAINT on the dataset. Cancellation via `ctl` is polled at
/// every epoch boundary.
pub fn train(data: &NcDataset, cfg: &GnnConfig, ctl: TrainControl<'_>) -> TrainedNc {
    let scope = memtrack::MemScope::begin();
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let n = data.graph.n_nodes();
    let c = data.n_classes().max(2);
    let f = cfg.hidden;
    let (offsets, neighbors) = data.graph.neighbor_lists();

    // Extract every target's bounded-scope subgraph once; reused each epoch.
    let egos: Vec<EgoNet> = data
        .target_nodes
        .iter()
        .map(|&root| extract_ego(root, &offsets, &neighbors, cfg, &mut rng))
        .collect();

    let mut ps = ParamStore::new();
    let x = ps.add(init::xavier_uniform(n, f, &mut rng));
    let w1 = ps.add(init::xavier_uniform(f, f, &mut rng));
    let b1 = ps.add(Matrix::zeros(1, f));
    let w2 = ps.add(init::xavier_uniform(f, f, &mut rng));
    let b2 = ps.add(Matrix::zeros(1, f));
    let w3 = ps.add(init::xavier_uniform(f, c, &mut rng));
    let b3 = ps.add(Matrix::zeros(1, c));
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

    let mut train_idx: Vec<u32> = data.split.train.clone();
    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if ctl.is_cancelled() {
            break;
        }
        train_idx.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        // Waves of GRAD_WAVE batches: assembled sequentially (one RNG
        // stream), tapes evaluated in parallel, gradients averaged in batch
        // order into one synchronous step — identical on any pool size.
        for wave_idx in train_idx.chunks(cfg.batch_size * par::GRAD_WAVE) {
            let mut prepared: Vec<PreparedBatch> = wave_idx
                .chunks(cfg.batch_size)
                .map(|chunk| {
                    let (nodes, edges, roots) = assemble_batch(&egos, chunk);
                    let labels: Vec<u32> = chunk.iter().map(|&i| data.labels[i as usize]).collect();
                    let seed = par::batch_seed(cfg.seed, epoch, batches);
                    batches += 1;
                    PreparedBatch { nodes, edges, roots, labels, seed }
                })
                .collect();

            let wave = par::parallel_batch_grads(&mut prepared, |batch| {
                let mut drop_rng = StdRng::seed_from_u64(batch.seed);
                let k = batch.nodes.len();
                let sub_adj = Rc::new(CsrMatrix::gcn_norm(k, &batch.edges));

                let mut tape = Tape::new();
                let a = tape.adjacency(sub_adj);
                let vx = tape.param(ps.get(x).clone());
                let vw1 = tape.param(ps.get(w1).clone());
                let vb1 = tape.param(ps.get(b1).clone());
                let vw2 = tape.param(ps.get(w2).clone());
                let vb2 = tape.param(ps.get(b2).clone());
                let vw3 = tape.param(ps.get(w3).clone());
                let vb3 = tape.param(ps.get(b3).clone());

                let xs = tape.gather(vx, Rc::new(std::mem::take(&mut batch.nodes)));
                let xw = tape.matmul(xs, vw1);
                let h = tape.spmm(a, xw);
                let h = tape.add_bias(h, vb1);
                let h = tape.relu(h);
                let h = tape.dropout(h, cfg.dropout, &mut drop_rng);
                let hw = tape.matmul(h, vw2);
                let h2 = tape.spmm(a, hw);
                let h2 = tape.add_bias(h2, vb2);
                let h2 = tape.relu(h2);
                let root_emb = tape.gather(h2, Rc::new(std::mem::take(&mut batch.roots)));
                let z = tape.matmul(root_emb, vw3);
                let z = tape.add_bias(z, vb3);
                let loss = tape.softmax_ce(z, Rc::new(std::mem::take(&mut batch.labels)));
                tape.backward(loss);
                let grads =
                    [(x, vx), (w1, vw1), (b1, vb1), (w2, vw2), (b2, vb2), (w3, vw3), (b3, vb3)]
                        .map(|(pid, var)| (pid, tape.take_grad(var)))
                        .to_vec();
                (tape.scalar(loss), grads)
            });
            epoch_loss += par::reduce_grads_into(&mut ps, wave);
            opt.step(&mut ps);
        }
        loss_curve.push(if batches > 0 { epoch_loss / batches as f32 } else { f32::NAN });
        ctl.epoch_completed(epoch);
    }
    let train_time_s = t0.elapsed().as_secs_f64();
    let peak = scope.peak_delta();

    // Inference over every target via the same batched scopes.
    let ti = Instant::now();
    let mut target_logits = Matrix::zeros(data.n_targets(), c);
    let mut target_embeddings = Matrix::zeros(data.n_targets(), f);
    let all_idx: Vec<u32> = (0..data.n_targets() as u32).collect();
    for chunk in all_idx.chunks(cfg.batch_size) {
        let (batch_nodes, batch_edges, roots) = assemble_batch(&egos, chunk);
        let k = batch_nodes.len();
        let sub_adj = CsrMatrix::gcn_norm(k, &batch_edges);
        let xs = ps.get(x).gather_rows(&batch_nodes);
        let mut h = sub_adj.spmm(&xs.matmul(ps.get(w1)));
        crate::nc::add_bias_inplace(&mut h, ps.get(b1));
        crate::nc::relu_inplace(&mut h);
        let mut h2 = sub_adj.spmm(&h.matmul(ps.get(w2)));
        crate::nc::add_bias_inplace(&mut h2, ps.get(b2));
        crate::nc::relu_inplace(&mut h2);
        let root_emb = h2.gather_rows(&roots);
        let mut z = root_emb.matmul(ps.get(w3));
        crate::nc::add_bias_inplace(&mut z, ps.get(b3));
        for (j, &i) in chunk.iter().enumerate() {
            target_logits.row_mut(i as usize).copy_from_slice(z.row(j));
            target_embeddings.row_mut(i as usize).copy_from_slice(root_emb.row(j));
        }
    }
    let infer_ms = ti.elapsed().as_secs_f64() * 1e3 / data.n_targets().max(1) as f64;

    finish(
        GmlMethodKind::ShadowSaint,
        data,
        target_logits,
        target_embeddings,
        loss_curve,
        train_time_s,
        peak,
        infer_ms,
    )
}

/// BFS with a neighbour cap; local node 0 is the root.
fn extract_ego(
    root: u32,
    offsets: &[usize],
    neighbors: &[u32],
    cfg: &GnnConfig,
    rng: &mut StdRng,
) -> EgoNet {
    let mut nodes = vec![root];
    let mut local: FxHashMap<u32, u32> = FxHashMap::default();
    local.insert(root, 0);
    let mut edges = Vec::new();
    let mut frontier = vec![root];
    for _depth in 0..cfg.shadow_depth {
        let mut next = Vec::new();
        for &u in &frontier {
            let lu = local[&u];
            let (s, e) = (offsets[u as usize], offsets[u as usize + 1]);
            let mut nb: Vec<u32> = neighbors[s..e].to_vec();
            if nb.len() > cfg.shadow_neighbor_cap {
                nb.shuffle(rng);
                nb.truncate(cfg.shadow_neighbor_cap);
            }
            for v in nb {
                let lv = *local.entry(v).or_insert_with(|| {
                    nodes.push(v);
                    next.push(v);
                    (nodes.len() - 1) as u32
                });
                edges.push((lu, lv));
            }
        }
        frontier = next;
    }
    EgoNet { nodes, edges }
}

/// Concatenate ego subgraphs of the chosen targets into one block-diagonal
/// batch. Returns `(batch nodes, batch edges, root positions)`.
fn assemble_batch(egos: &[EgoNet], chunk: &[u32]) -> (Vec<u32>, Vec<(u32, u32)>, Vec<u32>) {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut roots = Vec::with_capacity(chunk.len());
    for &i in chunk {
        let ego = &egos[i as usize];
        let base = nodes.len() as u32;
        roots.push(base);
        nodes.extend_from_slice(&ego.nodes);
        edges.extend(ego.edges.iter().map(|&(a, b)| (base + a, base + b)));
    }
    (nodes, edges, roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nc::testutil::tiny_nc;

    #[test]
    fn shadow_learns_better_than_chance() {
        let data = tiny_nc();
        let cfg = GnnConfig { epochs: 50, dropout: 0.0, batch_size: 32, ..GnnConfig::fast_test() };
        let out = train(&data, &cfg, TrainControl::NONE);
        let chance = 1.0 / data.n_classes() as f64;
        assert!(
            out.report.test_metric > chance * 2.0,
            "test accuracy {} vs chance {chance}",
            out.report.test_metric
        );
    }

    #[test]
    fn ego_extraction_respects_cap_and_depth() {
        let data = tiny_nc();
        let (offsets, neighbors) = data.graph.neighbor_lists();
        let cfg = GnnConfig { shadow_depth: 1, shadow_neighbor_cap: 3, ..GnnConfig::fast_test() };
        let mut rng = StdRng::seed_from_u64(0);
        let ego = extract_ego(data.target_nodes[0], &offsets, &neighbors, &cfg, &mut rng);
        assert!(ego.nodes.len() <= 1 + 3);
        assert!(ego.edges.len() <= 3);
        assert_eq!(ego.nodes[0], data.target_nodes[0]);
    }

    #[test]
    fn batch_assembly_is_block_diagonal() {
        let egos = vec![
            EgoNet { nodes: vec![10, 11], edges: vec![(0, 1)] },
            EgoNet { nodes: vec![20, 21, 22], edges: vec![(0, 1), (0, 2)] },
        ];
        let (nodes, edges, roots) = assemble_batch(&egos, &[0, 1]);
        assert_eq!(nodes, vec![10, 11, 20, 21, 22]);
        assert_eq!(roots, vec![0, 2]);
        assert_eq!(edges, vec![(0, 1), (2, 3), (2, 4)]);
    }
}
