//! Training configuration and reports shared by all GML methods.

use serde::{Deserialize, Serialize};

/// Identifier of a supported GML method (the paper's Fig. 5/6 lists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GmlMethodKind {
    /// Full-batch spectral GCN.
    Gcn,
    /// Full-batch relational GCN.
    Rgcn,
    /// GraphSAINT subgraph-sampled mini-batch GCN.
    GraphSaint,
    /// ShadowSAINT (shaDow-GNN) bounded-scope per-seed subgraphs.
    ShadowSaint,
    /// MorsE inductive, edge-sampled link prediction.
    Morse,
    /// TransE knowledge-graph embedding.
    TransE,
    /// DistMult knowledge-graph embedding.
    DistMult,
    /// ComplEx knowledge-graph embedding.
    ComplEx,
    /// RotatE knowledge-graph embedding.
    RotatE,
}

impl GmlMethodKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            GmlMethodKind::Gcn => "GCN",
            GmlMethodKind::Rgcn => "RGCN",
            GmlMethodKind::GraphSaint => "G-SAINT",
            GmlMethodKind::ShadowSaint => "SH-SAINT",
            GmlMethodKind::Morse => "MorsE",
            GmlMethodKind::TransE => "TransE",
            GmlMethodKind::DistMult => "DistMult",
            GmlMethodKind::ComplEx => "ComplEx",
            GmlMethodKind::RotatE => "RotatE",
        }
    }

    /// Methods applicable to node classification.
    pub const NC_METHODS: [GmlMethodKind; 4] = [
        GmlMethodKind::Gcn,
        GmlMethodKind::Rgcn,
        GmlMethodKind::GraphSaint,
        GmlMethodKind::ShadowSaint,
    ];

    /// Methods applicable to link prediction.
    pub const LP_METHODS: [GmlMethodKind; 5] = [
        GmlMethodKind::Morse,
        GmlMethodKind::TransE,
        GmlMethodKind::DistMult,
        GmlMethodKind::ComplEx,
        GmlMethodKind::RotatE,
    ];

    /// Whether the method trains by mini-batch sampling (vs full batch).
    pub fn is_sampling_based(&self) -> bool {
        !matches!(self, GmlMethodKind::Gcn | GmlMethodKind::Rgcn)
    }
}

impl std::fmt::Display for GmlMethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Hyper-parameters for the GNN/KGE trainers. Defaults follow the paper's
/// "OGB default configurations" spirit, scaled to the reproduction size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnConfig {
    /// Hidden/embedding width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate (Adam).
    pub lr: f32,
    /// Dropout probability on hidden activations.
    pub dropout: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// RNG seed for init, sampling and negatives.
    pub seed: u64,
    /// Mini-batch size (sampling-based methods).
    pub batch_size: usize,
    /// GraphSAINT: random-walk roots per sampled subgraph.
    pub saint_roots: usize,
    /// GraphSAINT: walk length.
    pub saint_walk_length: usize,
    /// ShadowSAINT: extraction depth around each seed.
    pub shadow_depth: usize,
    /// ShadowSAINT: neighbour cap per node during extraction.
    pub shadow_neighbor_cap: usize,
    /// Negative samples per positive (link prediction).
    pub negatives: usize,
    /// Margin for margin-ranking losses (TransE/RotatE/MorsE).
    pub margin: f32,
}

impl Default for GnnConfig {
    fn default() -> Self {
        GnnConfig {
            hidden: 32,
            epochs: 40,
            lr: 0.01,
            dropout: 0.1,
            weight_decay: 5e-4,
            seed: 1,
            batch_size: 512,
            saint_roots: 64,
            saint_walk_length: 2,
            shadow_depth: 1,
            shadow_neighbor_cap: 10,
            negatives: 8,
            margin: 1.0,
        }
    }
}

impl GnnConfig {
    /// A faster configuration for unit tests.
    pub fn fast_test() -> Self {
        GnnConfig { hidden: 16, epochs: 15, batch_size: 128, ..Default::default() }
    }
}

/// Everything the platform records about one training run (feeds KGMeta).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// The trained method.
    pub method: GmlMethodKind,
    /// Wall-clock training seconds.
    pub train_time_s: f64,
    /// Peak tracked memory during training, bytes.
    pub peak_mem_bytes: usize,
    /// Test metric: accuracy for NC, Hits@10 for LP, in `[0, 1]`.
    pub test_metric: f64,
    /// Validation metric at the end of training.
    pub valid_metric: f64,
    /// Mean reciprocal rank (LP only; 0 for NC).
    pub mrr: f64,
    /// Loss per epoch.
    pub loss_curve: Vec<f32>,
    /// Nodes in the training graph.
    pub n_nodes: usize,
    /// Edges in the training graph.
    pub n_edges: usize,
    /// Measured single-item inference latency, milliseconds.
    pub inference_time_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_paper_figures() {
        assert_eq!(GmlMethodKind::GraphSaint.name(), "G-SAINT");
        assert_eq!(GmlMethodKind::ShadowSaint.name(), "SH-SAINT");
        assert_eq!(GmlMethodKind::Rgcn.to_string(), "RGCN");
    }

    #[test]
    fn sampling_classification() {
        assert!(!GmlMethodKind::Rgcn.is_sampling_based());
        assert!(GmlMethodKind::GraphSaint.is_sampling_based());
        assert!(GmlMethodKind::Morse.is_sampling_based());
    }

    #[test]
    fn default_config_is_reasonable() {
        let c = GnnConfig::default();
        assert!(c.hidden > 0 && c.epochs > 0 && c.lr > 0.0);
        assert!(c.dropout < 1.0);
    }
}
