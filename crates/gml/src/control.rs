//! Cooperative cancellation and epoch observation for training loops.
//!
//! [`TrainControl`] carries an optional cancel flag and an optional
//! [`EpochObserver`] into every trainer's epoch loop. Trainers poll the
//! flag at the top of each epoch and stop early when it is raised, so
//! cancelling a running job costs at most one epoch of latency — not the
//! remainder of the run. A cancelled run returns the partial result built
//! so far (its `loss_curve` records exactly the epochs that completed);
//! deciding whether to keep or discard it is the caller's job (the
//! GML-as-a-service layer discards and reports cancellation).
//!
//! The observer is notified at the bottom of each completed epoch, which
//! is how the serving layer measures per-epoch training time without the
//! trainers depending on any metrics machinery.

use kgnet_sync::atomic::{AtomicBool, Ordering};

/// A per-epoch progress hook. Implementations must be cheap and
/// non-blocking — they run inside the training loop.
pub trait EpochObserver: Sync {
    /// Called once at the end of each completed epoch (0-based).
    fn epoch_completed(&self, epoch: usize);
}

/// Fans one epoch notification out to two observers, letting a caller
/// compose e.g. a latency timer with a resource-usage probe without either
/// knowing about the other ([`TrainControl::with_observer`] takes a single
/// observer).
pub struct PairObserver<'a> {
    first: &'a dyn EpochObserver,
    second: &'a dyn EpochObserver,
}

impl<'a> PairObserver<'a> {
    /// Notify `first`, then `second`, on every completed epoch.
    pub fn new(first: &'a dyn EpochObserver, second: &'a dyn EpochObserver) -> Self {
        PairObserver { first, second }
    }
}

impl EpochObserver for PairObserver<'_> {
    fn epoch_completed(&self, epoch: usize) {
        self.first.epoch_completed(epoch);
        self.second.epoch_completed(epoch);
    }
}

/// A borrowed, copyable handle polled by trainers between epochs.
#[derive(Clone, Copy, Default)]
pub struct TrainControl<'a> {
    cancel: Option<&'a AtomicBool>,
    observer: Option<&'a dyn EpochObserver>,
}

impl<'a> TrainControl<'a> {
    /// No cancellation, no observation: the run always goes to completion.
    pub const NONE: TrainControl<'static> = TrainControl { cancel: None, observer: None };

    /// Observe `flag`: the run stops at the next epoch boundary after the
    /// flag becomes `true`.
    pub fn with_flag(flag: &'a AtomicBool) -> Self {
        TrainControl { cancel: Some(flag), observer: None }
    }

    /// Attach an epoch observer, keeping any cancel flag.
    pub fn with_observer(self, observer: &'a dyn EpochObserver) -> Self {
        TrainControl { observer: Some(observer), ..self }
    }

    /// True once cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Notify the observer (if any) that `epoch` just completed. Trainers
    /// call this at the bottom of every epoch iteration.
    pub fn epoch_completed(&self, epoch: usize) {
        if let Some(obs) = self.observer {
            obs.epoch_completed(epoch);
        }
    }
}

impl std::fmt::Debug for TrainControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainControl")
            .field("cancellable", &self.cancel.is_some())
            .field("cancelled", &self.is_cancelled())
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        assert!(!TrainControl::NONE.is_cancelled());
        // And notifying without an observer is a no-op.
        TrainControl::NONE.epoch_completed(0);
    }

    #[test]
    fn flag_controls_cancellation() {
        let flag = AtomicBool::new(false);
        let ctl = TrainControl::with_flag(&flag);
        assert!(!ctl.is_cancelled());
        flag.store(true, Ordering::SeqCst);
        assert!(ctl.is_cancelled());
        // Copies observe the same flag.
        let copy = ctl;
        assert!(copy.is_cancelled());
    }

    struct Recorder {
        seen: kgnet_sync::Mutex<Vec<usize>>,
    }

    impl EpochObserver for Recorder {
        fn epoch_completed(&self, epoch: usize) {
            self.seen.lock().push(epoch);
        }
    }

    #[test]
    fn observer_sees_each_completed_epoch_and_keeps_the_flag() {
        let flag = AtomicBool::new(false);
        let rec = Recorder { seen: kgnet_sync::Mutex::new(Vec::new()) };
        let ctl = TrainControl::with_flag(&flag).with_observer(&rec);
        for e in 0..3 {
            ctl.epoch_completed(e);
        }
        assert_eq!(*rec.seen.lock(), vec![0, 1, 2]);
        flag.store(true, Ordering::SeqCst);
        assert!(ctl.is_cancelled(), "with_observer must preserve the cancel flag");
    }

    #[test]
    fn pair_observer_notifies_both_in_order() {
        let a = Recorder { seen: kgnet_sync::Mutex::new(Vec::new()) };
        let b = Recorder { seen: kgnet_sync::Mutex::new(Vec::new()) };
        let pair = PairObserver::new(&a, &b);
        let ctl = TrainControl::default().with_observer(&pair);
        ctl.epoch_completed(0);
        ctl.epoch_completed(1);
        assert_eq!(*a.seen.lock(), vec![0, 1]);
        assert_eq!(*b.seen.lock(), vec![0, 1]);
    }

    #[test]
    fn debug_reports_observation() {
        let rec = Recorder { seen: kgnet_sync::Mutex::new(Vec::new()) };
        let dbg = format!("{:?}", TrainControl::default().with_observer(&rec));
        assert!(dbg.contains("observed: true"), "{dbg}");
    }
}
