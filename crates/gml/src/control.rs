//! Cooperative cancellation for training loops.
//!
//! [`TrainControl`] carries an optional cancel flag into every trainer's
//! epoch loop. Trainers poll it at the top of each epoch and stop early
//! when it is raised, so cancelling a running job costs at most one epoch
//! of latency — not the remainder of the run. A cancelled run returns the
//! partial result built so far (its `loss_curve` records exactly the epochs
//! that completed); deciding whether to keep or discard it is the caller's
//! job (the GML-as-a-service layer discards and reports cancellation).

use kgnet_sync::atomic::{AtomicBool, Ordering};

/// A borrowed, copyable handle polled by trainers between epochs.
#[derive(Clone, Copy, Default)]
pub struct TrainControl<'a> {
    cancel: Option<&'a AtomicBool>,
}

impl<'a> TrainControl<'a> {
    /// No cancellation: the run always goes to completion.
    pub const NONE: TrainControl<'static> = TrainControl { cancel: None };

    /// Observe `flag`: the run stops at the next epoch boundary after the
    /// flag becomes `true`.
    pub fn with_flag(flag: &'a AtomicBool) -> Self {
        TrainControl { cancel: Some(flag) }
    }

    /// True once cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(|f| f.load(Ordering::SeqCst))
    }
}

impl std::fmt::Debug for TrainControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainControl")
            .field("cancellable", &self.cancel.is_some())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        assert!(!TrainControl::NONE.is_cancelled());
    }

    #[test]
    fn flag_controls_cancellation() {
        let flag = AtomicBool::new(false);
        let ctl = TrainControl::with_flag(&flag);
        assert!(!ctl.is_cancelled());
        flag.store(true, Ordering::SeqCst);
        assert!(ctl.is_cancelled());
        // Copies observe the same flag.
        let copy = ctl;
        assert!(copy.is_cancelled());
    }
}
