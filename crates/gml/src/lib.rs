//! # kgnet-gml
//!
//! The graph machine-learning methods of the KGNet reproduction, all built
//! on the `kgnet-linalg` autodiff tape:
//!
//! * node classification — GCN, RGCN (full batch), GraphSAINT and
//!   ShadowSAINT (sampling-based), matching the methods of the paper's
//!   Figs. 13/14;
//! * link prediction — MorsE (edge-sampled, entity-agnostic; Fig. 15) and
//!   the KGE family TransE / DistMult / ComplEx / RotatE from the Fig. 5
//!   taxonomy;
//! * dataset builders (the Fig. 6 data-transformer hand-off), evaluation
//!   metrics, and the closed-form resource estimators the method selector
//!   uses to respect time/memory budgets.
//!
//! The sampling-based trainers are data-parallel: per-batch gradient tapes
//! fan out over the vendored `rayon` work-stealing pool in fixed-width
//! waves and reduce deterministically in batch order (see [`par`]), so a
//! fixed seed reproduces identical results on any `RAYON_NUM_THREADS`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod control;
pub mod dataset;
pub mod estimate;
pub mod lp;
pub mod metrics;
pub mod nc;
pub mod par;

pub use config::{GmlMethodKind, GnnConfig, TrainReport};
pub use control::{EpochObserver, PairObserver, TrainControl};
pub use dataset::{build_lp_dataset, build_nc_dataset, LpDataset, NcDataset};
pub use estimate::{estimate, GraphDims, ResourceEstimate};
pub use lp::{train_lp, train_lp_ctl, TrainedLp};
pub use nc::{train_nc, train_nc_ctl, TrainedNc};
