//! Deterministic data-parallel gradient fan-out for the mini-batch trainers.
//!
//! The sampling-based methods (GraphSAINT, ShadowSAINT, the KGE family)
//! train in *waves*: up to [`GRAD_WAVE`] mini-batches are prepared
//! sequentially (so every random draw comes from the trainer's single seeded
//! RNG stream), their gradient tapes are evaluated concurrently on the
//! work-stealing pool, and the resulting gradients are averaged in batch
//! order into one synchronous optimizer step.
//!
//! Determinism contract: nothing here depends on the pool size. The wave
//! width is a constant, the reduction is a left fold over batch index, and
//! per-batch randomness (dropout masks) comes from [`batch_seed`] rather
//! than from whichever worker happens to run the batch. A fixed `GnnConfig`
//! seed therefore reproduces bit-identical training under
//! `RAYON_NUM_THREADS=1`, 4, or any other pool.

use kgnet_linalg::{Matrix, ParamId, ParamStore};
use rayon::prelude::*;

/// Mini-batches per synchronous optimizer step. A constant — never derived
/// from the pool size — so the training trajectory is identical on any
/// thread count; the pool only decides how many of these run concurrently.
pub const GRAD_WAVE: usize = 4;

/// Per-batch training output: the scalar loss and the leaf gradients in the
/// trainer's fixed parameter order (`None` where a leaf received none).
pub type BatchGrads = (f32, Vec<(ParamId, Option<Matrix>)>);

/// An independent, reproducible RNG seed for one mini-batch (dropout masks
/// and any other in-tape randomness), derived only from the configured seed
/// and the batch's logical position — never from the executing worker.
/// SplitMix64 finalisers chained over `(seed, epoch, batch)`.
pub fn batch_seed(seed: u64, epoch: usize, batch: usize) -> u64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    splitmix(splitmix(seed ^ splitmix(epoch as u64)) ^ batch as u64)
}

/// Evaluate `grad_fn` over every prepared batch — concurrently on the
/// current pool — returning the results in batch order. Batches are handed
/// to the closure mutably so it can `std::mem::take` index buffers straight
/// into the tape instead of cloning them.
pub fn parallel_batch_grads<B, F>(batches: &mut [B], grad_fn: F) -> Vec<BatchGrads>
where
    B: Send,
    F: Fn(&mut B) -> BatchGrads + Sync + Send,
{
    batches.par_chunks_mut(1).map(|chunk| grad_fn(&mut chunk[0])).collect()
}

/// Average a wave's gradients in batch order and install them into the
/// store; returns the sum of the batch losses. The fold order is fixed by
/// batch index, so the reduced gradient is bit-identical regardless of
/// which workers computed the parts, or in what order they finished.
pub fn reduce_grads_into(ps: &mut ParamStore, wave: Vec<BatchGrads>) -> f32 {
    let k = wave.len();
    let mut loss_sum = 0.0f32;
    let mut acc: Vec<(ParamId, Option<Matrix>)> = Vec::new();
    for (i, (loss, grads)) in wave.into_iter().enumerate() {
        loss_sum += loss;
        if i == 0 {
            acc = grads;
            continue;
        }
        for ((acc_id, acc_grad), (batch_id, batch_grad)) in acc.iter_mut().zip(grads) {
            debug_assert_eq!(*acc_id, batch_id, "wave batches disagree on parameter order");
            match (acc_grad.as_mut(), batch_grad) {
                (Some(a), Some(b)) => a.add_assign(&b),
                (None, Some(b)) => *acc_grad = Some(b),
                _ => {}
            }
        }
    }
    if k > 1 {
        let inv = 1.0 / k as f32;
        for (_, grad) in &mut acc {
            if let Some(g) = grad {
                g.scale_assign(inv);
            }
        }
    }
    for (pid, grad) in acc {
        if let Some(g) = grad {
            ps.set_grad(pid, g);
        }
    }
    loss_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_seed_is_stable_and_spread() {
        assert_eq!(batch_seed(1, 0, 0), batch_seed(1, 0, 0));
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..20 {
            for batch in 0..20 {
                seen.insert(batch_seed(7, epoch, batch));
            }
        }
        assert_eq!(seen.len(), 400, "derived seeds collide");
    }

    #[test]
    fn reduce_averages_in_batch_order() {
        let mut ps = ParamStore::new();
        let w = ps.add(Matrix::zeros(1, 2));
        let wave: Vec<BatchGrads> = vec![
            (1.0, vec![(w, Some(Matrix::from_vec(1, 2, vec![2.0, 4.0])))]),
            (3.0, vec![(w, Some(Matrix::from_vec(1, 2, vec![4.0, 0.0])))]),
        ];
        let loss = reduce_grads_into(&mut ps, wave);
        assert_eq!(loss, 4.0);
        // The averaged gradient (3.0, 2.0) lands via one SGD step.
        let mut opt = kgnet_linalg::Sgd::new(1.0);
        kgnet_linalg::Optimizer::step(&mut opt, &mut ps);
        assert_eq!(ps.get(w).as_slice(), &[-3.0, -2.0]);
    }

    #[test]
    fn parallel_grads_preserve_batch_order() {
        let mut ps = ParamStore::new();
        let w = ps.add(Matrix::zeros(1, 1));
        let mut batches: Vec<f32> = (0..13).map(|i| i as f32).collect();
        let out = parallel_batch_grads(&mut batches, |&mut b| {
            (b, vec![(w, Some(Matrix::from_vec(1, 1, vec![b])))])
        });
        let losses: Vec<f32> = out.iter().map(|(l, _)| *l).collect();
        assert_eq!(losses, batches);
    }
}
