//! Determinism of data-parallel training: a fixed seed must produce the
//! same model on a one-thread pool as on a multi-thread pool.
//!
//! The trainers' wave width and reduction order are independent of the pool
//! size and per-batch dropout streams are derived from the logical batch
//! position, so the trajectories should in fact agree bit-for-bit; the
//! assertions allow 1e-5 to keep the contract (the documented guarantee)
//! rather than the implementation detail as the bar.

use kgnet_datagen::vocab::dblp as v;
use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gml::config::{GmlMethodKind, GnnConfig};
use kgnet_gml::dataset::{build_lp_dataset, build_nc_dataset, LpDataset, NcDataset};
use kgnet_gml::{train_lp, train_nc};
use kgnet_graph::{LpTask, NcTask, SplitRatios, SplitStrategy};

fn tiny_nc() -> NcDataset {
    let (st, _) = generate_dblp(&DblpConfig::tiny(23));
    build_nc_dataset(
        &st,
        &NcTask { target_type: v::PUBLICATION.into(), label_predicate: v::PUBLISHED_IN.into() },
        SplitStrategy::Random,
        SplitRatios::default(),
        5,
    )
}

fn tiny_lp() -> LpDataset {
    let cfg =
        DblpConfig { n_affiliations: 40, n_authors: 120, n_papers: 150, ..DblpConfig::tiny(29) };
    let (st, _) = generate_dblp(&cfg);
    build_lp_dataset(
        &st,
        &LpTask {
            source_type: v::PERSON.into(),
            edge_predicate: v::AFFILIATED_WITH.into(),
            dest_type: v::AFFILIATION.into(),
        },
        SplitRatios::default(),
        7,
    )
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "output shapes differ between pools");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Run `train` once on a 1-thread pool and once on a 4-thread pool, and
/// bound the divergence of the returned buffer.
fn assert_pools_agree<T: Send>(
    train: impl Fn() -> T + Sync + Send,
    logits: impl Fn(&T) -> &[f32],
    what: &str,
) {
    let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let multi = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let a = single.install(&train);
    let b = multi.install(&train);
    let diff = max_abs_diff(logits(&a), logits(&b));
    assert!(diff <= 1e-5, "{what}: 1-thread vs 4-thread outputs diverged by {diff}");
}

#[test]
fn shadow_saint_training_is_pool_size_invariant() {
    let data = tiny_nc();
    let cfg = GnnConfig { epochs: 8, batch_size: 32, ..GnnConfig::fast_test() };
    assert_pools_agree(
        || train_nc(GmlMethodKind::ShadowSaint, &data, &cfg),
        |t| t.target_logits.as_slice(),
        "ShadowSAINT",
    );
}

#[test]
fn graph_saint_training_is_pool_size_invariant() {
    let data = tiny_nc();
    let cfg =
        GnnConfig { epochs: 8, saint_roots: 24, saint_walk_length: 2, ..GnnConfig::fast_test() };
    assert_pools_agree(
        || train_nc(GmlMethodKind::GraphSaint, &data, &cfg),
        |t| t.target_logits.as_slice(),
        "GraphSAINT",
    );
}

#[test]
fn transe_training_is_pool_size_invariant() {
    let data = tiny_lp();
    let cfg = GnnConfig { epochs: 10, batch_size: 64, ..GnnConfig::fast_test() };
    assert_pools_agree(
        || train_lp(GmlMethodKind::TransE, &data, &cfg),
        |t| t.scores.as_slice(),
        "TransE",
    );
}

#[test]
fn distmult_training_is_pool_size_invariant() {
    let data = tiny_lp();
    let cfg = GnnConfig { epochs: 10, batch_size: 64, ..GnnConfig::fast_test() };
    assert_pools_agree(
        || train_lp(GmlMethodKind::DistMult, &data, &cfg),
        |t| t.scores.as_slice(),
        "DistMult",
    );
}

#[test]
fn repeated_runs_on_same_pool_are_bit_identical() {
    let data = tiny_nc();
    let cfg = GnnConfig { epochs: 5, batch_size: 32, ..GnnConfig::fast_test() };
    let a = train_nc(GmlMethodKind::ShadowSaint, &data, &cfg);
    let b = train_nc(GmlMethodKind::ShadowSaint, &data, &cfg);
    let bits_equal = a
        .target_logits
        .as_slice()
        .iter()
        .zip(b.target_logits.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(bits_equal, "same pool, same seed must be bit-identical");
}
