//! Search-cost accounting must be exact and pool-size independent: the
//! counters behind [`SearchStats`] are relaxed atomic adds over
//! deterministic candidate sets, so CI runs this suite under
//! `RAYON_NUM_THREADS=1` and `=4` and the numbers must not move.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kgnet_ann::{
    search_exact, search_exact_with_stats, AnnIndex, AnyIndex, HnswConfig, HnswIndex, IvfIndex,
    Metric, PqConfig, PqIndex, SearchParams, SearchStats, VectorTable,
};

/// Big enough to push the exact/PQ scoring loops onto the parallel path
/// (PAR_MIN_CANDIDATES = 2048), so the atomic counting is exercised under
/// real fork/join scheduling.
const N: usize = 2_500;
const DIM: usize = 16;

fn table(seed: u64) -> VectorTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = VectorTable::new(DIM);
    for _ in 0..N {
        let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
        t.push(&v).unwrap();
    }
    t
}

fn query(seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

#[test]
fn exact_scan_costs_one_distance_per_vector() {
    let t = table(7);
    let q = query(8);
    let (hits, stats) = search_exact_with_stats(&t, Metric::L2, &q, 10);
    assert_eq!(hits, search_exact(&t, Metric::L2, &q, 10));
    assert_eq!(stats, SearchStats { candidates: N as u64, distance_computations: N as u64 });
}

#[test]
fn ivf_stats_separate_coarse_scan_from_candidates() {
    let t = table(11);
    let q = query(12);
    let index = IvfIndex::build(&t, 25, 5, 3);
    let params = SearchParams::with_nprobe(4);
    let (hits, stats) = index.search_with_stats(&t, Metric::L2, &q, 10, &params);
    assert_eq!(hits, index.search(&t, Metric::L2, &q, 10, &params));
    // Every candidate came from a probed posting list; the coarse scan adds
    // one l2 evaluation per centroid on top.
    assert!(stats.candidates > 0 && stats.candidates < N as u64);
    assert_eq!(stats.distance_computations, stats.candidates + 25);
    // Deterministic probe order ⇒ identical tallies on any pool size.
    let (_, again) = index.search_with_stats(&t, Metric::L2, &q, 10, &params);
    assert_eq!(again, stats);
}

#[test]
fn pq_stats_count_table_build_codes_and_refine() {
    let t = table(21);
    let q = query(22);
    let index = PqIndex::build(&t, &PqConfig { ks: 32, ..Default::default() });
    // refine = 1 disables the raw-vector rescore: the only distance work is
    // the m·ks table build plus one ADC sum per stored code.
    let no_refine = SearchParams { refine: 1, ..Default::default() };
    let (_, adc_only) = index.search_with_stats(&t, Metric::L2, &q, 10, &no_refine);
    assert_eq!(adc_only.candidates, N as u64);
    let table_cost = adc_only.distance_computations - N as u64;
    assert!(table_cost > 0, "query-to-centroid table build must be counted");
    // refine = 3 rescans the top 3·k candidates against raw vectors.
    let refine = SearchParams { refine: 3, ..Default::default() };
    let (hits, refined) = index.search_with_stats(&t, Metric::L2, &q, 10, &refine);
    assert_eq!(hits, index.search(&t, Metric::L2, &q, 10, &refine));
    assert_eq!(refined.candidates, N as u64);
    assert_eq!(refined.distance_computations, adc_only.distance_computations + 30);
}

#[test]
fn hnsw_default_stats_count_every_raw_distance() {
    let t = table(31);
    let q = query(32);
    let index = HnswIndex::build(&t, Metric::L2, &HnswConfig::default());
    let params = SearchParams::default();
    let (hits, stats) = index.search_with_stats(&t, Metric::L2, &q, 10, &params);
    assert_eq!(hits, index.search(&t, Metric::L2, &q, 10, &params));
    // A graph walk touches well under the full table but at least the beam.
    assert!(stats.candidates >= hits.len() as u64);
    assert!(stats.candidates < N as u64);
    assert_eq!(stats.distance_computations, stats.candidates);
    // The walk is deterministic, so so are the tallies.
    let (_, again) = index.search_with_stats(&t, Metric::L2, &q, 10, &params);
    assert_eq!(again, stats);
}

#[test]
fn any_index_delegates_stats_to_the_family_override() {
    let t = table(41);
    let q = query(42);
    let any = AnyIndex::Ivf(IvfIndex::build(&t, 10, 4, 5));
    let params = SearchParams::with_nprobe(2);
    let (_, via_any) = any.search_with_stats(&t, Metric::L2, &q, 5, &params);
    assert_eq!(via_any.distance_computations, via_any.candidates + 10);
}
