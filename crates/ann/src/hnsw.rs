//! HNSW: a hierarchical navigable-small-world graph index (Malkov &
//! Yashunin, 2016) — layered skip-list-style construction with
//! `ef_construction` / `ef_search` beam tunables.
//!
//! Two properties matter here beyond the textbook algorithm:
//!
//! - **Deterministic levels.** Each node's top layer is drawn from the
//!   usual geometric distribution, but through a SplitMix64 stream keyed
//!   by `(seed, node id)` — never from shared RNG state — so the layer
//!   structure of a build is a pure function of the inputs.
//! - **Deterministic parallel construction.** Nodes are inserted in fixed
//!   id order; after a sequential seed phase, construction proceeds in
//!   *waves*: the expensive part of each insertion (finding its
//!   `ef_construction` nearest candidates per layer) runs as a pure
//!   parallel map against the graph frozen at the wave boundary, then the
//!   cheap link/prune mutations are applied sequentially in id order.
//!   Every parallel phase is an order-preserving map over immutable state,
//!   so the built graph is bit-identical on any `RAYON_NUM_THREADS` — the
//!   same discipline as `IvfIndex::build` and the linalg kernels.
//!
//! All traversal ordering uses `f32::total_cmp` with node-id tie-breaks,
//! so ties never introduce run-to-run nondeterminism.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rayon::prelude::*;
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};

use crate::format::{AnnFile, AnnFileWriter, FormatError};
use crate::index::{AnnIndex, SearchParams};
use crate::metric::Metric;
use crate::splitmix64;
use crate::vectors::Vectors;

/// Hard cap on a node's level (the geometric tail beyond this is
/// astronomically unlikely and would only waste layer bookkeeping).
const MAX_LEVEL: usize = 15;

/// Nodes inserted strictly one-by-one before wave-parallel construction
/// starts, so early waves always search a well-connected graph.
const SEQ_PHASE: usize = 1024;

/// Insertions per parallel construction wave.
const WAVE: usize = 256;

/// HNSW build-time tunables.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Maximum links per node on layers above 0 (layer 0 keeps `2m`).
    pub m: usize,
    /// Candidate beam width during construction.
    pub ef_construction: usize,
    /// Default query beam width (overridable per query via
    /// [`SearchParams::ef_search`]).
    pub ef_search: usize,
    /// Seed of the deterministic level-assignment stream.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 16, ef_construction: 160, ef_search: 128, seed: 0x5EED }
    }
}

/// One layer's adjacency in CSR form: node `i`'s links are
/// `links[offsets[i]..offsets[i+1]]` (empty for nodes below this layer).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    offsets: Vec<u32>,
    links: Vec<u32>,
}

/// A built HNSW graph index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswIndex {
    m: usize,
    ef_search: usize,
    entry: u32,
    levels: Vec<u8>,
    layers: Vec<Layer>,
}

/// Read access to a (possibly still under construction) layered graph.
trait Graph {
    fn neighbors(&self, node: u32, layer: usize) -> &[u32];
}

impl Graph for HnswIndex {
    fn neighbors(&self, node: u32, layer: usize) -> &[u32] {
        let Some(l) = self.layers.get(layer) else { return &[] };
        let a = l.offsets[node as usize] as usize;
        let b = l.offsets[node as usize + 1] as usize;
        &l.links[a..b]
    }
}

/// `(distance, id)` with a total, deterministic order.
#[derive(Clone, Copy, PartialEq)]
struct DistId(f32, u32);

impl Eq for DistId {}

impl Ord for DistId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then_with(|| self.1.cmp(&other.1))
    }
}

impl PartialOrd for DistId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Best-first beam search inside one layer: returns up to `ef` nearest
/// `(distance, id)` pairs, sorted ascending by `(distance, id)`.
fn search_layer(
    g: &impl Graph,
    vectors: &dyn Vectors,
    metric: Metric,
    q: &[f32],
    entry_points: &[(f32, u32)],
    ef: usize,
    layer: usize,
) -> Vec<(f32, u32)> {
    let ef = ef.max(1);
    let mut visited: FxHashSet<u32> = FxHashSet::default();
    let mut candidates: BinaryHeap<Reverse<DistId>> = BinaryHeap::new();
    let mut result: BinaryHeap<DistId> = BinaryHeap::new();
    for &(d, e) in entry_points {
        if visited.insert(e) {
            candidates.push(Reverse(DistId(d, e)));
            result.push(DistId(d, e));
            if result.len() > ef {
                result.pop();
            }
        }
    }
    while let Some(Reverse(DistId(d, c))) = candidates.pop() {
        let worst = result.peek().expect("result tracks candidates").0;
        if d > worst && result.len() >= ef {
            break;
        }
        for &nb in g.neighbors(c, layer) {
            if visited.insert(nb) {
                let dn = metric.distance(q, vectors.vector(nb));
                if result.len() < ef || dn < result.peek().expect("non-empty").0 {
                    candidates.push(Reverse(DistId(dn, nb)));
                    result.push(DistId(dn, nb));
                    if result.len() > ef {
                        result.pop();
                    }
                }
            }
        }
    }
    let mut out: Vec<(f32, u32)> = result.into_iter().map(|DistId(d, i)| (d, i)).collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out
}

/// Greedy hill-climb from `best` through layers `from..=down_to`
/// (descending): at each layer, repeatedly move to the strictly closest
/// neighbor. Ties never move, so the walk is deterministic.
fn greedy_descend(
    g: &impl Graph,
    vectors: &dyn Vectors,
    metric: Metric,
    q: &[f32],
    mut best: (f32, u32),
    from: usize,
    down_to: usize,
) -> (f32, u32) {
    for layer in (down_to..=from).rev() {
        loop {
            let mut improved = false;
            for &nb in g.neighbors(best.1, layer) {
                let d = metric.distance(q, vectors.vector(nb));
                if d < best.0 {
                    best = (d, nb);
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }
    best
}

/// The neighbor-selection heuristic of the HNSW paper (algorithm 4):
/// scan candidates nearest-first, keep one when it is closer to the query
/// than to every already-kept neighbor (spreading links across directions),
/// then fill any remaining slots with the nearest skipped candidates.
fn select_neighbors(
    vectors: &dyn Vectors,
    metric: Metric,
    candidates: &[(f32, u32)],
    m: usize,
) -> Vec<u32> {
    let mut selected: Vec<(f32, u32)> = Vec::with_capacity(m);
    let mut skipped: Vec<(f32, u32)> = Vec::new();
    for &(d, c) in candidates {
        if selected.len() >= m {
            break;
        }
        let vc = vectors.vector(c);
        let diverse = selected.iter().all(|&(_, s)| metric.distance(vc, vectors.vector(s)) > d);
        if diverse {
            selected.push((d, c));
        } else {
            skipped.push((d, c));
        }
    }
    for &(d, c) in &skipped {
        if selected.len() >= m {
            break;
        }
        selected.push((d, c));
    }
    selected.into_iter().map(|(_, c)| c).collect()
}

/// Construction state: mutable adjacency plus the frozen-snapshot search
/// used by both the sequential and the wave-parallel phases.
struct Builder<'a> {
    vectors: &'a dyn Vectors,
    metric: Metric,
    m: usize,
    efc: usize,
    levels: Vec<u8>,
    /// `adj[node][layer]` — present for layers `0..=levels[node]`.
    adj: Vec<Vec<Vec<u32>>>,
    entry: u32,
    top: usize,
}

impl Graph for Builder<'_> {
    fn neighbors(&self, node: u32, layer: usize) -> &[u32] {
        self.adj[node as usize].get(layer).map_or(&[], Vec::as_slice)
    }
}

impl Builder<'_> {
    fn m_max(&self, layer: usize) -> usize {
        if layer == 0 {
            self.m * 2
        } else {
            self.m
        }
    }

    /// Pure candidate discovery for inserting `id` against the current
    /// (frozen) graph: per-layer `ef_construction` beams for layers
    /// `0..=min(level(id), top)`.
    fn find_candidates(&self, id: u32) -> Vec<Vec<(f32, u32)>> {
        let q = self.vectors.vector(id);
        let node_level = self.levels[id as usize] as usize;
        let mut best = (self.metric.distance(q, self.vectors.vector(self.entry)), self.entry);
        if self.top > node_level {
            best =
                greedy_descend(self, self.vectors, self.metric, q, best, self.top, node_level + 1);
        }
        let cap = node_level.min(self.top);
        let mut per_layer = vec![Vec::new(); cap + 1];
        let mut eps = vec![best];
        for layer in (0..=cap).rev() {
            let beam = search_layer(self, self.vectors, self.metric, q, &eps, self.efc, layer);
            eps.clone_from(&beam);
            per_layer[layer] = beam;
        }
        per_layer
    }

    /// Apply one insertion: select links from the discovered candidates,
    /// wire them bidirectionally, prune overflowing neighbor lists, and
    /// promote the node to graph entry when it tops the hierarchy.
    fn insert(&mut self, id: u32, per_layer: Vec<Vec<(f32, u32)>>) {
        for (layer, cands) in per_layer.into_iter().enumerate() {
            if cands.is_empty() {
                continue;
            }
            let selected = select_neighbors(self.vectors, self.metric, &cands, self.m);
            for &s in &selected {
                self.adj[s as usize][layer].push(id);
                if self.adj[s as usize][layer].len() > self.m_max(layer) {
                    self.prune(s, layer);
                }
            }
            self.adj[id as usize][layer] = selected;
        }
        let node_level = self.levels[id as usize] as usize;
        if node_level > self.top {
            self.top = node_level;
            self.entry = id;
        }
    }

    /// Re-select an overflowing neighbor list down to `m_max` with the
    /// same diversity heuristic used at insertion.
    fn prune(&mut self, node: u32, layer: usize) {
        let v = self.vectors.vector(node);
        let mut scored: Vec<(f32, u32)> = self.adj[node as usize][layer]
            .iter()
            .map(|&nb| (self.metric.distance(v, self.vectors.vector(nb)), nb))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.adj[node as usize][layer] =
            select_neighbors(self.vectors, self.metric, &scored, self.m_max(layer));
    }
}

/// Deterministic level draw for node `i`: a geometric level from the
/// SplitMix64 stream keyed by `(seed, i)`.
fn level_of(seed: u64, i: usize, ml: f64) -> u8 {
    let z = splitmix64(splitmix64(seed) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let u = ((z >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    ((-u.ln() * ml).floor() as usize).min(MAX_LEVEL) as u8
}

impl HnswIndex {
    /// Build an HNSW graph over `vectors` under `metric`.
    ///
    /// Nodes are inserted in id order: the first [`SEQ_PHASE`] strictly
    /// sequentially, the rest in waves of [`WAVE`] whose candidate
    /// discovery runs as a pure parallel map against the wave-frozen
    /// graph. Bit-identical on any pool size.
    pub fn build(vectors: &dyn Vectors, metric: Metric, cfg: &HnswConfig) -> HnswIndex {
        let n = vectors.len();
        let m = cfg.m.clamp(2, 64);
        let efc = cfg.ef_construction.max(m);
        let ml = 1.0 / (m as f64).ln();
        let levels: Vec<u8> = (0..n).map(|i| level_of(cfg.seed, i, ml)).collect();
        if n == 0 {
            return HnswIndex {
                m,
                ef_search: cfg.ef_search.max(1),
                entry: 0,
                levels,
                layers: Vec::new(),
            };
        }
        let adj: Vec<Vec<Vec<u32>>> =
            (0..n).map(|i| vec![Vec::new(); levels[i] as usize + 1]).collect();
        let top = levels[0] as usize;
        let mut b = Builder { vectors, metric, m, efc, levels, adj, entry: 0, top };

        let seq_end = n.min(SEQ_PHASE);
        for i in 1..seq_end {
            let cands = b.find_candidates(i as u32);
            b.insert(i as u32, cands);
        }
        let mut next = seq_end;
        while next < n {
            let end = (next + WAVE).min(n);
            let ids: Vec<u32> = (next..end).map(|i| i as u32).collect();
            let waves: Vec<Vec<Vec<(f32, u32)>>> =
                ids.par_iter().map(|&id| b.find_candidates(id)).collect();
            for (id, cands) in ids.into_iter().zip(waves) {
                b.insert(id, cands);
            }
            next = end;
        }

        // Freeze the ragged adjacency into per-layer CSR.
        let layers = (0..=b.top)
            .map(|l| {
                let mut offsets = Vec::with_capacity(n + 1);
                let mut links = Vec::new();
                offsets.push(0u32);
                for node in 0..n {
                    if let Some(nbs) = b.adj[node].get(l) {
                        links.extend_from_slice(nbs);
                    }
                    offsets.push(links.len() as u32);
                }
                Layer { offsets, links }
            })
            .collect();
        HnswIndex { m, ef_search: cfg.ef_search.max(1), entry: b.entry, levels: b.levels, layers }
    }

    /// The graph's entry node (top of the hierarchy).
    pub fn entry_point(&self) -> u32 {
        self.entry
    }

    /// Number of layers in the hierarchy.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Persist into `w` under the `index.` section prefix.
    pub(crate) fn put_sections(&self, w: &mut AnnFileWriter) {
        w.put_u32s(
            "index.params",
            &[self.m as u32, self.ef_search as u32, self.entry, self.layers.len() as u32],
        );
        w.put_u8s("index.levels", &self.levels);
        for (l, layer) in self.layers.iter().enumerate() {
            w.put_u32s(&format!("index.layer{l}.offsets"), &layer.offsets);
            w.put_u32s(&format!("index.layer{l}.links"), &layer.links);
        }
    }

    /// Load from the `index.` sections of a persisted file.
    pub(crate) fn from_file(f: &AnnFile) -> Result<HnswIndex, FormatError> {
        let params = f.u32s("index.params")?;
        if params.len() != 4 {
            return Err(FormatError::Malformed("hnsw params section has wrong arity".into()));
        }
        let (m, ef_search, entry, n_layers) =
            (params[0] as usize, params[1] as usize, params[2], params[3] as usize);
        let levels = f.u8s("index.levels")?.to_vec();
        let n = levels.len();
        let mut layers = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            let offsets = f.u32s(&format!("index.layer{l}.offsets"))?;
            let links = f.u32s(&format!("index.layer{l}.links"))?;
            if offsets.len() != n + 1
                || offsets.last().copied().unwrap_or(0) as usize != links.len()
                || offsets.windows(2).any(|w| w[0] > w[1])
                || links.iter().any(|&t| t as usize >= n)
            {
                return Err(FormatError::Malformed(format!("hnsw layer {l} CSR is inconsistent")));
            }
            layers.push(Layer { offsets, links });
        }
        if n > 0 && entry as usize >= n {
            return Err(FormatError::Malformed("hnsw entry point out of range".into()));
        }
        Ok(HnswIndex { m, ef_search: ef_search.max(1), entry, levels, layers })
    }
}

impl AnnIndex for HnswIndex {
    fn kind(&self) -> &'static str {
        "hnsw"
    }

    fn len(&self) -> usize {
        self.levels.len()
    }

    fn search(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Vec<(u32, f32)> {
        if self.levels.is_empty() || k == 0 {
            return Vec::new();
        }
        let ef = if params.ef_search > 0 { params.ef_search } else { self.ef_search }.max(k);
        let mut best = (metric.distance(query, vectors.vector(self.entry)), self.entry);
        if self.layers.len() > 1 {
            best = greedy_descend(self, vectors, metric, query, best, self.layers.len() - 1, 1);
        }
        let beam = search_layer(self, vectors, metric, query, &[best], ef, 0);
        beam.into_iter().take(k).map(|(d, i)| (i, -d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::search_exact;
    use crate::vectors::VectorTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_table(n: usize, dim: usize, seed: u64) -> VectorTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = VectorTable::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            t.push(&v).unwrap();
        }
        t
    }

    fn recall_at(
        t: &VectorTable,
        index: &HnswIndex,
        metric: Metric,
        k: usize,
        queries: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(queries);
        let (mut hit, mut total) = (0usize, 0usize);
        for _ in 0..20 {
            let q: Vec<f32> = (0..t.dim()).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let exact: Vec<u32> =
                search_exact(t, metric, &q, k).into_iter().map(|(i, _)| i).collect();
            let approx: Vec<u32> = index
                .search(t, metric, &q, k, &SearchParams::default())
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            total += exact.len();
            hit += exact.iter().filter(|i| approx.contains(i)).count();
        }
        hit as f64 / total as f64
    }

    #[test]
    fn recall_at_10_beats_point_nine() {
        let t = random_table(2000, 16, 7);
        let index = HnswIndex::build(&t, Metric::L2, &HnswConfig::default());
        let recall = recall_at(&t, &index, Metric::L2, 10, 11);
        assert!(recall >= 0.9, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn self_query_returns_self_first() {
        let t = random_table(500, 8, 3);
        let index = HnswIndex::build(&t, Metric::Cosine, &HnswConfig::default());
        let q = t.vector(123).to_vec();
        let hits = index.search(&t, Metric::Cosine, &q, 3, &SearchParams::default());
        assert_eq!(hits[0].0, 123);
    }

    #[test]
    fn wave_parallel_build_is_identical_across_pool_sizes() {
        // 3000 nodes goes well past the sequential seed phase, so the
        // wave-parallel path runs; the frozen CSR must match bit-for-bit.
        let t = random_table(3000, 8, 9);
        let cfg = HnswConfig { ef_construction: 48, ..Default::default() };
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let multi = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a = single.install(|| HnswIndex::build(&t, Metric::L2, &cfg));
        let b = multi.install(|| HnswIndex::build(&t, Metric::L2, &cfg));
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn tiny_and_empty_graphs_work() {
        let empty = VectorTable::new(4);
        let index = HnswIndex::build(&empty, Metric::L2, &HnswConfig::default());
        assert!(index
            .search(&empty, Metric::L2, &[0.0; 4], 5, &SearchParams::default())
            .is_empty());

        let one = VectorTable::from_rows(2, &[vec![1.0, 2.0]]).unwrap();
        let index = HnswIndex::build(&one, Metric::L2, &HnswConfig::default());
        let hits = index.search(&one, Metric::L2, &[1.0, 2.0], 3, &SearchParams::default());
        assert_eq!(hits, vec![(0, 0.0)]);
    }

    #[test]
    fn levels_follow_seed_not_call_order() {
        let cfg = HnswConfig::default();
        let a = level_of(cfg.seed, 42, 1.0 / 16f64.ln());
        let b = level_of(cfg.seed, 42, 1.0 / 16f64.ln());
        assert_eq!(a, b);
        // Level histogram sanity: most nodes stay on layer 0.
        let levels: Vec<u8> = (0..10_000).map(|i| level_of(1, i, 1.0 / 16f64.ln())).collect();
        let ground = levels.iter().filter(|&&l| l == 0).count();
        assert!(ground > 8_000, "geometric level distribution looks wrong: {ground}");
    }
}
