//! Similarity metrics shared by every index and the embedding store.

use kgnet_linalg::kernels;
use serde::{Deserialize, Serialize};

/// Similarity metric. Scores are "larger = closer" for every variant;
/// [`Metric::distance`] gives the negated, "smaller = closer" view the
/// graph traversals use. The two are exact negations of each other, so an
/// index that ranks by distance and an exact scan that ranks by score can
/// never disagree on ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Negative Euclidean distance (larger = closer).
    L2,
    /// Cosine similarity.
    Cosine,
    /// Inner product.
    Dot,
}

impl Metric {
    /// Similarity score between two vectors (larger = closer).
    pub fn score(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => -kernels::l2_sq(a, b).max(0.0).sqrt(),
            Metric::Dot => kernels::dot(a, b),
            Metric::Cosine => {
                let dot = kernels::dot(a, b);
                let na = kernels::norm(a);
                let nb = kernels::norm(b);
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na * nb)
                }
            }
        }
    }

    /// Distance between two vectors (smaller = closer): the exact negation
    /// of [`Metric::score`].
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        -self.score(a, b)
    }

    /// Stable on-disk code of this metric.
    pub fn code(&self) -> u32 {
        match self {
            Metric::L2 => 0,
            Metric::Cosine => 1,
            Metric::Dot => 2,
        }
    }

    /// Decode an on-disk metric code.
    pub fn from_code(code: u32) -> Option<Metric> {
        match code {
            0 => Some(Metric::L2),
            1 => Some(Metric::Cosine),
            2 => Some(Metric::Dot),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_score_is_negative_distance() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert!((Metric::L2.score(&a, &b) + 5.0).abs() < 1e-6);
        assert_eq!(Metric::L2.distance(&a, &b), -Metric::L2.score(&a, &b));
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(Metric::Cosine.score(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert!((Metric::Cosine.score(&[2.0, 0.0], &[5.0, 0.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn codes_roundtrip() {
        for m in [Metric::L2, Metric::Cosine, Metric::Dot] {
            assert_eq!(Metric::from_code(m.code()), Some(m));
        }
        assert_eq!(Metric::from_code(9), None);
    }
}
