//! Product quantization (Jégou et al., 2011): split each vector into `m`
//! sub-vectors, k-means a small codebook per sub-space, and store every
//! vector as `m` one-byte codes. Queries score candidates with asymmetric
//! distance computation (ADC): one `m × ks` table of query-to-centroid
//! sub-distances is precomputed per query, after which scoring a candidate
//! is `m` table lookups — no vector data touched. An optional refine pass
//! rescores the top `refine·k` ADC candidates against the raw vectors, so
//! returned scores are exact [`Metric::score`] values and recall@k
//! approaches the exact scan's.
//!
//! Training and encoding are deterministic-parallel in the same style as
//! the other indexes: every pool-parallel phase is a pure order-preserving
//! map (centroid assignment, vector encoding, ADC scans); accumulations
//! stay sequential in id order.

use kgnet_linalg::kernels;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::format::{AnnFile, AnnFileWriter, FormatError};
use crate::index::{sort_hits, AnnIndex, SearchParams};
use crate::metric::Metric;
use crate::splitmix64;
use crate::stats::{CountingVectors, SearchStats};
use crate::vectors::Vectors;
use crate::PAR_MIN_CANDIDATES;

/// PQ build-time tunables.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PqConfig {
    /// Requested number of sub-quantizers. The build uses the largest
    /// divisor of the vector width that does not exceed this, so every
    /// sub-space has equal width.
    pub m: usize,
    /// Centroids per sub-codebook (capped at 256 so codes fit one byte,
    /// and at the number of training vectors).
    pub ks: usize,
    /// Lloyd iterations per sub-codebook.
    pub iterations: usize,
    /// Training sample cap: at most this many vectors (chosen by a seeded
    /// shuffle) train the codebooks.
    pub sample: usize,
    /// Default refine factor: rescore the top `refine·k` ADC candidates
    /// against raw vectors (`1` disables refinement).
    pub refine: usize,
    /// Seed of the deterministic training streams.
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        PqConfig { m: 8, ks: 256, iterations: 6, sample: 65_536, refine: 8, seed: 0x9C0DE }
    }
}

/// A trained product-quantization index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PqIndex {
    dim: usize,
    m: usize,
    sub: usize,
    ks: usize,
    /// `m · ks · sub` flat sub-centroids: codebook `s` centroid `c` is
    /// `codebooks[(s·ks + c)·sub ..][..sub]`.
    codebooks: Vec<f32>,
    /// `n · m` one-byte codes.
    codes: Vec<u8>,
    /// Per-vector reconstructed norms (cosine scoring).
    norms: Vec<f32>,
    refine: usize,
}

/// Largest divisor of `dim` that is `<= want` (and `>= 1`).
fn effective_m(dim: usize, want: usize) -> usize {
    let want = want.clamp(1, dim.max(1));
    (1..=want).rev().find(|m| dim.is_multiple_of(*m)).unwrap_or(1)
}

impl PqIndex {
    /// Train sub-codebooks over `vectors` and encode every vector.
    pub fn build(vectors: &dyn Vectors, cfg: &PqConfig) -> PqIndex {
        let n = vectors.len();
        let dim = vectors.dim();
        let m = effective_m(dim, cfg.m);
        let sub = dim.checked_div(m).unwrap_or(0);
        if n == 0 || dim == 0 {
            return PqIndex {
                dim,
                m,
                sub,
                ks: 0,
                codebooks: Vec::new(),
                codes: Vec::new(),
                norms: Vec::new(),
                refine: cfg.refine.max(1),
            };
        }
        // Deterministic training sample: a seeded shuffle of all ids.
        let train_ids: Vec<u32> = if n > cfg.sample.max(1) {
            let mut ids: Vec<u32> = (0..n as u32).collect();
            ids.shuffle(&mut StdRng::seed_from_u64(cfg.seed));
            ids.truncate(cfg.sample.max(1));
            ids
        } else {
            (0..n as u32).collect()
        };
        let ks = cfg.ks.clamp(1, 256).min(train_ids.len());

        let mut codebooks = Vec::with_capacity(m * ks * sub);
        for s in 0..m {
            let start = s * sub;
            // Gather this sub-space's training matrix once (flat, t × sub).
            let train: Vec<f32> = train_ids
                .iter()
                .flat_map(|&i| vectors.vector(i)[start..start + sub].iter().copied())
                .collect();
            let centroids = kmeans_subspace(
                &train,
                sub,
                ks,
                cfg.iterations.max(1),
                splitmix64(cfg.seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            codebooks.extend_from_slice(&centroids);
        }

        // Encode every vector: a pure per-vector map (order-preserving
        // above the parallel cutoff), then one sequential flatten.
        let encode_one = |i: usize| -> (Vec<u8>, f32) {
            let v = vectors.vector(i as u32);
            let mut code = Vec::with_capacity(m);
            let mut norm_sq = 0.0f32;
            for s in 0..m {
                let qsub = &v[s * sub..(s + 1) * sub];
                let (c, _) = nearest_sub_centroid(&codebooks, s, ks, sub, qsub);
                code.push(c as u8);
                let cent = centroid(&codebooks, s, ks, sub, c);
                norm_sq += kernels::dot(cent, cent);
            }
            (code, norm_sq.max(0.0).sqrt())
        };
        let encoded: Vec<(Vec<u8>, f32)> = if n >= PAR_MIN_CANDIDATES {
            (0..n).into_par_iter().map(encode_one).collect()
        } else {
            (0..n).map(encode_one).collect()
        };
        let mut codes = Vec::with_capacity(n * m);
        let mut norms = Vec::with_capacity(n);
        for (code, norm) in encoded {
            codes.extend_from_slice(&code);
            norms.push(norm);
        }
        PqIndex { dim, m, sub, ks, codebooks, codes, norms, refine: cfg.refine.max(1) }
    }

    /// Number of sub-quantizers actually used.
    pub fn n_subquantizers(&self) -> usize {
        self.m
    }

    /// Centroids per sub-codebook.
    pub fn n_centroids(&self) -> usize {
        self.ks
    }

    /// Persist into `w` under the `index.` section prefix.
    pub(crate) fn put_sections(&self, w: &mut AnnFileWriter) {
        w.put_u32s(
            "index.params",
            &[self.dim as u32, self.m as u32, self.sub as u32, self.ks as u32, self.refine as u32],
        );
        w.put_f32s("index.codebooks", &self.codebooks);
        w.put_u8s("index.codes", &self.codes);
        w.put_f32s("index.norms", &self.norms);
    }

    /// Load from the `index.` sections of a persisted file.
    pub(crate) fn from_file(f: &AnnFile) -> Result<PqIndex, FormatError> {
        let params = f.u32s("index.params")?;
        if params.len() != 5 {
            return Err(FormatError::Malformed("pq params section has wrong arity".into()));
        }
        let (dim, m, sub, ks, refine) = (
            params[0] as usize,
            params[1] as usize,
            params[2] as usize,
            params[3] as usize,
            params[4] as usize,
        );
        let codebooks = f.f32s("index.codebooks")?;
        let codes = f.u8s("index.codes")?.to_vec();
        let norms = f.f32s("index.norms")?;
        if m * sub != dim
            || codebooks.len() != m * ks * sub
            || (m > 0 && codes.len() % m != 0)
            || (m > 0 && norms.len() != codes.len() / m)
            || codes.iter().any(|&c| c as usize >= ks.max(1))
        {
            return Err(FormatError::Malformed("pq sections are inconsistent".into()));
        }
        Ok(PqIndex { dim, m, sub, ks, codebooks, codes, norms, refine: refine.max(1) })
    }
}

fn centroid(codebooks: &[f32], s: usize, ks: usize, sub: usize, c: usize) -> &[f32] {
    let at = (s * ks + c) * sub;
    &codebooks[at..at + sub]
}

fn nearest_sub_centroid(
    codebooks: &[f32],
    s: usize,
    ks: usize,
    sub: usize,
    v: &[f32],
) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..ks {
        let d = kernels::l2_sq(v, centroid(codebooks, s, ks, sub, c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// K-means over one sub-space's flat `t × sub` training matrix. The
/// assignment step is a pure order-preserving parallel map above the
/// cutoff; accumulation stays a sequential fold in row order, so the
/// codebook is bit-identical on any pool size.
fn kmeans_subspace(train: &[f32], sub: usize, ks: usize, iterations: usize, seed: u64) -> Vec<f32> {
    let t = train.len().checked_div(sub).unwrap_or(0);
    let mut init: Vec<usize> = (0..t).collect();
    init.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut centroids: Vec<f32> = Vec::with_capacity(ks * sub);
    for &i in init.iter().take(ks) {
        centroids.extend_from_slice(&train[i * sub..(i + 1) * sub]);
    }

    let mut assign = vec![0usize; t];
    for _ in 0..iterations {
        assign_rows(train, sub, &centroids, ks, &mut assign);
        let mut sums = vec![0.0f32; ks * sub];
        let mut counts = vec![0usize; ks];
        for (i, &c) in assign.iter().enumerate() {
            counts[c] += 1;
            for (dst, &x) in sums[c * sub..(c + 1) * sub].iter_mut().zip(&train[i * sub..]) {
                *dst += x;
            }
        }
        for c in 0..ks {
            if counts[c] > 0 {
                for (dst, &s) in centroids[c * sub..(c + 1) * sub].iter_mut().zip(&sums[c * sub..])
                {
                    *dst = s / counts[c] as f32;
                }
            }
        }
    }
    centroids
}

fn assign_rows(train: &[f32], sub: usize, centroids: &[f32], ks: usize, assign: &mut [usize]) {
    let t = assign.len();
    let assign_one = |i: usize| {
        let row = &train[i * sub..(i + 1) * sub];
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..ks {
            let d = kernels::l2_sq(row, &centroids[c * sub..(c + 1) * sub]);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    };
    if t >= PAR_MIN_CANDIDATES {
        let cells: Vec<usize> = (0..t).into_par_iter().map(assign_one).collect();
        assign.copy_from_slice(&cells);
    } else {
        for (i, a) in assign.iter_mut().enumerate() {
            *a = assign_one(i);
        }
    }
}

impl AnnIndex for PqIndex {
    fn kind(&self) -> &'static str {
        "pq"
    }

    fn len(&self) -> usize {
        self.codes.len().checked_div(self.m).unwrap_or(0)
    }

    fn search(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Vec<(u32, f32)> {
        let n = self.len();
        if n == 0 || k == 0 || self.ks == 0 {
            return Vec::new();
        }
        // Precompute the query-to-centroid table: for L2 the sub-distance,
        // for Dot/Cosine the sub-inner-product (both sum across sub-spaces).
        let mut table = vec![0.0f32; self.m * self.ks];
        for s in 0..self.m {
            let qsub = &query[s * self.sub..(s + 1) * self.sub];
            for c in 0..self.ks {
                let cent = centroid(&self.codebooks, s, self.ks, self.sub, c);
                table[s * self.ks + c] = match metric {
                    Metric::L2 => kernels::l2_sq(qsub, cent),
                    Metric::Dot | Metric::Cosine => kernels::dot(qsub, cent),
                };
            }
        }
        let qnorm = kernels::norm(query);
        let score_one = |i: usize| -> (u32, f32) {
            let code = &self.codes[i * self.m..(i + 1) * self.m];
            let mut acc = 0.0f32;
            for (s, &c) in code.iter().enumerate() {
                acc += table[s * self.ks + c as usize];
            }
            let score = match metric {
                Metric::L2 => -acc.max(0.0).sqrt(),
                Metric::Dot => acc,
                Metric::Cosine => {
                    let denom = qnorm * self.norms[i];
                    if denom == 0.0 {
                        0.0
                    } else {
                        acc / denom
                    }
                }
            };
            (i as u32, score)
        };
        let mut scored: Vec<(u32, f32)> = if n >= PAR_MIN_CANDIDATES {
            (0..n).into_par_iter().map(score_one).collect()
        } else {
            (0..n).map(score_one).collect()
        };
        sort_hits(&mut scored);

        let refine = if params.refine > 0 { params.refine } else { self.refine };
        if refine <= 1 {
            scored.truncate(k);
            return scored;
        }
        scored.truncate(k.saturating_mul(refine));
        let mut exact: Vec<(u32, f32)> =
            scored.into_iter().map(|(i, _)| (i, metric.score(query, vectors.vector(i)))).collect();
        sort_hits(&mut exact);
        exact.truncate(k);
        exact
    }

    /// ADC considers every stored code as a candidate without ever
    /// touching a raw vector; the distance tally adds the query-to-
    /// centroid table build (`m · ks` sub-distances), the per-code ADC
    /// sums (`n`), and any refine-pass raw-vector rescores.
    fn search_with_stats(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> (Vec<(u32, f32)>, SearchStats) {
        let counting = CountingVectors::new(vectors);
        let hits = self.search(&counting, metric, query, k, params);
        let n = self.len() as u64;
        let scanned = if n == 0 || k == 0 || self.ks == 0 { 0 } else { n };
        let table = if scanned > 0 { (self.m * self.ks) as u64 } else { 0 };
        let refined = counting.accesses();
        (
            hits,
            SearchStats { candidates: scanned, distance_computations: scanned + table + refined },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::search_exact;
    use crate::vectors::VectorTable;
    use rand::Rng;

    fn random_table(n: usize, dim: usize, seed: u64) -> VectorTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = VectorTable::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            t.push(&v).unwrap();
        }
        t
    }

    #[test]
    fn effective_m_divides_dim() {
        assert_eq!(effective_m(32, 8), 8);
        assert_eq!(effective_m(30, 8), 6);
        assert_eq!(effective_m(7, 4), 1);
        assert_eq!(effective_m(8, 100), 8);
    }

    #[test]
    fn refined_recall_at_10_beats_point_nine() {
        let t = random_table(2000, 16, 21);
        let index = PqIndex::build(&t, &PqConfig { ks: 64, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(22);
        let (mut hit, mut total) = (0usize, 0usize);
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let exact: Vec<u32> =
                search_exact(&t, Metric::L2, &q, 10).into_iter().map(|(i, _)| i).collect();
            let approx: Vec<u32> = index
                .search(&t, Metric::L2, &q, 10, &SearchParams::default())
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            total += exact.len();
            hit += exact.iter().filter(|i| approx.contains(i)).count();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "refined PQ recall@10 too low: {recall}");
    }

    #[test]
    fn refined_scores_are_exact_metric_scores() {
        let t = random_table(300, 8, 5);
        let index = PqIndex::build(&t, &PqConfig { ks: 16, ..Default::default() });
        let q = t.vector(42).to_vec();
        let hits = index.search(&t, Metric::L2, &q, 5, &SearchParams::default());
        for &(i, s) in &hits {
            assert_eq!(s, Metric::L2.score(&q, t.vector(i)), "score of {i} is not exact");
        }
        assert_eq!(hits[0].0, 42, "self-query must refine to the exact vector");
    }

    #[test]
    fn build_is_identical_across_pool_sizes() {
        let t = random_table(3000, 8, 31);
        let cfg = PqConfig { ks: 32, ..Default::default() };
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let multi = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a = single.install(|| PqIndex::build(&t, &cfg));
        let b = multi.install(|| PqIndex::build(&t, &cfg));
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn empty_table_builds_empty_index() {
        let t = VectorTable::new(8);
        let index = PqIndex::build(&t, &PqConfig::default());
        assert!(index.is_empty());
        assert!(index.search(&t, Metric::L2, &[0.0; 8], 3, &SearchParams::default()).is_empty());
    }
}
