//! The common [`AnnIndex`] contract, the exact-scan reference search, and
//! the serializable [`AnyIndex`] dispatch enum.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::hnsw::HnswIndex;
use crate::ivf::IvfIndex;
use crate::metric::Metric;
use crate::pq::PqIndex;
use crate::stats::{CountingVectors, SearchStats};
use crate::vectors::Vectors;
use crate::PAR_MIN_CANDIDATES;

/// Per-query tunables. A zero means "use the index's build-time default",
/// so `SearchParams::default()` always does something sensible on any
/// index kind; fields irrelevant to an index are ignored.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchParams {
    /// IVF: number of coarse cells to probe.
    pub nprobe: usize,
    /// HNSW: size of the layer-0 candidate beam (`ef`). Clamped to at
    /// least `k`.
    pub ef_search: usize,
    /// PQ: rescore the top `refine·k` ADC candidates against the raw
    /// vectors. `1` disables refinement (ADC scores are returned).
    pub refine: usize,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams { nprobe: 4, ef_search: 0, refine: 0 }
    }
}

impl SearchParams {
    /// Params with an explicit IVF probe count (the historical
    /// `search(query, k, nprobe)` shape).
    pub fn with_nprobe(nprobe: usize) -> Self {
        SearchParams { nprobe, ..Default::default() }
    }
}

/// The contract every ANN index satisfies: approximate top-k search over
/// any [`Vectors`] source, returning `(id, score)` pairs sorted by score
/// descending with ties broken by ascending id. Scores are exact
/// [`Metric::score`] values wherever the index touches raw vectors (HNSW,
/// IVF, refined PQ), so results are directly comparable with
/// [`search_exact`] — the recall contract the test-suite checks.
pub trait AnnIndex {
    /// Short name of the index family (`"ivf"`, `"hnsw"`, `"pq"`).
    fn kind(&self) -> &'static str;

    /// Number of vectors the index was built over.
    fn len(&self) -> usize;

    /// True when the index covers no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate top-`k` ids for `query`, scored under `metric` against
    /// `vectors` (the same table the index was built over).
    fn search(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Vec<(u32, f32)>;

    /// Like [`search`](AnnIndex::search), also returning what the search
    /// cost. The default counts raw-vector accesses through a
    /// [`CountingVectors`] wrapper — exact for index families whose every
    /// distance computation fetches a raw vector (HNSW). Families that do
    /// distance work off to the side (IVF centroids, PQ codes) override
    /// this to fold that work into the tallies.
    fn search_with_stats(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> (Vec<(u32, f32)>, SearchStats) {
        let counting = CountingVectors::new(vectors);
        let hits = self.search(&counting, metric, query, k, params);
        let n = counting.accesses();
        (hits, SearchStats { candidates: n, distance_computations: n })
    }
}

/// Sort hits by score descending, ties by ascending id — the deterministic
/// order every search path in this crate returns.
pub(crate) fn sort_hits(hits: &mut [(u32, f32)]) {
    hits.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
}

/// Exact top-k by linear scan: the reference oracle the approximate
/// indexes are measured against. Parallel over the table once it is large
/// enough, with an order-preserving collect, so results are identical on
/// any pool size.
pub fn search_exact(
    vectors: &dyn Vectors,
    metric: Metric,
    query: &[f32],
    k: usize,
) -> Vec<(u32, f32)> {
    let n = vectors.len();
    let score_one = |i: usize| (i as u32, metric.score(query, vectors.vector(i as u32)));
    let mut scored: Vec<(u32, f32)> = if n >= PAR_MIN_CANDIDATES {
        (0..n).into_par_iter().map(score_one).collect()
    } else {
        (0..n).map(score_one).collect()
    };
    sort_hits(&mut scored);
    scored.truncate(k);
    scored
}

/// [`search_exact`] plus its cost: a linear scan considers every stored
/// vector exactly once, so both tallies equal the table length.
pub fn search_exact_with_stats(
    vectors: &dyn Vectors,
    metric: Metric,
    query: &[f32],
    k: usize,
) -> (Vec<(u32, f32)>, SearchStats) {
    let n = vectors.len() as u64;
    (
        search_exact(vectors, metric, query, k),
        SearchStats { candidates: n, distance_computations: n },
    )
}

/// A built index of any family — the serializable sum type the embedding
/// store holds and the persistence file round-trips.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyIndex {
    /// Inverted-file coarse index.
    Ivf(IvfIndex),
    /// Hierarchical navigable-small-world graph.
    Hnsw(HnswIndex),
    /// Product quantization with asymmetric distance computation.
    Pq(PqIndex),
}

impl AnnIndex for AnyIndex {
    fn kind(&self) -> &'static str {
        match self {
            AnyIndex::Ivf(i) => i.kind(),
            AnyIndex::Hnsw(i) => i.kind(),
            AnyIndex::Pq(i) => i.kind(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyIndex::Ivf(i) => i.len(),
            AnyIndex::Hnsw(i) => i.len(),
            AnyIndex::Pq(i) => i.len(),
        }
    }

    fn search(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Vec<(u32, f32)> {
        match self {
            AnyIndex::Ivf(i) => i.search(vectors, metric, query, k, params),
            AnyIndex::Hnsw(i) => i.search(vectors, metric, query, k, params),
            AnyIndex::Pq(i) => i.search(vectors, metric, query, k, params),
        }
    }

    fn search_with_stats(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> (Vec<(u32, f32)>, SearchStats) {
        match self {
            AnyIndex::Ivf(i) => i.search_with_stats(vectors, metric, query, k, params),
            AnyIndex::Hnsw(i) => i.search_with_stats(vectors, metric, query, k, params),
            AnyIndex::Pq(i) => i.search_with_stats(vectors, metric, query, k, params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::VectorTable;

    #[test]
    fn exact_search_orders_ties_by_id() {
        let t = VectorTable::from_rows(
            2,
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 0.0]],
        )
        .unwrap();
        let hits = search_exact(&t, Metric::L2, &[1.0, 0.0], 4);
        // Three exact ties at distance 0 must come back in id order.
        assert_eq!(hits.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 2, 3, 1]);
    }

    #[test]
    fn exact_search_truncates_to_k() {
        let t = VectorTable::from_rows(1, &[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(search_exact(&t, Metric::L2, &[0.0], 2).len(), 2);
        assert!(search_exact(&t, Metric::L2, &[0.0], 0).is_empty());
    }
}
