//! Per-search instrumentation: [`SearchStats`] tallies and the
//! [`CountingVectors`] adapter that counts raw-vector accesses.
//!
//! Every index scores candidates by fetching rows through the [`Vectors`]
//! trait, so wrapping the table in a counting adapter measures exactly how
//! many raw-vector distance computations a search performed — with no
//! changes to the search code itself. Index families that also do distance
//! work *without* touching raw vectors (IVF's coarse-centroid scan, PQ's
//! ADC table build and code scan) override
//! [`AnnIndex::search_with_stats`](crate::AnnIndex::search_with_stats) to
//! fold that work in.

use kgnet_sync::atomic::{AtomicU64, Ordering};

use crate::vectors::Vectors;

/// What one search cost, in units the observability layer aggregates:
/// how many stored vectors were considered and how many distance/score
/// evaluations were spent considering them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Stored vectors considered as result candidates (scored in any
    /// form — raw, or through PQ codes).
    pub candidates: u64,
    /// Total distance/score evaluations, including work that never
    /// touches a raw vector: IVF coarse-centroid scoring, PQ
    /// query-to-centroid table construction and per-code ADC sums.
    pub distance_computations: u64,
}

impl SearchStats {
    /// Fold another search's tallies into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.candidates += other.candidates;
        self.distance_computations += other.distance_computations;
    }
}

/// A [`Vectors`] adapter that counts every [`vector`](Vectors::vector)
/// access with a relaxed atomic, so counting works unchanged under the
/// parallel scoring paths. One access corresponds to one raw-vector
/// distance computation in every search loop in this crate.
pub struct CountingVectors<'a> {
    inner: &'a dyn Vectors,
    accesses: AtomicU64,
}

impl<'a> CountingVectors<'a> {
    /// Wrap `inner`, starting the access count at zero.
    pub fn new(inner: &'a dyn Vectors) -> Self {
        CountingVectors { inner, accesses: AtomicU64::new(0) }
    }

    /// Number of `vector()` calls observed so far. Exact once the search
    /// that used this wrapper has returned (no recorder is in flight).
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }
}

impl Vectors for CountingVectors<'_> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn vector(&self, i: u32) -> &[f32] {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        self.inner.vector(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::VectorTable;

    #[test]
    fn counting_adapter_is_transparent_and_counts() {
        let t = VectorTable::from_rows(2, &[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let c = CountingVectors::new(&t);
        assert_eq!(c.len(), 2);
        assert_eq!(c.dim(), 2);
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.vector(1), &[3.0, 4.0]);
        assert_eq!(c.vector(0), &[1.0, 2.0]);
        assert_eq!(c.vector(1), &[3.0, 4.0]);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = SearchStats { candidates: 3, distance_computations: 10 };
        a.merge(&SearchStats { candidates: 2, distance_computations: 7 });
        assert_eq!(a, SearchStats { candidates: 5, distance_computations: 17 });
    }
}
