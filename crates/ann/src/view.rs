//! Zero-copy typed views over little-endian byte buffers.
//!
//! This is the one module in the crate allowed to use `unsafe`: it
//! reinterprets a `&[u8]` from a memory-mapped file as `&[f32]` when — and
//! only when — the target is little-endian (matching the on-disk byte
//! order), the pointer is 4-byte aligned, and the length is an exact
//! multiple of four. Callers fall back to a copying decode whenever any of
//! those checks fail, so the casts here are a performance path, never a
//! correctness requirement.

#![allow(unsafe_code)]

/// Reinterpret `bytes` as a slice of `f32`. Returns `None` (callers must
/// copy-decode instead) unless the target is little-endian, the buffer is
/// 4-byte aligned and its length is a multiple of four.
pub(crate) fn bytes_as_f32s(bytes: &[u8]) -> Option<&[f32]> {
    if cfg!(target_endian = "big") {
        return None;
    }
    if !bytes.len().is_multiple_of(4)
        || !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f32>())
    {
        return None;
    }
    // SAFETY: alignment and length were just checked; f32 has no invalid
    // bit patterns; the on-disk representation is little-endian, which the
    // cfg check above guarantees matches the host.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f32, bytes.len() / 4) })
}

/// Copying little-endian decode of an `f32` section (the fallback path,
/// and the writer's inverse for tests).
pub(crate) fn decode_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// Copying little-endian decode of a `u32` section.
pub(crate) fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_le_bytes_view_as_f32s() {
        let values = [1.5f32, -2.25, 0.0, 3.0e7];
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Vec<u8> from extend of 4-byte chunks is at least 1-aligned; copy
        // into a Vec<f32>-backed buffer to guarantee 4-byte alignment.
        let owned = decode_f32s(&bytes);
        assert_eq!(owned, values);
        let realigned: &[u8] = {
            // A slice over a Vec<f32>'s bytes is always 4-aligned.
            let flat: &[f32] = &owned;
            if let Some(view) = bytes_as_f32s(&bytes) {
                assert_eq!(view, flat);
            }
            &bytes
        };
        assert_eq!(decode_u32s(realigned).len(), 4);
    }

    #[test]
    fn misaligned_or_ragged_views_are_refused() {
        let buf = vec![0u8; 9];
        assert!(bytes_as_f32s(&buf).is_none(), "length not a multiple of four");
        let aligned = [0u8; 8];
        if (aligned.as_ptr() as usize).is_multiple_of(4) {
            assert!(bytes_as_f32s(&aligned[1..5]).is_none(), "misaligned view accepted");
        }
    }
}
