//! Vector sources: the [`Vectors`] access trait every index searches
//! through, and [`VectorTable`] — a flat row-major f32 matrix that is
//! either owned in memory or a zero-copy view into a memory-mapped
//! persistence file.

use std::sync::Arc;

use memmap2::Mmap;
use serde::{
    de::{Deserializer, Error as DeError},
    ser::Serializer,
    Content, Deserialize, Serialize,
};

use crate::view;
use crate::AnnError;

/// Read access to a set of equal-width f32 vectors, addressed by dense
/// `u32` ids. Implemented by [`VectorTable`] and by the embedding store's
/// key-indexed table; every index in this crate searches through it, so
/// the same built index serves an in-memory store and a memory-mapped one
/// identically.
pub trait Vectors: Sync {
    /// Number of vectors.
    fn len(&self) -> usize;

    /// True when no vector is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector width.
    fn dim(&self) -> usize;

    /// The `i`-th vector. Panics when `i` is out of bounds.
    fn vector(&self, i: u32) -> &[f32];
}

/// A flat, row-major matrix of f32 vectors: the canonical [`Vectors`]
/// implementation. The backing storage is either an owned buffer or a
/// shared read-only memory map of a persisted embedding file (zero-copy:
/// rows are served straight from the page cache). Mutation transparently
/// materialises a mapped table into an owned one first.
#[derive(Clone)]
pub struct VectorTable {
    dim: usize,
    rows: usize,
    data: Data,
}

#[derive(Clone)]
enum Data {
    Owned(Vec<f32>),
    Mapped { map: Arc<Mmap>, byte_offset: usize },
}

impl VectorTable {
    /// New empty owned table for vectors of width `dim`.
    pub fn new(dim: usize) -> Self {
        VectorTable { dim, rows: 0, data: Data::Owned(Vec::new()) }
    }

    /// Build an owned table from `rows` (each must be `dim` wide).
    pub fn from_rows(dim: usize, rows: &[Vec<f32>]) -> Result<Self, AnnError> {
        let mut t = VectorTable::new(dim);
        for r in rows {
            t.push(r)?;
        }
        Ok(t)
    }

    /// Construct a zero-copy table over `rows * dim` f32s starting at
    /// `byte_offset` inside `map`. Returns `None` when the range is out of
    /// bounds, misaligned, or the target's endianness does not match the
    /// little-endian file layout — callers then fall back to an owned
    /// decode.
    pub(crate) fn mapped(
        map: Arc<Mmap>,
        byte_offset: usize,
        rows: usize,
        dim: usize,
    ) -> Option<Self> {
        let bytes = rows.checked_mul(dim)?.checked_mul(4)?;
        let end = byte_offset.checked_add(bytes)?;
        if end > map.len() {
            return None;
        }
        // Validate the cast once up front; `flat()` repeats it per access
        // (cheap pointer checks) and can rely on it succeeding.
        view::bytes_as_f32s(&map[byte_offset..end])?;
        Some(VectorTable { dim, rows, data: Data::Mapped { map, byte_offset } })
    }

    /// Append one vector, rejecting width mismatches. A mapped table is
    /// materialised into an owned buffer first.
    pub fn push(&mut self, vector: &[f32]) -> Result<(), AnnError> {
        if vector.len() != self.dim {
            return Err(AnnError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        self.make_owned();
        let Data::Owned(buf) = &mut self.data else { unreachable!("make_owned materialised") };
        buf.extend_from_slice(vector);
        self.rows += 1;
        Ok(())
    }

    /// The whole table as one flat row-major slice.
    pub fn flat(&self) -> &[f32] {
        match &self.data {
            Data::Owned(buf) => buf,
            Data::Mapped { map, byte_offset } => {
                let bytes = self.rows * self.dim * 4;
                view::bytes_as_f32s(&map[*byte_offset..*byte_offset + bytes])
                    .expect("validated at construction")
            }
        }
    }

    /// True when this table reads from a memory map rather than an owned
    /// buffer (diagnostics only; behaviour is identical).
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, Data::Mapped { .. })
    }

    /// Convert a mapped table into an owned one in place (no-op when
    /// already owned).
    pub fn make_owned(&mut self) {
        if let Data::Mapped { .. } = self.data {
            self.data = Data::Owned(self.flat().to_vec());
        }
    }

    /// Iterate the rows in id order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.flat().chunks_exact(self.dim.max(1))
    }
}

impl Vectors for VectorTable {
    fn len(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn vector(&self, i: u32) -> &[f32] {
        let start = i as usize * self.dim;
        &self.flat()[start..start + self.dim]
    }
}

impl PartialEq for VectorTable {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.rows == other.rows && self.flat() == other.flat()
    }
}

impl std::fmt::Debug for VectorTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorTable")
            .field("rows", &self.rows)
            .field("dim", &self.dim)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Serialize for VectorTable {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Wire form: {"dim": d, "rows": [[...], ...]} — self-describing so
        // an empty table keeps its width through a JSON round-trip.
        let rows = self
            .iter_rows()
            .take(self.rows)
            .map(|r| Content::Seq(r.iter().map(|&x| Content::F64(x as f64)).collect()))
            .collect();
        serializer.serialize_content(Content::Map(vec![
            ("dim".to_owned(), Content::U64(self.dim as u64)),
            ("rows".to_owned(), Content::Seq(rows)),
        ]))
    }
}

impl<'de> Deserialize<'de> for VectorTable {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        let dim = match content.get("dim") {
            Some(Content::U64(d)) => *d as usize,
            Some(Content::I64(d)) if *d >= 0 => *d as usize,
            _ => return Err(D::Error::custom("VectorTable: missing or invalid `dim`")),
        };
        let Some(Content::Seq(rows)) = content.get("rows") else {
            return Err(D::Error::custom("VectorTable: missing `rows` sequence"));
        };
        let mut table = VectorTable::new(dim);
        for row in rows {
            let Content::Seq(vals) = row else {
                return Err(D::Error::custom("VectorTable: row is not a sequence"));
            };
            let mut v = Vec::with_capacity(vals.len());
            for x in vals {
                match x {
                    Content::F64(f) => v.push(*f as f32),
                    Content::I64(i) => v.push(*i as f32),
                    Content::U64(u) => v.push(*u as f32),
                    other => {
                        return Err(D::Error::custom(format!(
                            "VectorTable: non-numeric entry {other:?}"
                        )))
                    }
                }
            }
            table.push(&v).map_err(D::Error::custom)?;
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut t = VectorTable::new(3);
        t.push(&[1.0, 2.0, 3.0]).unwrap();
        t.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.vector(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(!t.is_mapped());
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut t = VectorTable::new(4);
        let err = t.push(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, AnnError::DimensionMismatch { expected: 4, got: 2 }));
        assert_eq!(t.len(), 0, "failed push must not grow the table");
    }

    #[test]
    fn serde_roundtrip_preserves_dim_of_empty_table() {
        let t = VectorTable::new(7);
        let json = serde_json::to_string(&t).unwrap();
        let back: VectorTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dim(), 7);
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn serde_roundtrip_preserves_rows() {
        let t = VectorTable::from_rows(2, &[vec![1.5, -2.0], vec![0.25, 8.0]]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: VectorTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
