//! The inverted-file coarse index: k-means cells plus posting lists
//! (FAISS's `IndexIVFFlat` shape), relocated from the embedding store.

use kgnet_linalg::kernels;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::format::{AnnFile, AnnFileWriter, FormatError};
use crate::index::{sort_hits, AnnIndex, SearchParams};
use crate::metric::Metric;
use crate::stats::{CountingVectors, SearchStats};
use crate::vectors::Vectors;
use crate::PAR_MIN_CANDIDATES;

/// An inverted-file coarse index (k-means cells + posting lists).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfIndex {
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<u32>>,
    len: usize,
}

impl IvfIndex {
    /// Build an IVF index with `n_cells` k-means cells over `vectors` (a
    /// few Lloyd iterations, like FAISS's coarse quantiser training).
    ///
    /// The dominant O(n·cells·dim) phase — nearest-centroid assignment —
    /// runs data-parallel on the work-stealing pool once the table is
    /// large enough, as a pure per-vector map with an order-preserving
    /// collect. The O(n·dim) centroid accumulation stays a single
    /// sequential fold in vector index order, so the index is
    /// bit-identical to the sequential build on any `RAYON_NUM_THREADS`.
    pub fn build(vectors: &dyn Vectors, n_cells: usize, iterations: usize, seed: u64) -> IvfIndex {
        let n = vectors.len();
        let dim = vectors.dim();
        if n == 0 {
            return IvfIndex { centroids: Vec::new(), lists: Vec::new(), len: 0 };
        }
        let n_cells = n_cells.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f32>> =
            order[..n_cells].iter().map(|&i| vectors.vector(i as u32).to_vec()).collect();

        let mut assign = vec![0usize; n];
        for _ in 0..iterations.max(1) {
            assign_cells(vectors, &centroids, &mut assign);
            let mut sums = vec![vec![0.0f32; dim]; n_cells];
            let mut counts = vec![0usize; n_cells];
            for (i, &cell) in assign.iter().enumerate() {
                counts[cell] += 1;
                for (s, &x) in sums[cell].iter_mut().zip(vectors.vector(i as u32)) {
                    *s += x;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    *c = sum.iter().map(|&s| s / count as f32).collect();
                }
            }
        }
        assign_cells(vectors, &centroids, &mut assign);
        let mut lists = vec![Vec::new(); n_cells];
        for (i, &cell) in assign.iter().enumerate() {
            lists[cell].push(i as u32);
        }
        IvfIndex { centroids, lists, len: n }
    }

    /// Number of coarse cells.
    pub fn n_cells(&self) -> usize {
        self.centroids.len()
    }

    /// Reassemble an index from its raw parts — the migration hook for
    /// reading the pre-`kgnet-ann` JSON layout (`{centroids, lists}` with
    /// the vector count implied by the surrounding store). Entries out of
    /// `0..len` are rejected.
    pub fn from_parts(
        centroids: Vec<Vec<f32>>,
        lists: Vec<Vec<u32>>,
        len: usize,
    ) -> Option<IvfIndex> {
        if lists.len() != centroids.len() || lists.iter().flatten().any(|&id| id as usize >= len) {
            return None;
        }
        Some(IvfIndex { centroids, lists, len })
    }

    /// Persist into `w` under the `index.` section prefix.
    pub(crate) fn put_sections(&self, w: &mut AnnFileWriter) {
        let dim = self.centroids.first().map_or(0, |c| c.len());
        w.put_u32s("index.params", &[self.centroids.len() as u32, dim as u32, self.len as u32]);
        let flat: Vec<f32> = self.centroids.iter().flatten().copied().collect();
        w.put_f32s("index.centroids", &flat);
        let mut offsets = Vec::with_capacity(self.lists.len() + 1);
        let mut entries = Vec::new();
        offsets.push(0u32);
        for list in &self.lists {
            entries.extend_from_slice(list);
            offsets.push(entries.len() as u32);
        }
        w.put_u32s("index.list_offsets", &offsets);
        w.put_u32s("index.list_entries", &entries);
    }

    /// Load from the `index.` sections of a persisted file.
    pub(crate) fn from_file(f: &AnnFile) -> Result<IvfIndex, FormatError> {
        let params = f.u32s("index.params")?;
        if params.len() != 3 {
            return Err(FormatError::Malformed("ivf params section has wrong arity".into()));
        }
        let (cells, dim, len) = (params[0] as usize, params[1] as usize, params[2] as usize);
        let flat = f.f32s("index.centroids")?;
        if flat.len() != cells * dim {
            return Err(FormatError::Malformed("ivf centroid section size mismatch".into()));
        }
        let centroids = flat.chunks_exact(dim.max(1)).map(<[f32]>::to_vec).take(cells).collect();
        let offsets = f.u32s("index.list_offsets")?;
        let entries = f.u32s("index.list_entries")?;
        if offsets.len() != cells + 1
            || offsets.last().copied().unwrap_or(0) as usize != entries.len()
        {
            return Err(FormatError::Malformed("ivf posting-list offsets are inconsistent".into()));
        }
        if entries.iter().any(|&id| id as usize >= len) {
            return Err(FormatError::Malformed("ivf posting-list entry id out of range".into()));
        }
        let mut lists = Vec::with_capacity(cells);
        for wnd in offsets.windows(2) {
            let (a, b) = (wnd[0] as usize, wnd[1] as usize);
            if a > b || b > entries.len() {
                return Err(FormatError::Malformed("ivf posting-list range out of bounds".into()));
            }
            lists.push(entries[a..b].to_vec());
        }
        Ok(IvfIndex { centroids, lists, len })
    }
}

/// Nearest-centroid assignment for every vector: a pure map, run on the
/// pool above the parallel cutoff with an order-preserving collect, so the
/// result is identical to the sequential loop.
fn assign_cells(vectors: &dyn Vectors, centroids: &[Vec<f32>], assign: &mut [usize]) {
    let n = vectors.len();
    if n >= PAR_MIN_CANDIDATES {
        let cells: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|i| nearest_centroid(centroids, vectors.vector(i as u32)))
            .collect();
        assign.copy_from_slice(&cells);
    } else {
        for (i, a) in assign.iter_mut().enumerate() {
            *a = nearest_centroid(centroids, vectors.vector(i as u32));
        }
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = kernels::l2_sq(v, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

impl AnnIndex for IvfIndex {
    fn kind(&self) -> &'static str {
        "ivf"
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Probe the `nprobe` nearest cells and score their posting lists.
    /// Large probe sets fan the per-list scans out over the pool; the
    /// collect is order-preserving (cells in probe order, entries in list
    /// order), so both paths produce the same candidate sequence.
    fn search(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Vec<(u32, f32)> {
        if self.centroids.is_empty() {
            return Vec::new();
        }
        let mut cells: Vec<(usize, f32)> =
            self.centroids.iter().enumerate().map(|(i, c)| (i, kernels::l2_sq(query, c))).collect();
        cells.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let probed: Vec<&Vec<u32>> =
            cells.iter().take(params.nprobe.max(1)).map(|&(cell, _)| &self.lists[cell]).collect();
        let total: usize = probed.iter().map(|l| l.len()).sum();
        let score_list = |list: &&Vec<u32>| -> Vec<(u32, f32)> {
            list.iter().map(|&i| (i, metric.score(query, vectors.vector(i)))).collect()
        };
        let per_cell: Vec<Vec<(u32, f32)>> = if total >= PAR_MIN_CANDIDATES {
            probed.par_iter().map(score_list).collect()
        } else {
            probed.iter().map(score_list).collect()
        };
        let mut scored: Vec<(u32, f32)> = per_cell.into_iter().flatten().collect();
        sort_hits(&mut scored);
        scored.truncate(k);
        scored
    }

    /// Candidates are the posting-list entries of the probed cells; the
    /// coarse scan additionally scores every centroid without touching a
    /// raw vector, so it counts as distance work but not as candidates.
    fn search_with_stats(
        &self,
        vectors: &dyn Vectors,
        metric: Metric,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> (Vec<(u32, f32)>, SearchStats) {
        let counting = CountingVectors::new(vectors);
        let hits = self.search(&counting, metric, query, k, params);
        let scored = counting.accesses();
        let coarse = if self.centroids.is_empty() { 0 } else { self.centroids.len() as u64 };
        (hits, SearchStats { candidates: scored, distance_computations: scored + coarse })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::search_exact;
    use crate::vectors::VectorTable;
    use rand::Rng;

    fn random_table(n: usize, dim: usize, seed: u64) -> VectorTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = VectorTable::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            t.push(&v).unwrap();
        }
        t
    }

    #[test]
    fn recall_at_10_beats_threshold() {
        let t = random_table(400, 16, 2);
        let index = IvfIndex::build(&t, 16, 5, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let (mut hits, mut total) = (0usize, 0usize);
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let exact: Vec<u32> =
                search_exact(&t, Metric::L2, &q, 10).into_iter().map(|(i, _)| i).collect();
            let approx: Vec<u32> = index
                .search(&t, Metric::L2, &q, 10, &SearchParams::with_nprobe(4))
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            total += exact.len();
            hits += exact.iter().filter(|i| approx.contains(i)).count();
        }
        assert!(hits as f64 / total as f64 > 0.6, "IVF recall too low");
    }

    #[test]
    fn build_is_identical_across_pool_sizes() {
        let t = random_table(3000, 8, 9);
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let multi = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a = single.install(|| IvfIndex::build(&t, 32, 4, 7));
        let b = multi.install(|| IvfIndex::build(&t, 32, 4, 7));
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn empty_table_builds_empty_index() {
        let t = VectorTable::new(4);
        let index = IvfIndex::build(&t, 8, 3, 1);
        assert!(index.is_empty());
        assert!(index.search(&t, Metric::L2, &[0.0; 4], 3, &SearchParams::default()).is_empty());
    }
}
