//! Persisted embedding artifacts: the composition of a key table, the
//! vector matrix and an optional built index into one binary file, and
//! the memory-mapped load that serves searches straight off the page
//! cache — the replacement for JSON round-trips of embedding payloads.

use std::path::Path;

use crate::format::{AnnFile, AnnFileWriter, FormatError};
use crate::hnsw::HnswIndex;
use crate::index::AnyIndex;
use crate::ivf::IvfIndex;
use crate::metric::Metric;
use crate::pq::PqIndex;
use crate::vectors::{VectorTable, Vectors};
use crate::AnnError;

/// Artifact-kind tag of an embedding store file.
pub const KIND_EMBEDDING_STORE: u32 = 1;

const INDEX_NONE: u32 = 0;
const INDEX_IVF: u32 = 1;
const INDEX_HNSW: u32 = 2;
const INDEX_PQ: u32 = 3;

/// The contents of a persisted embedding artifact: everything an
/// embedding store needs to serve searches.
pub struct EmbeddingFileContents {
    /// Vector width.
    pub dim: usize,
    /// Similarity metric the vectors are searched under.
    pub metric: Metric,
    /// Entity key per vector id (same order as the table rows).
    pub keys: Vec<String>,
    /// The vector matrix — memory-mapped (zero-copy) after a load.
    pub vectors: VectorTable,
    /// The built index, if one was persisted.
    pub index: Option<AnyIndex>,
}

impl EmbeddingFileContents {
    /// Borrowed view for re-saving loaded contents.
    pub fn as_view(&self) -> EmbeddingFileView<'_> {
        EmbeddingFileView {
            dim: self.dim,
            metric: self.metric,
            keys: &self.keys,
            vectors: &self.vectors,
            index: self.index.as_ref(),
        }
    }
}

/// A borrowed view of embedding-artifact contents: what
/// [`save_embedding_file`] consumes, so saving never clones the key table
/// or the vector matrix.
#[derive(Clone, Copy)]
pub struct EmbeddingFileView<'a> {
    /// Vector width.
    pub dim: usize,
    /// Similarity metric the vectors are searched under.
    pub metric: Metric,
    /// Entity key per vector id (same order as the table rows).
    pub keys: &'a [String],
    /// The vector matrix.
    pub vectors: &'a VectorTable,
    /// The built index, if any.
    pub index: Option<&'a AnyIndex>,
}

/// Persist an embedding artifact to `path` in the binary columnar format.
pub fn save_embedding_file(path: &Path, c: EmbeddingFileView<'_>) -> Result<(), AnnError> {
    let mut w = AnnFileWriter::new(KIND_EMBEDDING_STORE);
    let index_tag = match c.index {
        None => INDEX_NONE,
        Some(AnyIndex::Ivf(_)) => INDEX_IVF,
        Some(AnyIndex::Hnsw(_)) => INDEX_HNSW,
        Some(AnyIndex::Pq(_)) => INDEX_PQ,
    };
    w.put_u32s("meta", &[c.dim as u32, c.metric.code(), c.keys.len() as u32, index_tag]);
    w.put_strings("keys", c.keys);
    w.put_f32s("vectors", c.vectors.flat());
    match c.index {
        None => {}
        Some(AnyIndex::Ivf(i)) => i.put_sections(&mut w),
        Some(AnyIndex::Hnsw(i)) => i.put_sections(&mut w),
        Some(AnyIndex::Pq(i)) => i.put_sections(&mut w),
    }
    w.write_to(path)?;
    Ok(())
}

/// Load an embedding artifact from `path`. The checksum is verified, then
/// the vector matrix is served zero-copy from the memory map (owned
/// fallback on exotic targets); the index structures are decoded into
/// memory.
pub fn load_embedding_file(path: &Path) -> Result<EmbeddingFileContents, AnnError> {
    let f = AnnFile::open(path)?;
    if f.kind() != KIND_EMBEDDING_STORE {
        return Err(AnnError::Format(FormatError::Malformed(format!(
            "expected an embedding-store artifact, found kind {}",
            f.kind()
        ))));
    }
    let meta = f.u32s("meta")?;
    if meta.len() != 4 {
        return Err(AnnError::Format(FormatError::Malformed(
            "meta section has wrong arity".into(),
        )));
    }
    let dim = meta[0] as usize;
    let metric = Metric::from_code(meta[1]).ok_or_else(|| {
        AnnError::Format(FormatError::Malformed(format!("unknown metric code {}", meta[1])))
    })?;
    let n = meta[2] as usize;
    let keys = f.strings("keys")?;
    if keys.len() != n {
        return Err(AnnError::Format(FormatError::Malformed(format!(
            "key count {} disagrees with meta count {n}",
            keys.len()
        ))));
    }
    let vectors = if dim == 0 { VectorTable::new(0) } else { f.f32_table("vectors", dim)? };
    if vectors.len() != n {
        return Err(AnnError::Format(FormatError::Malformed(format!(
            "vector count {} disagrees with key count {n}",
            vectors.len()
        ))));
    }
    let index = match meta[3] {
        INDEX_NONE => None,
        INDEX_IVF => Some(AnyIndex::Ivf(IvfIndex::from_file(&f)?)),
        INDEX_HNSW => Some(AnyIndex::Hnsw(HnswIndex::from_file(&f)?)),
        INDEX_PQ => Some(AnyIndex::Pq(PqIndex::from_file(&f)?)),
        other => {
            return Err(AnnError::Format(FormatError::Malformed(format!(
                "unknown index tag {other}"
            ))))
        }
    };
    if let Some(ix) = &index {
        use crate::index::AnnIndex;
        if ix.len() != n {
            return Err(AnnError::Format(FormatError::Malformed(format!(
                "index covers {} vectors but the table holds {n}",
                ix.len()
            ))));
        }
    }
    Ok(EmbeddingFileContents { dim, metric, keys, vectors, index })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::HnswConfig;
    use crate::index::{search_exact, AnnIndex, SearchParams};
    use crate::pq::PqConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kgnet-ann-file-{}-{name}.ann", std::process::id()))
    }

    fn sample_contents(n: usize, dim: usize, seed: u64) -> EmbeddingFileContents {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vectors = VectorTable::new(dim);
        let mut keys = Vec::new();
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vectors.push(&v).unwrap();
            keys.push(format!("e{i}"));
        }
        EmbeddingFileContents { dim, metric: Metric::L2, keys, vectors, index: None }
    }

    #[test]
    fn roundtrip_without_index() {
        let path = temp_path("noindex");
        let c = sample_contents(50, 8, 1);
        save_embedding_file(&path, c.as_view()).unwrap();
        let back = load_embedding_file(&path).unwrap();
        assert_eq!(back.dim, 8);
        assert_eq!(back.metric, Metric::L2);
        assert_eq!(back.keys, c.keys);
        assert_eq!(back.vectors, c.vectors);
        assert!(back.index.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_load_serves_searches_identical_to_owned() {
        let path = temp_path("identical");
        let mut c = sample_contents(600, 12, 2);
        let hnsw = HnswIndex::build(&c.vectors, c.metric, &HnswConfig::default());
        c.index = Some(AnyIndex::Hnsw(hnsw));
        save_embedding_file(&path, c.as_view()).unwrap();
        let back = load_embedding_file(&path).unwrap();
        let (orig, loaded) = (c.index.as_ref().unwrap(), back.index.as_ref().unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let q: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let a = orig.search(&c.vectors, c.metric, &q, 7, &SearchParams::default());
            let b = loaded.search(&back.vectors, back.metric, &q, 7, &SearchParams::default());
            assert_eq!(a, b, "mapped search diverged from in-memory search");
            assert_eq!(
                search_exact(&c.vectors, c.metric, &q, 7),
                search_exact(&back.vectors, back.metric, &q, 7),
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pq_roundtrips_with_exact_scores() {
        let path = temp_path("pq");
        let mut c = sample_contents(400, 8, 4);
        c.index = Some(AnyIndex::Pq(PqIndex::build(
            &c.vectors,
            &PqConfig { ks: 16, ..Default::default() },
        )));
        save_embedding_file(&path, c.as_view()).unwrap();
        let back = load_embedding_file(&path).unwrap();
        let q = c.vectors.vector(17).to_vec();
        let a = c.index.as_ref().unwrap().search(&c.vectors, c.metric, &q, 5, &Default::default());
        let b = back.index.as_ref().unwrap().search(
            &back.vectors,
            back.metric,
            &q,
            5,
            &Default::default(),
        );
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_range_ivf_entries_are_rejected_at_load() {
        // A structurally valid, checksummed file whose posting lists point
        // past the vector table must fail at load, not panic at search.
        let path = temp_path("badivf");
        let mut w = AnnFileWriter::new(KIND_EMBEDDING_STORE);
        w.put_u32s("meta", &[2, Metric::L2.code(), 2, 1]);
        w.put_strings("keys", &["a".into(), "b".into()]);
        w.put_f32s("vectors", &[0.0, 0.0, 1.0, 1.0]);
        w.put_u32s("index.params", &[1, 2, 2]);
        w.put_f32s("index.centroids", &[0.5, 0.5]);
        w.put_u32s("index.list_offsets", &[0, 2]);
        w.put_u32s("index.list_entries", &[0, 9]); // id 9 of a 2-vector table
        w.write_to(&path).unwrap();
        match load_embedding_file(&path).map(|_| ()) {
            Err(AnnError::Format(FormatError::Malformed(m))) => {
                assert!(m.contains("out of range"), "unexpected reason: {m}")
            }
            other => panic!("out-of-range posting entry accepted: {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ivf_roundtrips() {
        let path = temp_path("ivf");
        let mut c = sample_contents(300, 6, 5);
        c.index = Some(AnyIndex::Ivf(IvfIndex::build(&c.vectors, 12, 4, 9)));
        save_embedding_file(&path, c.as_view()).unwrap();
        let back = load_embedding_file(&path).unwrap();
        let q = c.vectors.vector(200).to_vec();
        let params = SearchParams::with_nprobe(3);
        assert_eq!(
            c.index.as_ref().unwrap().search(&c.vectors, c.metric, &q, 9, &params),
            back.index.as_ref().unwrap().search(&back.vectors, back.metric, &q, 9, &params),
        );
        let _ = std::fs::remove_file(&path);
    }
}
