//! The binary columnar persistence format: a versioned, checksummed flat
//! file of named, typed sections, with a memory-mapped reader.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   magic "KGNETANN" · version u32 · kind u32 · n_sections u32 · 0u32
//! section  name_len u32 · type u32 · count u64 · name bytes · pad8
//!          payload (count × elem_size bytes) · pad8
//! footer   crc32 u32 (over everything above) · sentinel u32
//! ```
//!
//! Sections are 8-byte aligned so a memory-mapped `f32` payload can be
//! viewed in place without copying (see [`AnnFile::f32_table`]); the
//! trailing CRC-32 rejects truncated or corrupted files before any
//! payload is interpreted.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use memmap2::Mmap;

use crate::vectors::VectorTable;
use crate::view;

/// File magic: the first eight bytes of every persisted artifact.
pub const MAGIC: &[u8; 8] = b"KGNETANN";

/// Current format version.
pub const VERSION: u32 = 1;

/// Footer sentinel following the checksum.
const FOOTER_SENTINEL: u32 = 0xA22C_57E1;

const HEADER_LEN: usize = 24;
const FOOTER_LEN: usize = 8;

/// Element type of a section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionType {
    /// Raw bytes.
    U8,
    /// Little-endian `u32`s.
    U32,
    /// Little-endian IEEE-754 `f32`s.
    F32,
}

impl SectionType {
    fn code(self) -> u32 {
        match self {
            SectionType::U8 => 0,
            SectionType::U32 => 1,
            SectionType::F32 => 2,
        }
    }

    fn from_code(code: u32) -> Option<SectionType> {
        match code {
            0 => Some(SectionType::U8),
            1 => Some(SectionType::U32),
            2 => Some(SectionType::F32),
            _ => None,
        }
    }

    fn elem_size(self) -> usize {
        match self {
            SectionType::U8 => 1,
            SectionType::U32 | SectionType::F32 => 4,
        }
    }
}

/// Errors raised by the persistence format.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid file (bad magic, bounds, arity, …).
    Malformed(String),
    /// Unsupported format version.
    Version(u32),
    /// The checksum over the file body does not match the footer.
    Checksum {
        /// CRC recorded in the footer.
        expected: u32,
        /// CRC computed over the file body.
        actual: u32,
    },
    /// A required section is absent.
    MissingSection(String),
    /// A section exists but under a different element type.
    WrongType(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::Malformed(m) => write!(f, "malformed file: {m}"),
            FormatError::Version(v) => write!(f, "unsupported format version {v}"),
            FormatError::Checksum { expected, actual } => {
                write!(f, "checksum mismatch: footer {expected:#010x}, body {actual:#010x}")
            }
            FormatError::MissingSection(s) => write!(f, "missing section `{s}`"),
            FormatError::WrongType(s) => write!(f, "section `{s}` has the wrong element type"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

struct Section {
    name: String,
    stype: SectionType,
    count: u64,
    payload: Vec<u8>,
}

/// Builder for a persisted artifact: collect named typed sections, then
/// [`AnnFileWriter::write_to`] a path (via a temp file + rename, so a
/// crash mid-write never leaves a half-written artifact under the final
/// name).
pub struct AnnFileWriter {
    kind: u32,
    sections: Vec<Section>,
}

impl AnnFileWriter {
    /// New writer for an artifact of the given `kind` tag.
    pub fn new(kind: u32) -> Self {
        AnnFileWriter { kind, sections: Vec::new() }
    }

    /// Append a raw-byte section.
    pub fn put_u8s(&mut self, name: &str, data: &[u8]) {
        self.sections.push(Section {
            name: name.to_owned(),
            stype: SectionType::U8,
            count: data.len() as u64,
            payload: data.to_vec(),
        });
    }

    /// Append a `u32` section.
    pub fn put_u32s(&mut self, name: &str, data: &[u32]) {
        let mut payload = Vec::with_capacity(data.len() * 4);
        for v in data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push(Section {
            name: name.to_owned(),
            stype: SectionType::U32,
            count: data.len() as u64,
            payload,
        });
    }

    /// Append an `f32` section.
    pub fn put_f32s(&mut self, name: &str, data: &[f32]) {
        let mut payload = Vec::with_capacity(data.len() * 4);
        for v in data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.sections.push(Section {
            name: name.to_owned(),
            stype: SectionType::F32,
            count: data.len() as u64,
            payload,
        });
    }

    /// Append a string list as an offsets + bytes section pair
    /// (`<name>.offsets`, `<name>.bytes`).
    pub fn put_strings(&mut self, name: &str, strings: &[String]) {
        let mut offsets = Vec::with_capacity(strings.len() + 1);
        let mut bytes = Vec::new();
        offsets.push(0u32);
        for s in strings {
            bytes.extend_from_slice(s.as_bytes());
            offsets.push(bytes.len() as u32);
        }
        self.put_u32s(&format!("{name}.offsets"), &offsets);
        self.put_u8s(&format!("{name}.bytes"), &bytes);
    }

    /// Serialise all sections and atomically replace `path`.
    pub fn write_to(&self, path: &Path) -> Result<(), FormatError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.kind.to_le_bytes());
        buf.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        debug_assert_eq!(buf.len(), HEADER_LEN);
        for s in &self.sections {
            buf.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
            buf.extend_from_slice(&s.stype.code().to_le_bytes());
            buf.extend_from_slice(&s.count.to_le_bytes());
            buf.extend_from_slice(s.name.as_bytes());
            pad8(&mut buf);
            buf.extend_from_slice(&s.payload);
            pad8(&mut buf);
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&FOOTER_SENTINEL.to_le_bytes());

        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn pad8_len(n: usize) -> usize {
    n.div_ceil(8) * 8
}

struct SectionMeta {
    name: String,
    stype: SectionType,
    offset: usize,
    count: usize,
}

/// A memory-mapped persisted artifact: the checksum is verified once at
/// open, after which sections are served straight from the map (zero-copy
/// for byte and — alignment permitting — `f32` payloads).
pub struct AnnFile {
    map: Arc<Mmap>,
    kind: u32,
    sections: Vec<SectionMeta>,
}

impl std::fmt::Debug for AnnFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnnFile")
            .field("kind", &self.kind)
            .field("bytes", &self.map.len())
            .field("sections", &self.section_names())
            .finish()
    }
}

impl AnnFile {
    /// Open, verify and parse `path`.
    pub fn open(path: &Path) -> Result<AnnFile, FormatError> {
        let file = File::open(path)?;
        // SAFETY: `Mmap::map`'s contract is that the underlying file is not
        // truncated or mutated in place while mapped. The artifact files
        // this crate writes are immutable once published — writers go
        // through temp-file + rename — so the mapping stays valid.
        #[allow(unsafe_code)]
        let map = Arc::new(unsafe { Mmap::map(&file)? });
        Self::parse(map)
    }

    fn parse(map: Arc<Mmap>) -> Result<AnnFile, FormatError> {
        let bytes: &[u8] = &map;
        if bytes.len() < HEADER_LEN + FOOTER_LEN {
            return Err(FormatError::Malformed("file shorter than header + footer".into()));
        }
        if &bytes[..8] != MAGIC {
            return Err(FormatError::Malformed("bad magic".into()));
        }
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(FormatError::Version(version));
        }
        let kind = read_u32(bytes, 12);
        let n_sections = read_u32(bytes, 16) as usize;

        let body_len = bytes.len() - FOOTER_LEN;
        let expected = read_u32(bytes, body_len);
        let sentinel = read_u32(bytes, body_len + 4);
        if sentinel != FOOTER_SENTINEL {
            return Err(FormatError::Malformed("bad footer sentinel (truncated file?)".into()));
        }
        let actual = crc32(&bytes[..body_len]);
        if actual != expected {
            return Err(FormatError::Checksum { expected, actual });
        }

        let mut sections = Vec::with_capacity(n_sections);
        let mut at = HEADER_LEN;
        for _ in 0..n_sections {
            if at + 16 > body_len {
                return Err(FormatError::Malformed("section header out of bounds".into()));
            }
            let name_len = read_u32(bytes, at) as usize;
            let stype = SectionType::from_code(read_u32(bytes, at + 4))
                .ok_or_else(|| FormatError::Malformed("unknown section type".into()))?;
            let count =
                u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("bounds checked"))
                    as usize;
            at += 16;
            if at + name_len > body_len {
                return Err(FormatError::Malformed("section name out of bounds".into()));
            }
            let name = std::str::from_utf8(&bytes[at..at + name_len])
                .map_err(|_| FormatError::Malformed("section name is not UTF-8".into()))?
                .to_owned();
            at = pad8_len(at + name_len);
            let payload_len = count
                .checked_mul(stype.elem_size())
                .ok_or_else(|| FormatError::Malformed("section size overflow".into()))?;
            if at + payload_len > body_len {
                return Err(FormatError::Malformed(format!("section `{name}` out of bounds")));
            }
            sections.push(SectionMeta { name, stype, offset: at, count });
            at = pad8_len(at + payload_len);
        }
        if at != body_len {
            return Err(FormatError::Malformed("trailing bytes after last section".into()));
        }
        Ok(AnnFile { map, kind, sections })
    }

    /// The artifact kind tag from the header.
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    fn find(&self, name: &str, stype: SectionType) -> Result<&SectionMeta, FormatError> {
        let s = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| FormatError::MissingSection(name.to_owned()))?;
        if s.stype != stype {
            return Err(FormatError::WrongType(name.to_owned()));
        }
        Ok(s)
    }

    /// A byte section, zero-copy from the map.
    pub fn u8s(&self, name: &str) -> Result<&[u8], FormatError> {
        let s = self.find(name, SectionType::U8)?;
        Ok(&self.map[s.offset..s.offset + s.count])
    }

    /// A `u32` section (decoded copy; these sections are small).
    pub fn u32s(&self, name: &str) -> Result<Vec<u32>, FormatError> {
        let s = self.find(name, SectionType::U32)?;
        Ok(view::decode_u32s(&self.map[s.offset..s.offset + s.count * 4]))
    }

    /// An `f32` section (decoded copy — use [`AnnFile::f32_table`] for the
    /// zero-copy path over large matrices).
    pub fn f32s(&self, name: &str) -> Result<Vec<f32>, FormatError> {
        let s = self.find(name, SectionType::F32)?;
        Ok(view::decode_f32s(&self.map[s.offset..s.offset + s.count * 4]))
    }

    /// A string-list section pair written by [`AnnFileWriter::put_strings`].
    pub fn strings(&self, name: &str) -> Result<Vec<String>, FormatError> {
        let offsets = self.u32s(&format!("{name}.offsets"))?;
        let bytes = self.u8s(&format!("{name}.bytes"))?;
        if offsets.first() != Some(&0) || offsets.last().map_or(0, |&o| o as usize) != bytes.len() {
            return Err(FormatError::Malformed(format!("string section `{name}` inconsistent")));
        }
        let mut out = Vec::with_capacity(offsets.len().saturating_sub(1));
        for w in offsets.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            if a > b || b > bytes.len() {
                return Err(FormatError::Malformed(format!(
                    "string section `{name}` range out of bounds"
                )));
            }
            let s = std::str::from_utf8(&bytes[a..b])
                .map_err(|_| FormatError::Malformed(format!("string in `{name}` not UTF-8")))?;
            out.push(s.to_owned());
        }
        Ok(out)
    }

    /// An `f32` section viewed as a `rows × dim` [`VectorTable`]. Serves
    /// zero-copy from the shared map whenever alignment and endianness
    /// allow (always, on the little-endian targets the writer runs on),
    /// falling back to an owned decode otherwise.
    pub fn f32_table(&self, name: &str, dim: usize) -> Result<VectorTable, FormatError> {
        let s = self.find(name, SectionType::F32)?;
        if dim == 0 || s.count % dim != 0 {
            return Err(FormatError::Malformed(format!(
                "section `{name}` ({} floats) is not a multiple of dim {dim}",
                s.count
            )));
        }
        let rows = s.count / dim;
        if let Some(table) = VectorTable::mapped(self.map.clone(), s.offset, rows, dim) {
            return Ok(table);
        }
        let flat = view::decode_f32s(&self.map[s.offset..s.offset + s.count * 4]);
        let rows_vec: Vec<Vec<f32>> = flat.chunks_exact(dim).map(<[f32]>::to_vec).collect();
        VectorTable::from_rows(dim, &rows_vec)
            .map_err(|e| FormatError::Malformed(format!("decoded table rejected: {e}")))
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked by caller"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::Vectors;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kgnet-ann-fmt-{}-{name}.ann", std::process::id()))
    }

    fn sample_file(path: &Path) {
        let mut w = AnnFileWriter::new(7);
        w.put_u32s("meta", &[3, 2, 1]);
        w.put_f32s("vectors", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        w.put_u8s("codes", &[9, 8, 7]);
        w.put_strings("keys", &["alpha".into(), "beta".into(), String::new()]);
        w.write_to(path).unwrap();
    }

    #[test]
    fn roundtrip_all_section_types() {
        let path = temp_path("roundtrip");
        sample_file(&path);
        let f = AnnFile::open(&path).unwrap();
        assert_eq!(f.kind(), 7);
        assert_eq!(f.u32s("meta").unwrap(), vec![3, 2, 1]);
        assert_eq!(f.f32s("vectors").unwrap(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(f.u8s("codes").unwrap(), &[9, 8, 7]);
        assert_eq!(f.strings("keys").unwrap(), vec!["alpha", "beta", ""]);
        let table = f.f32_table("vectors", 3).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.vector(1), &[4.0, 5.0, 6.0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_and_mistyped_sections_are_reported() {
        let path = temp_path("missing");
        sample_file(&path);
        let f = AnnFile::open(&path).unwrap();
        assert!(matches!(f.u32s("nope"), Err(FormatError::MissingSection(_))));
        assert!(matches!(f.f32s("codes"), Err(FormatError::WrongType(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = temp_path("trunc");
        sample_file(&path);
        let full = std::fs::read(&path).unwrap();
        for cut in [full.len() - 3, full.len() / 2, 10] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(AnnFile::open(&path).is_err(), "truncation at {cut} accepted");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_byte_is_rejected_by_checksum() {
        let path = temp_path("corrupt");
        sample_file(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match AnnFile::open(&path) {
            Err(FormatError::Checksum { .. }) | Err(FormatError::Malformed(_)) => {}
            other => panic!("corrupted file accepted: {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic test vector: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
