//! # kgnet-ann
//!
//! The vector-search subsystem of the KGNet platform: approximate
//! nearest-neighbour indexes over entity embeddings, and a binary columnar
//! persistence format with a memory-mapped zero-copy reader.
//!
//! The paper positions trained-model/embedding serving as a first-class
//! platform service next to SPARQL; this crate is the engine under that
//! service. It houses:
//!
//! - [`HnswIndex`] — a hierarchical navigable-small-world graph index
//!   (layered skip-list construction, `ef_construction` / `ef_search`
//!   tunables, deterministic level assignment from a seeded SplitMix64).
//! - [`PqIndex`] — product quantization: k-means-trained sub-codebooks,
//!   asymmetric distance computation with precomputed query-to-centroid
//!   tables, and an optional refine pass over the raw vectors.
//! - [`IvfIndex`] — the inverted-file coarse index (k-means cells plus
//!   posting lists), relocated here from the embedding store.
//! - [`format`] / [`file`] — a versioned, checksummed flat file format for
//!   embedding matrices and index structures, read back through a
//!   memory-mapped [`VectorTable`] so searches run straight off the page
//!   cache without JSON round-trips.
//!
//! All three indexes implement the common [`AnnIndex`] trait and search
//! any [`Vectors`] source. Index construction is data-parallel on the
//! vendored work-stealing pool: every parallel phase is a pure,
//! order-preserving map, so builds are bit-identical on any
//! `RAYON_NUM_THREADS` — the same guarantee `kgnet-linalg` kernels give.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod file;
pub mod format;
pub mod hnsw;
pub mod index;
pub mod ivf;
pub mod metric;
pub mod pq;
pub mod stats;
pub mod vectors;
mod view;

pub use file::{
    load_embedding_file, save_embedding_file, EmbeddingFileContents, EmbeddingFileView,
};
pub use format::{AnnFile, AnnFileWriter, FormatError, SectionType};
pub use hnsw::{HnswConfig, HnswIndex};
pub use index::{search_exact, search_exact_with_stats, AnnIndex, AnyIndex, SearchParams};
pub use ivf::IvfIndex;
pub use metric::Metric;
pub use pq::{PqConfig, PqIndex};
pub use stats::{CountingVectors, SearchStats};
pub use vectors::{VectorTable, Vectors};

/// Candidate count below which scoring loops stay sequential (scoring a
/// handful of vectors is cheaper than fork/join scheduling). Shared by
/// every index in this crate.
pub(crate) const PAR_MIN_CANDIDATES: usize = 2048;

/// Errors from the vector-search subsystem.
#[derive(Debug)]
pub enum AnnError {
    /// A vector's width does not match the store/index dimensionality.
    DimensionMismatch {
        /// The width the store was created with.
        expected: usize,
        /// The width of the offending vector.
        got: usize,
    },
    /// An I/O failure while persisting or loading.
    Io(std::io::Error),
    /// A malformed, truncated or corrupt persisted file.
    Format(FormatError),
}

impl std::fmt::Display for AnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnError::DimensionMismatch { expected, got } => {
                write!(f, "vector width mismatch: store holds {expected}-d vectors, got {got}-d")
            }
            AnnError::Io(e) => write!(f, "i/o error: {e}"),
            AnnError::Format(e) => write!(f, "persisted file error: {e}"),
        }
    }
}

impl std::error::Error for AnnError {}

impl From<std::io::Error> for AnnError {
    fn from(e: std::io::Error) -> Self {
        AnnError::Io(e)
    }
}

impl From<FormatError> for AnnError {
    fn from(e: FormatError) -> Self {
        AnnError::Format(e)
    }
}

/// One SplitMix64 finalisation step: the mixer behind every deterministic
/// per-item seed in this crate (HNSW level assignment, sub-codebook RNG
/// streams), chained the same way `kgnet_gml::par` derives batch seeds.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
