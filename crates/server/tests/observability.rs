//! End-to-end observability: a mixed read/write/train/ANN workload must
//! surface in the server's Prometheus exposition, the span ring, and the
//! per-query profiles.

use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gml::config::GnnConfig;
use kgnet_gmlaas::TrainRequest;
use kgnet_graph::{GmlTask, NcTask};
use kgnet_server::{JobState, KgServer, ServerConfig, METRIC_CATALOG, SLOW_LOG_CAPACITY};
use kgnet_sparqlml::ManagerConfig;

fn fast_server(seed: u64) -> KgServer {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(seed));
    let config = ServerConfig {
        manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
        ..Default::default()
    };
    KgServer::new(kg, config)
}

fn nc_request(name: &str) -> TrainRequest {
    let mut req = TrainRequest::new(
        name,
        GmlTask::NodeClassification(NcTask {
            target_type: "https://www.dblp.org/Publication".into(),
            label_predicate: "https://www.dblp.org/publishedIn".into(),
        }),
    );
    req.cfg = GnnConfig::fast_test();
    req
}

const PLAIN_QUERY: &str = "PREFIX dblp: <https://www.dblp.org/> \
     SELECT ?p ?t WHERE { ?p a dblp:Publication . ?p dblp:title ?t }";

/// The value of a plain `name value` sample line in a Prometheus text
/// exposition (not a `# HELP`/`# TYPE` header, not a labeled bucket).
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} not rendered"))
        .parse()
        .unwrap_or_else(|e| panic!("metric {name} not a u64: {e}"))
}

#[test]
fn mixed_workload_surfaces_in_prometheus_and_traces() {
    let server = fast_server(41);

    // Reads: same query twice — one plan-cache miss, then one hit.
    let mut session = server.read_session();
    let rows = session.sparql(PLAIN_QUERY).unwrap();
    assert!(!rows.is_empty());
    session.sparql(PLAIN_QUERY).unwrap();

    // Write: one committed insert.
    let mut writer = server.write_session();
    writer.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap();
    writer.commit();

    // Train: one completed job through the queue, plus a similarity model
    // trained synchronously so an ANN search has something to hit.
    let id = server.submit_train(nc_request("paper-venue")).unwrap();
    let done = server.wait(id).unwrap();
    assert!(matches!(done.state, JobState::Done { .. }), "job failed: {done:?}");

    let mut writer = server.write_session();
    writer
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'paper-sim', GML-Task:{ TaskType: kgnet:NodeSimilarity,
                    TargetNode: dblp:Publication}})}"#,
        )
        .unwrap();
    writer.commit();
    let (model_uri, probe) = {
        let manager = server.manager();
        let guard = manager.read();
        let uri = guard
            .trainer()
            .model_store()
            .uris()
            .into_iter()
            .find(|u| u.contains("sim"))
            .expect("similarity model registered");
        let artifact = guard.trainer().model_store().get(&uri).unwrap();
        let kgnet_gmlaas::ArtifactPayload::NodeSimilarity { store } = &artifact.payload else {
            panic!("expected a similarity payload")
        };
        let probe = store.keys().next().unwrap().to_owned();
        (uri, probe)
    };
    let hits = session.similar_nodes(&model_uri, &probe, 3).unwrap();
    assert!(!hits.is_empty());

    let text = server.metrics().render_prometheus();

    // The full catalog renders, each metric under its declared kind.
    for (name, kind) in METRIC_CATALOG {
        assert!(
            text.contains(&format!("# TYPE {name} {kind}\n")),
            "catalog metric {name} missing from exposition"
        );
    }

    // Query path: two plain SELECTs (one miss, one hit) plus whatever the
    // similarity probe recorded.
    assert!(metric_value(&text, "kgnet_query_latency_nanos_count") >= 2);
    assert!(metric_value(&text, "kgnet_query_rows_count") >= 2);
    assert!(metric_value(&text, "kgnet_query_triples_scanned_total") > 0);
    assert_eq!(metric_value(&text, "kgnet_plan_cache_hits_total"), 1);
    assert!(metric_value(&text, "kgnet_plan_cache_misses_total") >= 1);

    // Write path: two commits (insert + similarity model), live MVCC gauges.
    assert!(metric_value(&text, "kgnet_commit_latency_nanos_count") >= 2);
    assert!(metric_value(&text, "kgnet_store_generation") >= 2);
    assert!(metric_value(&text, "kgnet_retained_versions") >= 1);

    // Job path: one queued job completed, its epochs timed.
    assert!(metric_value(&text, "kgnet_jobs_submitted_total") >= 1);
    assert!(metric_value(&text, "kgnet_jobs_completed_total") >= 1);
    assert_eq!(metric_value(&text, "kgnet_jobs_failed_total"), 0);
    assert!(metric_value(&text, "kgnet_job_duration_nanos_count") >= 1);
    assert!(metric_value(&text, "kgnet_train_epoch_nanos_count") >= 1);

    // ANN path: the similarity search reported its cost.
    assert!(metric_value(&text, "kgnet_ann_search_latency_nanos_count") >= 1);
    assert!(metric_value(&text, "kgnet_ann_candidates_total") > 0);
    assert!(metric_value(&text, "kgnet_ann_distance_computations_total") > 0);

    // JSON render stays one well-formed object with the same catalog.
    let json = server.metrics().render_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"kgnet_query_latency_nanos\""));

    // The span ring saw the reads, the writes and the ANN search.
    let roots = server.trace_dump();
    let names: Vec<&str> = roots.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"read.query"), "spans: {names:?}");
    assert!(names.contains(&"write.commit"), "spans: {names:?}");
    assert!(names.contains(&"read.similar_nodes"), "spans: {names:?}");
    // Drained once: a second dump starts empty.
    assert!(server.trace_dump().is_empty());
}

#[test]
fn cancelled_and_rejected_jobs_are_counted() {
    let server = fast_server(57);
    let mut req = nc_request("marathon");
    req.cfg = GnnConfig { epochs: 200_000, dropout: 0.0, ..GnnConfig::fast_test() };
    let id = server.submit_train(req).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match server.job(id).map(|j| j.state) {
            Some(JobState::Running) => break,
            Some(JobState::Queued) => {
                assert!(std::time::Instant::now() < deadline, "job never started");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            other => panic!("job reached {other:?} before cancel"),
        }
    }
    assert!(server.cancel(id));
    assert_eq!(server.wait(id).unwrap().state, JobState::Cancelled);
    // Forgetting the record must not take the outcome off the books.
    assert!(server.forget(id));
    let text = server.metrics().render_prometheus();
    assert_eq!(metric_value(&text, "kgnet_jobs_submitted_total"), 1);
    assert_eq!(metric_value(&text, "kgnet_jobs_cancelled_total"), 1);
    assert_eq!(metric_value(&text, "kgnet_jobs_completed_total"), 0);
    assert_eq!(metric_value(&text, "kgnet_queue_depth"), 0);
}

#[test]
fn profiled_query_matches_plain_and_sums_to_its_root() {
    let server = fast_server(43);
    let mut session = server.read_session();
    let q = "PREFIX dblp: <https://www.dblp.org/> \
             SELECT ?p ?t ?v WHERE { ?p a dblp:Publication . ?p dblp:title ?t . \
             OPTIONAL { ?p dblp:publishedIn ?v } }";
    let plain = session.sparql(q).unwrap();
    let (rows, profile) = session.query_profiled(q).unwrap();
    assert_eq!(rows, plain, "profiling must not change results");
    // Cache behaviour matches query(): the profiled run hit the plan the
    // plain run compiled.
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    assert_eq!(profile.name, "query");
    assert_eq!(profile.rows, rows.len() as u64);
    assert!(!profile.children.is_empty(), "no operator children: {}", profile.render());
    // Children carry *self* times: they sum exactly to the end-to-end span.
    assert_eq!(
        profile.child_nanos(),
        profile.nanos,
        "operator self-times must account for the whole query: {}",
        profile.render()
    );
    assert_eq!(profile.self_nanos(), 0);
    let labels: Vec<&str> = profile.children.iter().map(|c| c.name.as_str()).collect();
    assert!(labels.iter().filter(|l| l.starts_with("scan ")).count() >= 2, "labels: {labels:?}");
    assert!(labels.contains(&"optional"), "labels: {labels:?}");
    assert_eq!(*labels.last().unwrap(), "project");

    // The profiled latency landed in the histograms too.
    let text = server.metrics().render_prometheus();
    assert!(metric_value(&text, "kgnet_query_latency_nanos_count") >= 2);
}

#[test]
fn profiled_subselect_query_sums_to_its_root() {
    // A sub-SELECT materialises its inner rows before the outer pipeline
    // joins them — the costliest shape the profiler covers, so pin that
    // its tap nests like every other operator and self-times still sum
    // exactly to the root.
    let server = fast_server(47);
    let mut session = server.read_session();
    let q = "PREFIX dblp: <https://www.dblp.org/> \
             SELECT ?p ?t WHERE { ?p dblp:title ?t . \
             { SELECT ?p WHERE { ?p a dblp:Publication } } }";
    let plain = session.sparql(q).unwrap();
    let (rows, profile) = session.query_profiled(q).unwrap();
    assert_eq!(rows, plain, "profiling must not change results");
    assert!(!rows.is_empty());

    assert_eq!(profile.name, "query");
    assert_eq!(
        profile.child_nanos(),
        profile.nanos,
        "operator self-times must account for the whole query: {}",
        profile.render()
    );
    let labels: Vec<&str> = profile.children.iter().map(|c| c.name.as_str()).collect();
    assert!(labels.contains(&"subselect join"), "labels: {labels:?}");
    assert_eq!(*labels.last().unwrap(), "project");
    // The subselect operator emitted the joined rows.
    let sub = profile.children.iter().find(|c| c.name == "subselect join").unwrap();
    assert_eq!(sub.rows, rows.len() as u64);
}

#[test]
fn slow_query_log_captures_plan_and_profile() {
    // 1 ms is the lowest configurable threshold; whether one execution of
    // the quadratic scan crosses it depends on the machine, so retry a
    // bounded number of times until one lands in the log, then assert the
    // captured record's contents exactly.
    let (kg, _) = generate_dblp(&DblpConfig::tiny(41));
    let config = ServerConfig {
        manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
        slow_query_millis: 1,
        ..Default::default()
    };
    let server = KgServer::new(kg, config);
    let mut session = server.read_session();
    // A cross-product-ish query with a sub-select: heavy enough to cross
    // 1 ms on any machine within a few attempts.
    let q = "PREFIX dblp: <https://www.dblp.org/> \
             SELECT ?p ?t ?q WHERE { ?p dblp:title ?t . ?q a dblp:Publication . \
             { SELECT ?p WHERE { ?p a dblp:Publication } } }";
    let mut captured = false;
    for _ in 0..50 {
        session.query_profiled(q).unwrap();
        if !server.slow_queries().is_empty() {
            captured = true;
            break;
        }
    }
    assert!(captured, "a quadratic scan never crossed the 1 ms slow threshold");

    let slow = server.slow_queries();
    assert!(slow.len() <= SLOW_LOG_CAPACITY);
    let entry = slow.last().unwrap();
    assert_eq!(entry.text, q);
    assert!(entry.total_nanos >= 1_000_000, "below threshold: {}", entry.total_nanos);
    assert!(entry.rows > 0);
    assert!(entry.triples_scanned > 0);
    // The captured plan is the rendered execution plan, not a placeholder.
    assert!(entry.plan.contains("subselect join"), "plan: {}", entry.plan);
    assert!(entry.plan.contains("project"), "plan: {}", entry.plan);
    // Profiled runs capture the full operator tree.
    assert_eq!(entry.profile.name, "query");
    assert!(!entry.profile.children.is_empty());
    // The slow-query counter matches the log.
    let text = server.metrics().render_prometheus();
    assert!(metric_value(&text, "kgnet_slow_queries_total") >= slow.len() as u64);

    // Session totals accumulated across the runs.
    let stats = session.session_stats();
    assert!(stats.queries >= 1);
    assert!(stats.rows >= entry.rows);
    assert!(stats.triples_scanned >= entry.triples_scanned);
}

#[test]
fn debug_report_renders_every_section() {
    let server = fast_server(53);
    let mut session = server.read_session();
    session.sparql(PLAIN_QUERY).unwrap();
    let id = server.submit_train(nc_request("reported")).unwrap();
    let done = server.wait(id).unwrap();
    assert!(matches!(done.state, JobState::Done { .. }), "job failed: {done:?}");
    let usage = done.usage.expect("finished job carries usage");
    assert!(usage.triples_sampled > 0, "runner reports sampled triples");
    assert!(usage.epochs > 0, "runner reports completed epochs");
    assert!(usage.wall_nanos > 0);
    assert!(
        usage.busy_nanos <= usage.wall_nanos.saturating_mul(usage.pool_threads),
        "busy {} > wall {} x threads {}",
        usage.busy_nanos,
        usage.wall_nanos,
        usage.pool_threads
    );

    let report = server.debug_report();
    for section in [
        "== KGNet server debug report ==",
        "-- lock sites",
        "-- thread pools",
        "-- slow queries",
        "-- training jobs",
        "-- metrics",
    ] {
        assert!(report.contains(section), "missing section {section:?} in:\n{report}");
    }
    // The job and its usage line render.
    assert!(report.contains("reported"), "job name missing:\n{report}");
    assert!(report.contains("triples sampled"), "usage line missing:\n{report}");
    // Lock sites seen by this workload are listed with their counts.
    assert!(report.contains("server.queue_state"), "queue-state site missing:\n{report}");

    // And the per-site gauges surface in the exposition after refresh.
    let text = server.metrics().render_prometheus();
    assert!(metric_value(&text, "kgnet_lock_site_server_queue_state_acquires") > 0);
    assert!(metric_value(&text, "kgnet_lock_acquires_total") > 0);
    assert!(metric_value(&text, "kgnet_pool_global_threads") >= 1);
    assert!(metric_value(&text, "kgnet_job_epochs_total") >= usage.epochs);
    assert!(metric_value(&text, "kgnet_job_triples_sampled_total") >= usage.triples_sampled);
}
