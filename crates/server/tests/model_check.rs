//! Deterministic model-check suites for the serving layer: the training
//! queue's cancel-vs-complete race and the shared plan cache under a
//! concurrent generation bump.
//!
//! Compiled only under `--cfg kgnet_check`: the `kgnet-sync` facade then
//! routes every lock and atomic inside [`QueueState`]'s mutex and
//! [`SharedPlanCache`] to the `kgnet-check` scheduler, so these tests
//! drive the *production* transition logic (`QueueState::cancel` /
//! `QueueState::finish` are exactly what `JobQueue` and its workers call)
//! through every bounded-preemption interleaving plus seeded random
//! walks. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg kgnet_check" cargo test -p kgnet-server --test model_check
//! ```

#![cfg(kgnet_check)]

use std::sync::Arc;

use kgnet_check::{explore, Config, Report};
use kgnet_rdf::{RdfStore, SharedStore, Term};
use kgnet_server::cache::SharedPlanCache;
use kgnet_server::queue::{JobState, QueueState};
use kgnet_sync::atomic::Ordering;
use kgnet_sync::{thread, Mutex};

const CAP: usize = 8;

/// Wider budgets than the library default — these scenarios run in tens of
/// microseconds per schedule. `KGNET_CHECK_*` env caps still override.
fn cfg() -> Config {
    Config {
        preemption_bound: Some(3),
        max_schedules: 20_000,
        random_iters: 20_000,
        ..Config::default()
    }
}

fn assert_coverage(suite: &str, reports: &[Report], floor: usize) {
    let distinct: usize = reports.iter().map(|r| r.distinct_schedules).sum();
    let runs: usize = reports.iter().map(|r| r.schedules).sum();
    println!("model-check[{suite}]: {runs} schedules run, {distinct} distinct");
    let capped = std::env::var_os("KGNET_CHECK_MAX_SCHEDULES").is_some()
        || std::env::var_os("KGNET_CHECK_RANDOM_ITERS").is_some();
    if !capped {
        assert!(distinct >= floor, "{suite}: only {distinct} distinct schedules (floor {floor})");
    }
}

/// Cancel racing a worker's completion on a **running** job: the terminal
/// state is written exactly once (`finish` is a no-op on terminal jobs),
/// the job ends `Done` either way (a running job cancels cooperatively),
/// and the cooperative-stop flag is raised iff the cancel was delivered.
#[test]
fn cancel_vs_complete_on_running_job_is_exactly_once() {
    let report = explore(&cfg(), || {
        let q = Arc::new(Mutex::new(QueueState::default()));
        let flag = {
            let mut st = q.lock();
            let flag = st.register(7, "train-job");
            st.mark_running(7);
            flag
        };

        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.lock().finish(7, JobState::Done { model_uri: "kgnet:m7".into() }, CAP);
            })
        };
        let delivered = q.lock().cancel(7, CAP);
        worker.join().unwrap();

        let st = q.lock();
        let state = st.state_of(7).expect("job lost");
        assert!(state.is_terminal(), "job left non-terminal: {state:?}");
        assert_eq!(st.terminal_count(), 1, "terminal transition recorded twice");
        // A running job is never yanked out from under its worker: the
        // worker's completion stands whether or not the cancel landed.
        assert_eq!(state, JobState::Done { model_uri: "kgnet:m7".into() });
        assert_eq!(
            flag.load(Ordering::SeqCst),
            delivered,
            "stop flag disagrees with the cancel's reported delivery"
        );
    });
    // The race is two one-lock critical sections: its schedule space is
    // tiny, so demand *complete* enumeration rather than a big count.
    assert!(report.dfs_exhausted, "bounded tree must be fully enumerated");
    assert_coverage("server/cancel-vs-complete-running", &[report], 6);
}

/// Cancel racing completion on a **queued** job: here cancel itself writes
/// the terminal state, so the two sides genuinely race to finish the job —
/// exactly one wins, and the winner matches the reported delivery.
#[test]
fn cancel_vs_complete_on_queued_job_single_winner() {
    let report = explore(&cfg(), || {
        let q = Arc::new(Mutex::new(QueueState::default()));
        {
            q.lock().register(9, "queued-job");
        }

        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.lock().finish(9, JobState::Failed { error: "boom".into() }, CAP);
            })
        };
        let delivered = q.lock().cancel(9, CAP);
        worker.join().unwrap();

        let st = q.lock();
        let state = st.state_of(9).expect("job lost");
        assert_eq!(st.terminal_count(), 1, "terminal transition recorded twice");
        match state {
            JobState::Cancelled => {
                assert!(delivered, "job ended Cancelled but cancel reported undelivered")
            }
            JobState::Failed { .. } => {
                assert!(!delivered, "job ended Failed but cancel reported delivered")
            }
            other => panic!("queued job ended in impossible state {other:?}"),
        }
    });
    assert!(report.dfs_exhausted, "bounded tree must be fully enumerated");
    assert_coverage("server/cancel-vs-complete-queued", &[report], 6);
}

fn seed_store() -> RdfStore {
    let mut st = RdfStore::new();
    st.insert(
        Term::iri("http://kgnet/s0".to_owned()),
        Term::iri("http://kgnet/p".to_owned()),
        Term::iri("http://kgnet/o0".to_owned()),
    );
    st
}

/// Plan-cache lookups race a writer's generation bump: a plan is only ever
/// served for the generation it was planned against, and the pinned
/// snapshot it was planned on stays frozen throughout.
#[test]
fn plan_cache_never_serves_stale_generation() {
    const TEXT: &str = "SELECT ?s WHERE { ?s <http://kgnet/p> ?o }";
    let report = explore(&cfg(), || {
        let store = SharedStore::new(seed_store());
        let cache = Arc::new(SharedPlanCache::new(64));
        let writer = {
            let store = store.clone();
            thread::spawn(move || {
                let mut txn = store.begin();
                txn.store_mut().insert(
                    Term::iri("http://kgnet/s1".to_owned()),
                    Term::iri("http://kgnet/p".to_owned()),
                    Term::iri("http://kgnet/o1".to_owned()),
                );
                txn.commit()
            })
        };

        let snap = store.snapshot();
        let gen = snap.generation();
        assert!(cache.get(gen, TEXT).is_none(), "cold cache produced a plan");

        let parsed = kgnet_rdf::sparql::parse_select(TEXT).expect("query parses");
        let prepared = cache.prepare_insert(&snap, TEXT, parsed).expect("plans on snapshot");
        let hit = cache.get(gen, TEXT).expect("plan for the pinned generation was dropped");
        assert!(Arc::ptr_eq(&prepared, &hit), "hit returned a different plan");

        let committed = writer.join().unwrap();
        if gen == committed {
            // The pin landed after the commit: the plan was prepared
            // against the committed version and serving it is correct.
            assert_eq!(snap.len(), 2);
        } else {
            // The pin predates the commit: the committed generation must
            // miss (no stale plan), and the pin stays frozen pre-commit.
            assert!(
                cache.get(committed, TEXT).is_none(),
                "plan prepared against generation {gen} served for generation {committed}"
            );
            assert_eq!(snap.len(), 1, "pinned snapshot observed the concurrent commit");
        }
    });
    assert_coverage("server/plan-cache-vs-bump", &[report], 1_000);
}
