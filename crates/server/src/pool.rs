//! A bounded pool of reusable [`ReadSession`]s for request-per-thread
//! frontends.
//!
//! Opening a [`ReadSession`] is cheap but not free (a snapshot pin, an
//! atomics round on the version list), and a per-request session also
//! starts with cold per-session cache counters. The HTTP frontend serves
//! every `POST /sparql` from a pooled session instead: [`checkout`]
//! pops an idle session (re-pinning it onto the latest published version
//! when the store has moved on) or opens a fresh one when the pool is
//! empty, and the [`PooledSession`] guard returns it on drop unless the
//! pool is already at capacity — so a burst of N concurrent requests
//! settles back to at most `capacity` retained sessions.
//!
//! [`checkout`]: SessionPool::checkout

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use kgnet_sync::profile::SyncSite;
use kgnet_sync::tracked::lock_tracked;
use kgnet_sync::Mutex;

use crate::session::ReadSession;
use crate::KgServer;

/// Contention site for the pool's free list (every HTTP request thread
/// passes through this lock twice: checkout and return).
static POOL_SITE: SyncSite = SyncSite::new("server.session_pool");

/// A bounded free list of idle [`ReadSession`]s over one [`KgServer`].
pub struct SessionPool {
    server: Arc<KgServer>,
    idle: Mutex<Vec<ReadSession>>,
    capacity: usize,
}

impl SessionPool {
    /// New pool retaining at most `capacity` idle sessions (a capacity of
    /// 0 disables reuse: every checkout opens and every return drops).
    pub fn new(server: Arc<KgServer>, capacity: usize) -> SessionPool {
        SessionPool { server, idle: Mutex::new(Vec::new()), capacity }
    }

    /// Pop an idle session — re-pinned onto the latest published store
    /// version if it was pinned to an older one — or open a fresh session
    /// when the pool is empty. The guard returns the session on drop.
    pub fn checkout(&self) -> PooledSession<'_> {
        let mut session = lock_tracked(&self.idle, &POOL_SITE)
            .pop()
            .unwrap_or_else(|| self.server.read_session());
        if session.generation() != self.server.store().generation() {
            session.refresh();
        }
        PooledSession { pool: self, session: Some(session) }
    }

    /// Idle sessions currently retained.
    pub fn idle_len(&self) -> usize {
        lock_tracked(&self.idle, &POOL_SITE).len()
    }

    /// Maximum idle sessions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn put_back(&self, session: ReadSession) {
        let mut idle = lock_tracked(&self.idle, &POOL_SITE);
        if idle.len() < self.capacity {
            idle.push(session);
        }
    }
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("capacity", &self.capacity)
            .field("idle", &self.idle_len())
            .finish_non_exhaustive()
    }
}

/// RAII checkout of a pooled [`ReadSession`]: derefs to the session and
/// returns it to the pool on drop (dropped instead when the pool is at
/// capacity).
pub struct PooledSession<'a> {
    pool: &'a SessionPool,
    session: Option<ReadSession>,
}

impl Deref for PooledSession<'_> {
    type Target = ReadSession;

    fn deref(&self) -> &ReadSession {
        self.session.as_ref().expect("session present until drop")
    }
}

impl DerefMut for PooledSession<'_> {
    fn deref_mut(&mut self) -> &mut ReadSession {
        self.session.as_mut().expect("session present until drop")
    }
}

impl Drop for PooledSession<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.pool.put_back(session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use kgnet_datagen::{generate_dblp, DblpConfig};

    fn tiny_server() -> Arc<KgServer> {
        let (kg, _) = generate_dblp(&DblpConfig::tiny(91));
        Arc::new(KgServer::new(kg, ServerConfig::default()))
    }

    #[test]
    fn checkout_reuses_and_capacity_bounds_retention() {
        let server = tiny_server();
        let pool = SessionPool::new(Arc::clone(&server), 2);
        assert_eq!(pool.idle_len(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            let _c = pool.checkout();
        }
        // Three concurrent checkouts, but only `capacity` survive return.
        assert_eq!(pool.idle_len(), 2);
        {
            let _a = pool.checkout();
            assert_eq!(pool.idle_len(), 1, "checkout must pop the free list");
        }
        assert_eq!(pool.idle_len(), 2);
    }

    #[test]
    fn stale_sessions_are_refreshed_on_checkout() {
        let server = tiny_server();
        let pool = SessionPool::new(Arc::clone(&server), 4);
        let pinned = { pool.checkout().generation() };
        let mut writer = server.write_session();
        writer.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap();
        let published = writer.commit();
        assert!(published > pinned);
        let session = pool.checkout();
        assert_eq!(session.generation(), published, "pooled session must re-pin");
    }

    #[test]
    fn zero_capacity_disables_reuse() {
        let server = tiny_server();
        let pool = SessionPool::new(server, 0);
        drop(pool.checkout());
        assert_eq!(pool.idle_len(), 0);
    }
}
