//! The one-stop human-readable debug report behind
//! [`KgServer::debug_report`](crate::KgServer::debug_report).
//!
//! Everything the individual observability surfaces expose — metric
//! totals, per-site lock contention, pool utilization, the slow-query log,
//! per-job resource usage — rendered into a single plain-text document for
//! bug reports and terminals. Nothing here is machine-parsed; the stable
//! interfaces are the metric catalog and the typed accessors.

use std::fmt::Write as _;

use crate::{JobState, KgServer};

/// Nanoseconds rendered as fractional milliseconds.
fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

pub(crate) fn render(server: &KgServer) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== KGNet server debug report ==");

    // -- Lock contention, hottest sites first -------------------------------
    let mut sites = kgnet_sync::sites::all();
    sites.sort_by(|a, b| b.wait_nanos.cmp(&a.wait_nanos).then(b.acquires.cmp(&a.acquires)));
    let _ = writeln!(out, "\n-- lock sites (top {} by wait time) --", sites.len().min(10));
    for site in sites.iter().take(10) {
        let pct = if site.acquires == 0 {
            0.0
        } else {
            100.0 * site.contended as f64 / site.acquires as f64
        };
        let _ = writeln!(
            out,
            "{:<28} acquires {:>10}  contended {:>8} ({pct:>5.1}%)  waited {:>10.3} ms",
            site.name,
            site.acquires,
            site.contended,
            ms(site.wait_nanos),
        );
    }

    // -- Thread pools -------------------------------------------------------
    let global = rayon::global_pool_stats();
    let _ = writeln!(out, "\n-- thread pools --");
    let _ = writeln!(
        out,
        "global  : {} threads, {} jobs, {} steals, utilization {:.1}%, queue depth {}",
        global.n_threads,
        global.jobs_executed,
        global.steals,
        100.0 * global.utilization(),
        global.injector_depth + global.deque_depth,
    );
    let queue_obs = server.metrics.queue_obs();
    let _ = writeln!(
        out,
        "training: {} pool jobs, {} steals, {:.3} ms busy across finished jobs",
        queue_obs.train_pool_jobs.get(),
        queue_obs.train_pool_steals.get(),
        ms(queue_obs.train_pool_busy_nanos.get()),
    );

    // -- Slow queries -------------------------------------------------------
    let slow = server.slow_log().snapshot();
    let _ = writeln!(
        out,
        "\n-- slow queries ({} retained, threshold {:.1} ms) --",
        slow.len(),
        ms(server.slow_log().threshold_nanos()),
    );
    for (i, q) in slow.iter().enumerate() {
        let first_line = q.text.lines().map(str::trim).find(|l| !l.is_empty()).unwrap_or("");
        let _ = writeln!(
            out,
            "[{i}] {:.3} ms, {} rows, {} triples scanned: {first_line}",
            ms(q.total_nanos),
            q.rows,
            q.triples_scanned,
        );
        for line in q.plan.lines() {
            let _ = writeln!(out, "      plan| {line}");
        }
        for line in q.profile.render().lines() {
            let _ = writeln!(out, "      span| {line}");
        }
    }

    // -- Jobs ---------------------------------------------------------------
    let jobs = server.jobs();
    let _ = writeln!(out, "\n-- training jobs ({} on record) --", jobs.len());
    for job in &jobs {
        let state = match &job.state {
            JobState::Queued => "queued".to_owned(),
            JobState::Running => "running".to_owned(),
            JobState::Done { model_uri } => format!("done ({model_uri})"),
            JobState::Failed { error } => format!("failed ({error})"),
            JobState::Cancelled => "cancelled".to_owned(),
        };
        let _ = writeln!(out, "#{} {:<20} {state}", job.id, job.name);
        if let Some(u) = &job.usage {
            let _ = writeln!(
                out,
                "      wall {:.3} ms, pool busy {:.3} ms on {} threads, {} epochs, \
                 {} triples sampled, peak mem +{} B, lock wait {:.3} ms",
                ms(u.wall_nanos),
                ms(u.busy_nanos),
                u.pool_threads,
                u.epochs,
                u.triples_sampled,
                u.peak_mem_delta_bytes,
                ms(u.lock_wait_nanos),
            );
        }
    }

    // -- Full metric dump ---------------------------------------------------
    let registry = server.metrics.registry();
    let _ = writeln!(out, "\n-- metrics ({} registered) --", registry.names().len());
    let _ = writeln!(out, "{}", server.metrics.render_json());
    out
}
