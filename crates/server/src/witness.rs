//! Debug-build witness for the crate's fixed lock order: *writer gate
//! first, query manager second* (see the module docs of [`crate::session`]).
//!
//! The compiler cannot see this ordering — the writer gate lives inside
//! `kgnet_rdf::SharedStore` and the manager lock is an ordinary `RwLock` —
//! so every in-crate manager acquisition goes through [`read`]/[`write`],
//! which keep a thread-local count of live manager guards, and every
//! writer-gate acquisition site calls [`assert_manager_not_held`] first.
//! Acquiring the gate while this thread holds a manager guard is exactly
//! the AB–BA half that could deadlock against a training job (gate →
//! manager), and trips a `debug_assert` panic in tests; release builds pay
//! only the thread-local counter bumps.

use std::cell::Cell;
use std::ops::{Deref, DerefMut};

use kgnet_sync::profile::SyncSite;
use kgnet_sync::tracked::{read_tracked, write_tracked};
use kgnet_sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Contention profile of shared manager acquisitions (queries, KGMeta
/// reads, artifact lookups).
static MANAGER_READ_SITE: SyncSite = SyncSite::new("server.manager.read");
/// Contention profile of exclusive manager acquisitions (updates,
/// training-job commits).
static MANAGER_WRITE_SITE: SyncSite = SyncSite::new("server.manager.write");

thread_local! {
    /// Live manager guards held by this thread (read or write).
    static MANAGER_GUARDS: Cell<usize> = const { Cell::new(0) };
}

/// Panics (debug builds) when this thread already holds a manager guard:
/// acquiring the writer gate now would invert the fixed lock order.
pub(crate) fn assert_manager_not_held(op: &str) {
    debug_assert_eq!(
        MANAGER_GUARDS.with(Cell::get),
        0,
        "lock-order violation: {op} acquires the writer gate while this thread holds a \
         query-manager guard (fixed order: writer gate first, manager second)"
    );
}

/// RAII bump of the thread's manager-guard count.
struct ManagerToken;

impl ManagerToken {
    fn acquire() -> Self {
        MANAGER_GUARDS.with(|c| c.set(c.get() + 1));
        ManagerToken
    }
}

impl Drop for ManagerToken {
    fn drop(&mut self) {
        MANAGER_GUARDS.with(|c| c.set(c.get() - 1));
    }
}

/// A witnessed shared manager guard.
pub(crate) struct ManagerRead<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _token: ManagerToken,
}

impl<T> Deref for ManagerRead<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

/// A witnessed exclusive manager guard.
pub(crate) struct ManagerWrite<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _token: ManagerToken,
}

impl<T> Deref for ManagerWrite<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for ManagerWrite<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Acquire the manager read lock, recording the hold on this thread and
/// the acquisition (with wait time when contended) at its lock site.
pub(crate) fn read<T>(lock: &RwLock<T>) -> ManagerRead<'_, T> {
    let guard = read_tracked(lock, &MANAGER_READ_SITE);
    ManagerRead { guard, _token: ManagerToken::acquire() }
}

/// Acquire the manager write lock, recording the hold on this thread and
/// the acquisition (with wait time when contended) at its lock site.
pub(crate) fn write<T>(lock: &RwLock<T>) -> ManagerWrite<'_, T> {
    let guard = write_tracked(lock, &MANAGER_WRITE_SITE);
    ManagerWrite { guard, _token: ManagerToken::acquire() }
}
