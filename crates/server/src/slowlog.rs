//! The server's bounded slow-query log.
//!
//! Every SELECT a [`ReadSession`](crate::ReadSession) executes is timed
//! anyway (for the latency histogram); when one crosses the configured
//! threshold the session captures a [`SlowQuery`] record — the query text,
//! the *rendered plan it actually ran* (via
//! [`PreparedQuery::explain`](kgnet_rdf::PreparedQuery)), and a span
//! profile — into a fixed-capacity ring on the server. The ring keeps the
//! newest [`SLOW_LOG_CAPACITY`] offenders and drops the oldest, so a
//! long-running server's postmortem buffer never grows; capturing is a
//! short mutex hold on an already-slow path, so the fast path (queries
//! under threshold) pays only the comparison.

use std::collections::VecDeque;

use kgnet_sync::profile::SyncSite;
use kgnet_sync::tracked::lock_tracked;
use kgnet_sync::Mutex;

use kgnet_obs::SpanNode;

/// Records retained in the ring; the oldest is dropped when a new offender
/// arrives at capacity.
pub const SLOW_LOG_CAPACITY: usize = 32;

/// Contention profile of the slow-log ring. Only above-threshold queries
/// touch it, so sustained contention here means the threshold is too low
/// (or the workload is genuinely pathological).
static SLOW_LOG_SITE: SyncSite = SyncSite::new("server.slow_log");

/// One query that crossed the slow threshold, captured with everything a
/// postmortem needs: what ran, how long, how much it touched, and the plan
/// the optimizer actually chose against the session's snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQuery {
    /// The SPARQL text as submitted.
    pub text: String,
    /// End-to-end latency of the execution.
    pub total_nanos: u64,
    /// Result rows returned.
    pub rows: u64,
    /// Triples scanned while evaluating.
    pub triples_scanned: u64,
    /// The rendered execution plan (operators in execution order, with
    /// cardinality estimates and pushed filters).
    pub plan: String,
    /// The span profile of the execution: the full operator tree when the
    /// query ran under `query_profiled`, a single root span otherwise.
    pub profile: SpanNode,
}

/// The fixed-capacity ring of recent [`SlowQuery`] records.
pub(crate) struct SlowQueryLog {
    threshold_nanos: u64,
    ring: Mutex<VecDeque<SlowQuery>>,
}

impl SlowQueryLog {
    /// A log capturing queries at or above `threshold_nanos`.
    pub(crate) fn new(threshold_nanos: u64) -> Self {
        SlowQueryLog { threshold_nanos, ring: Mutex::new(VecDeque::new()) }
    }

    /// The capture threshold, for the comparison on the query path.
    pub(crate) fn threshold_nanos(&self) -> u64 {
        self.threshold_nanos
    }

    /// Append a record, dropping the oldest at capacity.
    pub(crate) fn record(&self, entry: SlowQuery) {
        let mut ring = lock_tracked(&self.ring, &SLOW_LOG_SITE);
        if ring.len() >= SLOW_LOG_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// The retained records, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<SlowQuery> {
        lock_tracked(&self.ring, &SLOW_LOG_SITE).iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u64) -> SlowQuery {
        SlowQuery {
            text: format!("SELECT ?s WHERE {{ ?s ?p {tag} }}"),
            total_nanos: tag * 1_000_000,
            rows: tag,
            triples_scanned: tag * 10,
            plan: format!("scan #{tag}"),
            profile: SpanNode::new("query", tag * 1_000_000, tag),
        }
    }

    #[test]
    fn ring_keeps_newest_records_oldest_first() {
        let log = SlowQueryLog::new(1_000_000);
        assert_eq!(log.threshold_nanos(), 1_000_000);
        for tag in 0..(SLOW_LOG_CAPACITY as u64 + 3) {
            log.record(entry(tag));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), SLOW_LOG_CAPACITY);
        // 0, 1, 2 were evicted; the survivors are in arrival order.
        assert_eq!(snap.first().unwrap().rows, 3);
        assert_eq!(snap.last().unwrap().rows, SLOW_LOG_CAPACITY as u64 + 2);
    }
}
