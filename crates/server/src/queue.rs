//! The admission-controlled training job queue.
//!
//! `TrainGML` requests submitted to a server do not train inline: they are
//! admitted against a configurable resource envelope (reusing the
//! [`TaskBudget`] machinery of `kgnet-gmlaas`), queued, and executed by a
//! fixed set of worker threads — each with its *own* dedicated rayon
//! [`ThreadPool`](rayon::ThreadPool) — so training parallelism can never
//! starve the query threads or the global pool. Jobs move through an
//! explicit lifecycle:
//!
//! ```text
//!            submit                    worker picks up
//!   (admission checks) ──► Queued ───────────────────► Running
//!                             │                           │
//!                             │ cancel                    ├─► Done { model_uri }
//!                             ▼                           ├─► Failed { error }
//!                         Cancelled ◄─────────────────────┘ (cancel observed
//!                                                            before commit, or
//!                                                            a panicking job)
//! ```
//!
//! Transitions are the only ones drawn: a terminal state (`Done`, `Failed`,
//! `Cancelled`) never changes again, and cancelling a `Running` job is
//! best-effort — `cancel` returning `true` only means the flag was
//! delivered while the job was still live; if the runner is already past
//! its last checkpoint the job still finishes `Done` with its model
//! registered, so only the terminal state reported by `status`/`wait` is
//! authoritative. Cancelling an already-terminal job returns `false`. The
//! two-thread interleaving tests below pin both orders of the
//! cancel/complete race.
//!
//! Terminal records are kept for status polling but not forever: the queue
//! retains at most [`QueueConfig::max_terminal_retained`] of them (oldest
//! pruned first), and [`JobQueue::forget`] drops one eagerly once its
//! outcome has been observed, so the job-history map stays bounded on a
//! long-running server.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use kgnet_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use kgnet_sync::profile::SyncSite;
use kgnet_sync::thread::JoinHandle;
use kgnet_sync::tracked::lock_tracked;
use kgnet_sync::{Arc, Condvar, Mutex, MutexGuard};

use kgnet_gml::EpochObserver;
use kgnet_gmlaas::{TaskBudget, TrainRequest};
use kgnet_linalg::memtrack::MemScope;

use crate::metrics::QueueObs;

/// Contention profile of the queue-state mutex: submissions, status polls,
/// cancellations and worker pickups all serialise on it.
static QUEUE_STATE_SITE: SyncSite = SyncSite::new("server.queue_state");

/// Identifier of one submitted job, unique within a queue.
pub type JobId = u64;

/// Lifecycle state of a training job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and waiting for a worker.
    Queued,
    /// A worker is executing the job on its dedicated pool.
    Running,
    /// Training succeeded and the model was registered.
    Done {
        /// URI of the registered model.
        model_uri: String,
    },
    /// Training failed (or panicked); nothing was registered.
    Failed {
        /// Human-readable failure cause.
        error: String,
    },
    /// Cancelled before completion; nothing was registered.
    Cancelled,
}

impl JobState {
    /// True for `Done`, `Failed` and `Cancelled`.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// A snapshot of one job's identity and state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInfo {
    /// The job id handed out at submission.
    pub id: JobId,
    /// The model name from the originating request.
    pub name: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// What the job consumed while it ran. `None` until the worker finishes
    /// executing it (including for jobs cancelled before ever running).
    pub usage: Option<ResourceUsage>,
}

/// What one executed training job consumed, measured by the worker around
/// the runner invocation. All-integer so snapshots are `Copy` and exactly
/// comparable in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Wall-clock time from worker pickup to the runner returning.
    pub wall_nanos: u64,
    /// CPU time spent inside the job's dedicated pool (sum over its
    /// threads). The runner's own top-level execution runs inline on the
    /// worker thread, so `busy_nanos <= wall_nanos * pool_threads` holds by
    /// construction — only nested fan-out is pool work.
    pub busy_nanos: u64,
    /// Training epochs the runner completed (0 for non-training runners).
    pub epochs: u64,
    /// Triples materialised while sampling the task subgraph.
    pub triples_sampled: u64,
    /// Peak tracked-allocation growth during the job (exact when no other
    /// job runs concurrently; an upper-bound attribution otherwise, since
    /// the allocation tracker's peak is process-global).
    pub peak_mem_delta_bytes: u64,
    /// Time the worker thread spent blocked on contended facade locks
    /// while executing the job (the runner executes inline on this thread).
    pub lock_wait_nanos: u64,
    /// Threads in the job's dedicated training pool.
    pub pool_threads: u64,
    /// Work-stealing events inside the dedicated pool during the job.
    pub pool_steals: u64,
    /// Tasks the dedicated pool executed during the job (nested fan-out).
    pub pool_jobs: u64,
}

/// The worker-side accumulator a runner reports progress into: epochs via
/// its [`EpochObserver`] impl (compose with a latency timer through
/// [`kgnet_gml::PairObserver`]), sampled triples via
/// [`add_triples_sampled`](Self::add_triples_sampled). The worker folds the
/// totals into the job's [`ResourceUsage`] when the runner returns.
#[derive(Debug, Default)]
pub struct UsageProbe {
    epochs: AtomicU64,
    triples_sampled: AtomicU64,
}

impl UsageProbe {
    /// Credit `n` sampled triples to the job.
    pub fn add_triples_sampled(&self, n: u64) {
        self.triples_sampled.fetch_add(n, Ordering::SeqCst);
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::SeqCst)
    }

    /// Triples credited so far.
    pub fn triples_sampled(&self) -> u64 {
        self.triples_sampled.load(Ordering::SeqCst)
    }
}

impl EpochObserver for UsageProbe {
    fn epoch_completed(&self, _epoch: usize) {
        self.epochs.fetch_add(1, Ordering::SeqCst);
    }
}

/// Why a submission was refused at admission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The pending queue is at capacity.
    QueueFull {
        /// Jobs currently waiting.
        pending: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The request asks for more resources than the server envelope allows.
    BudgetExceedsEnvelope(String),
    /// The queue is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { pending, limit } => {
                write!(f, "training queue full: {pending} pending (limit {limit})")
            }
            AdmissionError::BudgetExceedsEnvelope(msg) => {
                write!(f, "budget exceeds server envelope: {msg}")
            }
            AdmissionError::ShuttingDown => write!(f, "training queue is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Sizing and admission policy of a [`JobQueue`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Worker threads, i.e. training jobs running concurrently.
    pub max_concurrent: usize,
    /// Cap on jobs waiting in the queue (running jobs excluded).
    pub max_pending: usize,
    /// Threads in each worker's dedicated training pool.
    pub training_threads: usize,
    /// Server-wide per-job resource envelope. A job requesting more memory
    /// or time than the envelope is rejected; a job requesting *less* keeps
    /// its own (tighter) budget; an unlimited request is clamped to the
    /// envelope.
    pub envelope: TaskBudget,
    /// Terminal (`Done`/`Failed`/`Cancelled`) job records retained for
    /// status polling (at least 1). The oldest are pruned beyond this cap
    /// so a long-running server's job history stays bounded; a pruned id
    /// becomes unknown to [`JobQueue::status`] and [`JobQueue::wait`].
    pub max_terminal_retained: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_concurrent: 2,
            max_pending: 64,
            training_threads: 2,
            envelope: TaskBudget::unlimited(),
            max_terminal_retained: 256,
        }
    }
}

/// What a runner reports for one executed job.
#[derive(Debug)]
pub enum JobOutcome {
    /// The model was trained and registered under this URI.
    Done(String),
    /// The runner observed the cancellation flag and committed nothing.
    Cancelled,
    /// Training failed; the error is surfaced in [`JobState::Failed`].
    Failed(String),
}

/// The function a worker invokes to execute one admitted request. The
/// [`AtomicBool`] is the job's cancellation flag: runners should check it at
/// phase boundaries (after sampling, before committing results) and report
/// [`JobOutcome::Cancelled`] instead of registering anything when it is set.
/// The [`UsageProbe`] is where the runner reports epoch and sampling
/// progress for per-job resource attribution; ignoring it is fine (the
/// corresponding usage fields just stay zero).
pub type JobRunner = dyn Fn(&TrainRequest, &AtomicBool, &UsageProbe) -> JobOutcome + Send + Sync;

struct QueuedJob {
    id: JobId,
    req: TrainRequest,
    cancel: Arc<AtomicBool>,
}

struct JobEntry {
    name: String,
    state: JobState,
    cancel: Arc<AtomicBool>,
    usage: Option<ResourceUsage>,
}

/// The lock-protected queue state machine. Public but `doc(hidden)`: the
/// deterministic-scheduler regression tests (`tests/server_concurrency.rs`
/// and the `model_check` suite) drive these transition methods directly so
/// the *production* cancel/complete logic is what gets model-checked. Not
/// part of the supported API.
#[doc(hidden)]
#[derive(Default)]
pub struct QueueState {
    pending: VecDeque<QueuedJob>,
    jobs: HashMap<JobId, JobEntry>,
    /// Ids in the order they reached a terminal state, oldest first; the
    /// pruning window for the bounded job history.
    terminal_order: VecDeque<JobId>,
    next_id: JobId,
    shutdown: bool,
    /// Metric handles, when the queue is observed. Terminal-outcome
    /// counters are bumped inside [`finish`](Self::finish) — the one
    /// idempotent transition point — so every job is counted exactly once
    /// no matter how the cancel/complete race interleaves, and pruning or
    /// forgetting a record never un-counts it.
    obs: Option<Arc<QueueObs>>,
}

#[doc(hidden)]
impl QueueState {
    /// Move `id` to a terminal `state` and prune the oldest terminal
    /// records beyond `cap` so the history map stays bounded. A no-op when
    /// the job is already terminal (a cancel can race the worker between
    /// popping a job and observing its flag, finishing it first) or its
    /// record is gone — re-finishing would rewrite a terminal state and
    /// double-count the id in the retention window.
    pub fn finish(&mut self, id: JobId, state: JobState, cap: usize) {
        debug_assert!(state.is_terminal());
        match self.jobs.get_mut(&id) {
            Some(entry) if !entry.state.is_terminal() => {
                if let Some(obs) = &self.obs {
                    match &state {
                        JobState::Done { .. } => obs.jobs_completed.inc(),
                        JobState::Failed { .. } => obs.jobs_failed.inc(),
                        JobState::Cancelled => obs.jobs_cancelled.inc(),
                        JobState::Queued | JobState::Running => {}
                    }
                }
                entry.state = state;
            }
            _ => return,
        }
        self.terminal_order.push_back(id);
        while self.terminal_order.len() > cap.max(1) {
            if let Some(old) = self.terminal_order.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }

    /// The cancellation transition behind [`JobQueue::cancel`], factored
    /// onto the state machine so scheduler tests can drive it under a lock
    /// they control. Semantics documented on [`JobQueue::cancel`].
    pub fn cancel(&mut self, id: JobId, cap: usize) -> bool {
        let Some(entry) = self.jobs.get_mut(&id) else { return false };
        match entry.state {
            JobState::Queued => {
                entry.cancel.store(true, Ordering::SeqCst);
                self.pending.retain(|j| j.id != id);
                self.finish(id, JobState::Cancelled, cap);
                true
            }
            JobState::Running => {
                entry.cancel.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Attach what a finished job consumed to its record. A no-op once the
    /// record has been pruned or forgotten.
    pub fn attach_usage(&mut self, id: JobId, usage: ResourceUsage) {
        if let Some(entry) = self.jobs.get_mut(&id) {
            entry.usage = Some(usage);
        }
    }

    /// Register a job directly in `Queued` state (test harness entry point;
    /// production submissions go through [`JobQueue::submit`]). Returns the
    /// job's cancellation flag.
    pub fn register(&mut self, id: JobId, name: &str) -> Arc<AtomicBool> {
        let cancel = Arc::new(AtomicBool::new(false));
        self.jobs.insert(
            id,
            JobEntry {
                name: name.to_owned(),
                state: JobState::Queued,
                cancel: Arc::clone(&cancel),
                usage: None,
            },
        );
        cancel
    }

    /// Mark a registered job `Running` (test harness entry point).
    pub fn mark_running(&mut self, id: JobId) {
        if let Some(entry) = self.jobs.get_mut(&id) {
            entry.state = JobState::Running;
        }
    }

    /// Current state of a job, if its record is still retained.
    pub fn state_of(&self, id: JobId) -> Option<JobState> {
        self.jobs.get(&id).map(|e| e.state.clone())
    }

    /// Number of ids recorded as terminal (the retention window length).
    pub fn terminal_count(&self) -> usize {
        self.terminal_order.len()
    }

    /// Mirror the pending-queue length into the depth gauge. Called at
    /// every point `pending` changes length (submit, pickup, queued
    /// cancel, shutdown drain).
    fn sync_depth(&self) {
        if let Some(obs) = &self.obs {
            obs.queue_depth.set(self.pending.len() as i64);
        }
    }
}

struct Shared {
    state: Mutex<QueueState>,
    signal: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        lock_tracked(&self.state, &QUEUE_STATE_SITE)
    }
}

/// The admission-controlled training queue.
pub struct JobQueue {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: QueueConfig,
    obs: Option<Arc<QueueObs>>,
}

impl JobQueue {
    /// Start a queue with `config.max_concurrent` workers, each executing
    /// admitted requests through `runner` inside its own dedicated rayon
    /// pool of `config.training_threads` threads.
    pub fn new(config: QueueConfig, runner: Arc<JobRunner>) -> Self {
        Self::build(config, runner, None)
    }

    /// Like [`new`](Self::new), with every lifecycle transition recorded
    /// into the given metric handles.
    pub fn with_metrics(config: QueueConfig, runner: Arc<JobRunner>, obs: Arc<QueueObs>) -> Self {
        Self::build(config, runner, Some(obs))
    }

    fn build(config: QueueConfig, runner: Arc<JobRunner>, obs: Option<Arc<QueueObs>>) -> Self {
        let state = QueueState { obs: obs.clone(), ..QueueState::default() };
        let shared = Arc::new(Shared { state: Mutex::new(state), signal: Condvar::new() });
        let workers = (0..config.max_concurrent.max(1))
            .map(|i| {
                let shared = shared.clone();
                let runner = runner.clone();
                let threads = config.training_threads.max(1);
                let retain = config.max_terminal_retained;
                kgnet_sync::thread::Builder::new()
                    .name(format!("kgnet-train-{i}"))
                    .spawn(move || worker_loop(&shared, &runner, threads, retain))
                    .expect("spawn training worker")
            })
            .collect();
        JobQueue { shared, workers, config, obs }
    }

    /// Admit and enqueue a training request. Admission enforces the pending
    /// cap and the budget envelope; the returned id is used for status
    /// polling, waiting and cancellation.
    pub fn submit(&self, mut req: TrainRequest) -> Result<JobId, AdmissionError> {
        req.budget = match admit_budget(&req.budget, &self.config.envelope) {
            Ok(budget) => budget,
            Err(e) => {
                if let Some(obs) = &self.obs {
                    obs.jobs_rejected.inc();
                }
                return Err(e);
            }
        };
        let mut state = self.shared.lock();
        if state.shutdown {
            if let Some(obs) = &self.obs {
                obs.jobs_rejected.inc();
            }
            return Err(AdmissionError::ShuttingDown);
        }
        if state.pending.len() >= self.config.max_pending {
            if let Some(obs) = &self.obs {
                obs.jobs_rejected.inc();
            }
            return Err(AdmissionError::QueueFull {
                pending: state.pending.len(),
                limit: self.config.max_pending,
            });
        }
        state.next_id += 1;
        let id = state.next_id;
        let cancel = Arc::new(AtomicBool::new(false));
        state.jobs.insert(
            id,
            JobEntry {
                name: req.name.clone(),
                state: JobState::Queued,
                cancel: cancel.clone(),
                usage: None,
            },
        );
        state.pending.push_back(QueuedJob { id, req, cancel });
        if let Some(obs) = &self.obs {
            obs.jobs_submitted.inc();
        }
        state.sync_depth();
        self.shared.signal.notify_all();
        Ok(id)
    }

    /// Snapshot one job.
    pub fn status(&self, id: JobId) -> Option<JobInfo> {
        let state = self.shared.lock();
        state.jobs.get(&id).map(|e| JobInfo {
            id,
            name: e.name.clone(),
            state: e.state.clone(),
            usage: e.usage,
        })
    }

    /// Snapshot every job still on record, ordered by id. Terminal records
    /// pruned by the retention cap or dropped via [`forget`](Self::forget)
    /// are excluded.
    pub fn jobs(&self) -> Vec<JobInfo> {
        let state = self.shared.lock();
        let mut out: Vec<JobInfo> = state
            .jobs
            .iter()
            .map(|(&id, e)| JobInfo {
                id,
                name: e.name.clone(),
                state: e.state.clone(),
                usage: e.usage,
            })
            .collect();
        out.sort_by_key(|j| j.id);
        out
    }

    /// Jobs currently waiting (not running).
    pub fn pending_len(&self) -> usize {
        self.shared.lock().pending.len()
    }

    /// Submissions the queue would still admit before
    /// [`AdmissionError::QueueFull`]: `max_pending` minus the jobs waiting
    /// right now. Readiness probes treat zero headroom as "not ready".
    pub fn admission_headroom(&self) -> usize {
        self.config.max_pending.saturating_sub(self.shared.lock().pending.len())
    }

    /// Request cancellation. A `Queued` job is cancelled immediately; a
    /// `Running` job is flagged and cancels at the runner's next checkpoint.
    /// Returns `false` when the job is unknown or already terminal; `true`
    /// means only that the flag was delivered — a running job past its last
    /// checkpoint still finishes `Done`, so check `status`/`wait` for the
    /// authoritative terminal state before assuming nothing was registered.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.shared.lock();
        let delivered = state.cancel(id, self.config.max_terminal_retained);
        state.sync_depth();
        if delivered {
            // Wake waiters: a Queued job just went terminal (harmlessly
            // spurious for the Running branch, where only the flag moved).
            self.shared.signal.notify_all();
        }
        delivered
    }

    /// Drop a terminal job's record once its outcome has been observed,
    /// ahead of the automatic retention pruning. Returns `false` when the
    /// id is unknown or the job has not finished yet.
    pub fn forget(&self, id: JobId) -> bool {
        let mut state = self.shared.lock();
        match state.jobs.get(&id) {
            Some(entry) if entry.state.is_terminal() => {
                state.jobs.remove(&id);
                state.terminal_order.retain(|&t| t != id);
                true
            }
            _ => false,
        }
    }

    /// Block until the job reaches a terminal state and return its info.
    /// `None` when the id is unknown: never submitted, or its terminal
    /// record was pruned or forgotten (possibly while this call was
    /// blocked, if enough other jobs finished in between).
    pub fn wait(&self, id: JobId) -> Option<JobInfo> {
        let mut state = self.shared.lock();
        loop {
            let entry = state.jobs.get(&id)?;
            if entry.state.is_terminal() {
                return Some(JobInfo {
                    id,
                    name: entry.name.clone(),
                    state: entry.state.clone(),
                    usage: entry.usage,
                });
            }
            state = self.shared.signal.wait(state);
        }
    }

    /// Stop accepting work, cancel everything still queued, let running jobs
    /// finish, and join the workers. Called automatically on drop.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
            while let Some(job) = state.pending.pop_front() {
                state.finish(job.id, JobState::Cancelled, self.config.max_terminal_retained);
            }
            state.sync_depth();
            self.shared.signal.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The effective budget for a job under the server envelope: reject
/// requests exceeding a finite envelope cap, clamp unlimited requests down
/// to it, keep tighter requests as-is.
fn admit_budget(job: &TaskBudget, envelope: &TaskBudget) -> Result<TaskBudget, AdmissionError> {
    let mut effective = *job;
    match (job.max_memory_bytes, envelope.max_memory_bytes) {
        (Some(want), Some(cap)) if want > cap => {
            return Err(AdmissionError::BudgetExceedsEnvelope(format!(
                "requested {want} B of training memory, envelope allows {cap} B"
            )));
        }
        (None, Some(cap)) => effective.max_memory_bytes = Some(cap),
        _ => {}
    }
    match (job.max_time_s, envelope.max_time_s) {
        (Some(want), Some(cap)) if want > cap => {
            return Err(AdmissionError::BudgetExceedsEnvelope(format!(
                "requested {want} s of training time, envelope allows {cap} s"
            )));
        }
        (None, Some(cap)) => effective.max_time_s = Some(cap),
        _ => {}
    }
    Ok(effective)
}

fn worker_loop(shared: &Shared, runner: &Arc<JobRunner>, training_threads: usize, retain: usize) {
    // One dedicated pool per worker: training fan-out stays inside it and
    // never competes with the global pool serving queries.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(training_threads)
        .build()
        .expect("build training pool");
    loop {
        let (job, obs) = {
            let mut state = shared.lock();
            loop {
                if let Some(job) = state.pending.pop_front() {
                    state.sync_depth();
                    break (job, state.obs.clone());
                }
                if state.shutdown {
                    return;
                }
                state = shared.signal.wait(state);
            }
        };
        {
            let mut state = shared.lock();
            if job.cancel.load(Ordering::SeqCst) {
                state.finish(job.id, JobState::Cancelled, retain);
                shared.signal.notify_all();
                continue;
            }
            let entry = state.jobs.get_mut(&job.id).expect("popped job is registered");
            entry.state = JobState::Running;
            shared.signal.notify_all();
        }
        let picked_up = Instant::now();
        let mem = MemScope::begin();
        let pool_before = pool.stats();
        let wait_before = kgnet_sync::profile::thread_wait_nanos();
        let probe = UsageProbe::default();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| runner(&job.req, &job.cancel, &probe))
        }))
        .unwrap_or_else(|panic| JobOutcome::Failed(panic_message(&panic)));
        let pool_after = pool.stats();
        let usage = ResourceUsage {
            wall_nanos: crate::metrics::nanos_since(picked_up),
            busy_nanos: pool_after.busy_nanos.saturating_sub(pool_before.busy_nanos),
            epochs: probe.epochs(),
            triples_sampled: probe.triples_sampled(),
            peak_mem_delta_bytes: mem.peak_delta() as u64,
            lock_wait_nanos: kgnet_sync::profile::thread_wait_nanos().saturating_sub(wait_before),
            pool_threads: pool_after.n_threads as u64,
            pool_steals: pool_after.steals.saturating_sub(pool_before.steals),
            pool_jobs: pool_after.jobs_executed.saturating_sub(pool_before.jobs_executed),
        };
        let terminal = match outcome {
            JobOutcome::Done(model_uri) => JobState::Done { model_uri },
            JobOutcome::Cancelled => JobState::Cancelled,
            JobOutcome::Failed(error) => JobState::Failed { error },
        };
        if let Some(obs) = &obs {
            obs.job_duration.record(usage.wall_nanos);
            obs.train_pool_busy_nanos.add(usage.busy_nanos);
            obs.train_pool_jobs.add(usage.pool_jobs);
            obs.train_pool_steals.add(usage.pool_steals);
            obs.job_epochs.add(usage.epochs);
            obs.job_triples_sampled.add(usage.triples_sampled);
            obs.job_lock_wait_nanos.add(usage.lock_wait_nanos);
            obs.job_peak_mem.record(usage.peak_mem_delta_bytes);
        }
        let mut state = shared.lock();
        state.attach_usage(job.id, usage);
        state.finish(job.id, terminal, retain);
        shared.signal.notify_all();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("training job panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("training job panicked: {s}")
    } else {
        "training job panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_graph::{GmlTask, NcTask};
    use std::sync::mpsc;
    use std::time::Duration;

    fn request(name: &str) -> TrainRequest {
        TrainRequest::new(
            name,
            GmlTask::NodeClassification(NcTask {
                target_type: "http://x/T".into(),
                label_predicate: "http://x/p".into(),
            }),
        )
    }

    /// A runner remote-controlled by the test: it reports `started` on a
    /// channel and blocks until the matching `proceed` message, then obeys
    /// the cancellation flag exactly like the real training runner.
    fn gated_runner(started: mpsc::Sender<JobId>, proceed: mpsc::Receiver<()>) -> Arc<JobRunner> {
        let proceed = Mutex::new(proceed);
        let counter = std::sync::atomic::AtomicU64::new(0);
        Arc::new(move |_req, cancel, _probe: &UsageProbe| {
            let seq = counter.fetch_add(1, Ordering::SeqCst) + 1;
            started.send(seq).unwrap();
            proceed.lock().recv().unwrap();
            if cancel.load(Ordering::SeqCst) {
                JobOutcome::Cancelled
            } else {
                JobOutcome::Done(format!("http://model/{seq}"))
            }
        })
    }

    #[test]
    fn lifecycle_queued_running_done_with_concurrency_one() {
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel();
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let queue = JobQueue::new(cfg, gated_runner(started_tx, proceed_rx));

        let a = queue.submit(request("a")).unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(queue.status(a).unwrap().state, JobState::Running);

        // One worker: b must wait behind a.
        let b = queue.submit(request("b")).unwrap();
        assert_eq!(queue.status(b).unwrap().state, JobState::Queued);
        assert_eq!(queue.pending_len(), 1);

        proceed_tx.send(()).unwrap();
        let done = queue.wait(a).unwrap();
        assert_eq!(done.state, JobState::Done { model_uri: "http://model/1".into() });

        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        proceed_tx.send(()).unwrap();
        assert!(matches!(queue.wait(b).unwrap().state, JobState::Done { .. }));
    }

    #[test]
    fn interleaving_cancel_wins_when_flagged_before_checkpoint() {
        // Thread 1 (worker) is parked inside the job; thread 2 (test)
        // cancels *before* releasing it, so the runner's checkpoint observes
        // the flag: the only legal terminal state is Cancelled.
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel();
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let queue = JobQueue::new(cfg, gated_runner(started_tx, proceed_rx));

        let id = queue.submit(request("victim")).unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(queue.cancel(id), "cancel of a running job is acknowledged");
        proceed_tx.send(()).unwrap();
        assert_eq!(queue.wait(id).unwrap().state, JobState::Cancelled);
        // A terminal job cannot be cancelled again.
        assert!(!queue.cancel(id));
    }

    #[test]
    fn interleaving_completion_wins_when_cancel_arrives_late() {
        // Thread 1 completes the job before thread 2's cancel: the job must
        // stay Done and the late cancel must report failure.
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel();
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let queue = JobQueue::new(cfg, gated_runner(started_tx, proceed_rx));

        let id = queue.submit(request("survivor")).unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        proceed_tx.send(()).unwrap();
        let done = queue.wait(id).unwrap();
        assert!(matches!(done.state, JobState::Done { .. }));
        assert!(!queue.cancel(id), "late cancel must not rewrite a terminal state");
        assert!(matches!(queue.status(id).unwrap().state, JobState::Done { .. }));
    }

    #[test]
    fn cancelling_a_queued_job_never_runs_it() {
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel();
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let queue = JobQueue::new(cfg, gated_runner(started_tx, proceed_rx));

        let blocker = queue.submit(request("blocker")).unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let doomed = queue.submit(request("doomed")).unwrap();
        assert!(queue.cancel(doomed));
        assert_eq!(queue.status(doomed).unwrap().state, JobState::Cancelled);
        proceed_tx.send(()).unwrap();
        assert!(matches!(queue.wait(blocker).unwrap().state, JobState::Done { .. }));
        // The cancelled job never reached the runner: exactly one start.
        assert!(started_rx.recv_timeout(Duration::from_millis(300)).is_err());
    }

    #[test]
    fn panicking_job_fails_and_worker_survives() {
        let runner: Arc<JobRunner> = Arc::new(|req, _cancel, _probe| {
            if req.name == "bomb" {
                panic!("boom");
            }
            JobOutcome::Done("http://model/ok".into())
        });
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let queue = JobQueue::new(cfg, runner);
        let bomb = queue.submit(request("bomb")).unwrap();
        let ok = queue.submit(request("fine")).unwrap();
        match queue.wait(bomb).unwrap().state {
            // The dedicated pool re-wraps the payload while propagating, so
            // only the panic marker is guaranteed to survive.
            JobState::Failed { error } => assert!(error.contains("panicked"), "error: {error}"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(queue.wait(ok).unwrap().state, JobState::Done { .. }));
    }

    #[test]
    fn admission_rejects_over_budget_and_full_queue() {
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel::<()>();
        let cfg = QueueConfig {
            max_concurrent: 1,
            max_pending: 1,
            envelope: TaskBudget::with_memory(1024),
            ..Default::default()
        };
        let queue = JobQueue::new(cfg, gated_runner(started_tx, proceed_rx));

        // Over-envelope request is refused outright.
        let mut greedy = request("greedy");
        greedy.budget = TaskBudget::with_memory(4096);
        assert!(matches!(queue.submit(greedy), Err(AdmissionError::BudgetExceedsEnvelope(_))));

        // An unlimited request is clamped, not refused.
        let a = queue.submit(request("a")).unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let _b = queue.submit(request("b")).unwrap(); // fills the pending slot
        assert!(matches!(
            queue.submit(request("c")),
            Err(AdmissionError::QueueFull { pending: 1, limit: 1 })
        ));
        // Shutdown with a job still running and one queued: closing the
        // proceed channel makes the parked runner panic (recv error), which
        // the worker reports as Failed; the queued job is cancelled by
        // shutdown and the worker joins cleanly.
        drop(proceed_tx);
        drop(queue);
        let _ = a;
    }

    #[test]
    fn terminal_history_is_bounded_and_forgettable() {
        let runner: Arc<JobRunner> = Arc::new(|_, _, _| JobOutcome::Done("http://model/x".into()));
        let cfg = QueueConfig { max_concurrent: 1, max_terminal_retained: 2, ..Default::default() };
        let queue = JobQueue::new(cfg, runner);
        let ids: Vec<JobId> = (0..4)
            .map(|i| {
                let id = queue.submit(request(&format!("j{i}"))).unwrap();
                queue.wait(id).unwrap();
                id
            })
            .collect();
        // Only the two newest terminal records survive pruning; waiting on
        // a pruned (or never-submitted) id reports unknown instead of
        // blocking or panicking.
        assert!(queue.wait(ids[0]).is_none());
        assert!(queue.wait(9999).is_none());
        assert!(queue.status(ids[0]).is_none());
        assert!(queue.status(ids[1]).is_none());
        assert!(matches!(queue.status(ids[2]).unwrap().state, JobState::Done { .. }));
        assert!(matches!(queue.status(ids[3]).unwrap().state, JobState::Done { .. }));
        // Explicit forget drops a terminal record at once; repeated and
        // already-pruned ids report failure.
        assert!(queue.forget(ids[3]));
        assert!(queue.status(ids[3]).is_none());
        assert!(!queue.forget(ids[3]));
        assert!(!queue.forget(ids[0]));
    }

    #[test]
    fn outcome_counters_survive_pruning_and_forget() {
        let metrics = crate::metrics::ServerMetrics::new();
        let obs = metrics.queue_obs();
        let runner: Arc<JobRunner> = Arc::new(|_, _, _| JobOutcome::Done("http://model/x".into()));
        let cfg = QueueConfig {
            max_concurrent: 1,
            max_terminal_retained: 2,
            envelope: TaskBudget::with_memory(1024),
            ..Default::default()
        };
        let queue = JobQueue::with_metrics(cfg, runner, Arc::clone(&obs));

        let mut greedy = request("greedy");
        greedy.budget = TaskBudget::with_memory(4096);
        assert!(queue.submit(greedy).is_err());
        assert_eq!(obs.jobs_rejected.get(), 1);

        let ids: Vec<JobId> = (0..4)
            .map(|i| {
                let id = queue.submit(request(&format!("j{i}"))).unwrap();
                queue.wait(id).unwrap();
                id
            })
            .collect();
        // Two records pruned by retention, one forgotten explicitly: the
        // monotonic outcome counters keep every job on the books.
        assert!(queue.status(ids[0]).is_none());
        assert!(queue.forget(ids[3]));
        assert_eq!(obs.jobs_submitted.get(), 4);
        assert_eq!(obs.jobs_completed.get(), 4);
        assert_eq!(obs.jobs_failed.get(), 0);
        assert_eq!(obs.jobs_cancelled.get(), 0);
        assert_eq!(obs.queue_depth.get(), 0, "everything drained");
        assert_eq!(obs.job_duration.count(), 4);
    }

    #[test]
    fn finished_jobs_carry_coherent_resource_usage() {
        // The runner reports progress through the probe exactly like the
        // real training runner: sampled triples once, one epoch
        // notification per completed epoch.
        let runner: Arc<JobRunner> = Arc::new(|_req, _cancel, probe| {
            probe.add_triples_sampled(42);
            probe.epoch_completed(0);
            probe.epoch_completed(1);
            JobOutcome::Done("http://model/x".into())
        });
        let cfg = QueueConfig { max_concurrent: 1, training_threads: 2, ..Default::default() };
        let queue = JobQueue::new(cfg, runner);
        let id = queue.submit(request("measured")).unwrap();
        let info = queue.wait(id).unwrap();
        let usage = info.usage.expect("terminal job carries usage");
        assert_eq!(usage.epochs, 2);
        assert_eq!(usage.triples_sampled, 42);
        assert_eq!(usage.pool_threads, 2);
        assert!(usage.wall_nanos > 0, "wall clock advanced");
        // The runner executes inline on the worker thread; only nested
        // fan-out is pool work, so busy time cannot exceed the pool's
        // aggregate capacity over the job's wall time.
        assert!(
            usage.busy_nanos <= usage.wall_nanos.saturating_mul(usage.pool_threads),
            "busy {} must not exceed wall {} x threads {}",
            usage.busy_nanos,
            usage.wall_nanos,
            usage.pool_threads
        );
        // A queued-then-cancelled job never ran: no usage to attribute.
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel();
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let gated = JobQueue::new(cfg, gated_runner(started_tx, proceed_rx));
        let blocker = gated.submit(request("blocker")).unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let doomed = gated.submit(request("doomed")).unwrap();
        assert!(gated.cancel(doomed));
        assert_eq!(gated.status(doomed).unwrap().usage, None);
        proceed_tx.send(()).unwrap();
        assert!(gated.wait(blocker).unwrap().usage.is_some());
    }

    #[test]
    fn finish_never_rewrites_or_double_counts_a_terminal_job() {
        // The cancel/pickup race calls finish twice for one job (cancel
        // sees Queued after the worker popped it; the worker then observes
        // the flag): the second call must be a no-op, or the duplicate id
        // would shrink the retention window by evicting another job's
        // record early.
        let mut state = QueueState::default();
        let cancel = Arc::new(AtomicBool::new(true));
        state
            .jobs
            .insert(1, JobEntry { name: "a".into(), state: JobState::Queued, cancel, usage: None });
        state.finish(1, JobState::Cancelled, 8);
        state.finish(1, JobState::Cancelled, 8);
        assert_eq!(state.terminal_order.len(), 1);
        state.finish(1, JobState::Done { model_uri: "u".into() }, 8);
        assert_eq!(state.jobs[&1].state, JobState::Cancelled, "terminal states are immutable");
        assert_eq!(state.terminal_order.len(), 1);
    }

    #[test]
    fn forget_refuses_live_jobs() {
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel();
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let queue = JobQueue::new(cfg, gated_runner(started_tx, proceed_rx));
        let running = queue.submit(request("running")).unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let queued = queue.submit(request("queued")).unwrap();
        assert!(!queue.forget(running), "running jobs keep their record");
        assert!(!queue.forget(queued), "queued jobs keep their record");
        proceed_tx.send(()).unwrap();
        queue.wait(running).unwrap();
        assert!(queue.forget(running));
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        proceed_tx.send(()).unwrap();
        assert!(matches!(queue.wait(queued).unwrap().state, JobState::Done { .. }));
    }

    #[test]
    fn tighter_job_budget_is_preserved_by_admission() {
        let envelope = TaskBudget {
            max_memory_bytes: Some(1000),
            max_time_s: Some(60.0),
            ..Default::default()
        };
        let tight =
            TaskBudget { max_memory_bytes: Some(10), max_time_s: None, ..Default::default() };
        let admitted = admit_budget(&tight, &envelope).unwrap();
        assert_eq!(admitted.max_memory_bytes, Some(10), "tighter cap kept");
        assert_eq!(admitted.max_time_s, Some(60.0), "unlimited time clamped to envelope");
        let unlimited = admit_budget(&TaskBudget::unlimited(), &envelope).unwrap();
        assert_eq!(unlimited.max_memory_bytes, Some(1000));
    }
}
