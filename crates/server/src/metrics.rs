//! The server's observability surface: one [`Registry`] carrying the full
//! metric catalog, the [`Tracer`] behind span dumps, and the handle bundle
//! the job queue records through.
//!
//! Every metric the server will ever emit is registered eagerly at
//! construction, so a scrape sees the complete catalog (with zero values)
//! from the very first render instead of metrics popping into existence
//! when first touched — the CI `metrics-drift` check depends on that.
//! Hot paths record exclusively through the cloned `Arc` handles below;
//! the registry lock is only taken at registration and render time.

use std::sync::Arc;
use std::time::Instant;

use kgnet_obs::{Counter, Gauge, Histogram, Registry, SpanGuard, Tracer};
use kgnet_sync::atomic::{AtomicU64, Ordering};

/// Every metric the server registers, as `(name, kind)` pairs in
/// registration order. The bench harness's drift check walks this catalog
/// and fails when a rendered exposition is missing any of it.
pub const METRIC_CATALOG: &[(&str, &str)] = &[
    ("kgnet_query_latency_nanos", "histogram"),
    ("kgnet_query_rows", "histogram"),
    ("kgnet_query_triples_scanned_total", "counter"),
    ("kgnet_plan_cache_hits_total", "counter"),
    ("kgnet_plan_cache_misses_total", "counter"),
    ("kgnet_commit_latency_nanos", "histogram"),
    ("kgnet_store_generation", "gauge"),
    ("kgnet_retained_versions", "gauge"),
    ("kgnet_retained_bytes", "gauge"),
    ("kgnet_jobs_submitted_total", "counter"),
    ("kgnet_jobs_rejected_total", "counter"),
    ("kgnet_jobs_completed_total", "counter"),
    ("kgnet_jobs_failed_total", "counter"),
    ("kgnet_jobs_cancelled_total", "counter"),
    ("kgnet_queue_depth", "gauge"),
    ("kgnet_job_duration_nanos", "histogram"),
    ("kgnet_train_epoch_nanos", "histogram"),
    ("kgnet_ann_search_latency_nanos", "histogram"),
    ("kgnet_ann_candidates_total", "counter"),
    ("kgnet_ann_distance_computations_total", "counter"),
    ("kgnet_lock_acquires_total", "counter"),
    ("kgnet_lock_contended_total", "counter"),
    ("kgnet_lock_wait_nanos_total", "counter"),
    ("kgnet_spans_dropped_total", "counter"),
    ("kgnet_slow_queries_total", "counter"),
    ("kgnet_pool_global_threads", "gauge"),
    ("kgnet_pool_global_jobs", "gauge"),
    ("kgnet_pool_global_steals", "gauge"),
    ("kgnet_pool_global_busy_nanos", "gauge"),
    ("kgnet_pool_global_queue_depth", "gauge"),
    ("kgnet_train_pool_busy_nanos_total", "counter"),
    ("kgnet_train_pool_jobs_total", "counter"),
    ("kgnet_train_pool_steals_total", "counter"),
    ("kgnet_job_epochs_total", "counter"),
    ("kgnet_job_triples_sampled_total", "counter"),
    ("kgnet_job_lock_wait_nanos_total", "counter"),
    ("kgnet_job_peak_mem_bytes", "histogram"),
    ("kgnet_http_requests_total", "counter"),
    ("kgnet_http_responses_2xx_total", "counter"),
    ("kgnet_http_responses_3xx_total", "counter"),
    ("kgnet_http_responses_4xx_total", "counter"),
    ("kgnet_http_responses_5xx_total", "counter"),
    ("kgnet_http_request_latency_nanos", "histogram"),
    ("kgnet_http_bytes_in_total", "counter"),
    ("kgnet_http_bytes_out_total", "counter"),
    ("kgnet_http_active_connections", "gauge"),
    ("kgnet_http_rejected_over_limit_total", "counter"),
    ("kgnet_http_parse_errors_total", "counter"),
];

/// Finished spans retained by the server tracer before eviction.
const TRACE_CAPACITY: usize = 4096;

/// The metric handles the job queue records through, split out so the
/// queue can hold them without depending on the whole server surface.
/// The `jobs_*_total` counters are monotonic: pruning or forgetting a
/// terminal job record never takes its outcome back out of them.
pub struct QueueObs {
    /// Jobs admitted by [`crate::JobQueue::submit`].
    pub jobs_submitted: Arc<Counter>,
    /// Submissions refused at admission (full queue, budget, shutdown).
    pub jobs_rejected: Arc<Counter>,
    /// Jobs that reached `Done`.
    pub jobs_completed: Arc<Counter>,
    /// Jobs that reached `Failed`.
    pub jobs_failed: Arc<Counter>,
    /// Jobs that reached `Cancelled`.
    pub jobs_cancelled: Arc<Counter>,
    /// Jobs currently waiting for a worker.
    pub queue_depth: Arc<Gauge>,
    /// Wall time from worker pickup to the terminal transition.
    pub job_duration: Arc<Histogram>,
    /// Busy worker-nanoseconds the dedicated training pools accumulated
    /// while jobs ran (summed across workers and jobs).
    pub train_pool_busy_nanos: Arc<Counter>,
    /// Rayon-level tasks the training pools executed (batch waves, not
    /// queue jobs).
    pub train_pool_jobs: Arc<Counter>,
    /// Successful steals between training-pool workers.
    pub train_pool_steals: Arc<Counter>,
    /// Training epochs completed across all jobs.
    pub job_epochs: Arc<Counter>,
    /// Triples sampled into training subgraphs across all jobs.
    pub job_triples_sampled: Arc<Counter>,
    /// Nanoseconds job worker threads spent waiting on contended facade
    /// locks.
    pub job_lock_wait_nanos: Arc<Counter>,
    /// Peak tracked-memory delta per job, in bytes (exact for serial runs;
    /// concurrent jobs share the process-global tracker).
    pub job_peak_mem: Arc<Histogram>,
}

/// The server-wide metric catalog plus the tracer. One instance per
/// [`crate::KgServer`]; sessions and the queue record through cloned
/// handles.
pub struct ServerMetrics {
    registry: Arc<Registry>,
    tracer: Tracer,
    queue: Arc<QueueObs>,
    /// End-to-end latency of read-session queries.
    pub query_latency: Arc<Histogram>,
    /// Rows returned per read-session query.
    pub query_rows: Arc<Histogram>,
    /// Triples pulled from index scans by read-session queries.
    pub query_triples_scanned: Arc<Counter>,
    /// Shared-plan-cache hits across all read sessions.
    pub plan_cache_hits: Arc<Counter>,
    /// Shared-plan-cache misses (parse + plan compilations).
    pub plan_cache_misses: Arc<Counter>,
    /// Wall time of `WriteSession::commit` publishes.
    pub commit_latency: Arc<Histogram>,
    /// Generation of the published store version.
    pub store_generation: Arc<Gauge>,
    /// MVCC versions currently retained (published + pinned).
    pub retained_versions: Arc<Gauge>,
    /// Approximate index bytes retained across live versions.
    pub retained_bytes: Arc<Gauge>,
    /// Wall time of completed training epochs.
    pub train_epoch: Arc<Histogram>,
    /// Latency of similarity searches served from ANN indexes.
    pub ann_search_latency: Arc<Histogram>,
    /// Candidate vectors considered across all ANN searches.
    pub ann_candidates: Arc<Counter>,
    /// Distance computations spent across all ANN searches.
    pub ann_distance_computations: Arc<Counter>,
    /// Facade-lock acquisitions across every profiled site (process-wide).
    pub lock_acquires: Arc<Counter>,
    /// Contended facade-lock acquisitions (the acquire had to wait).
    pub lock_contended: Arc<Counter>,
    /// Nanoseconds spent waiting on contended facade locks.
    pub lock_wait_nanos: Arc<Counter>,
    /// Trace spans evicted unread from the bounded ring.
    pub spans_dropped: Arc<Counter>,
    /// Queries that exceeded the slow-query threshold.
    pub slow_queries: Arc<Counter>,
    /// Worker threads in the global rayon pool.
    pub pool_threads: Arc<Gauge>,
    /// Jobs the global pool's workers have executed (cumulative).
    pub pool_jobs: Arc<Gauge>,
    /// Successful steals between global-pool workers (cumulative).
    pub pool_steals: Arc<Gauge>,
    /// Busy worker-nanoseconds of the global pool (cumulative).
    pub pool_busy_nanos: Arc<Gauge>,
    /// Jobs waiting in the global pool's injector and deques right now.
    pub pool_queue_depth: Arc<Gauge>,
    /// HTTP requests that reached the router (parse failures excluded).
    pub http_requests: Arc<Counter>,
    /// HTTP responses written, by status class.
    pub http_responses_2xx: Arc<Counter>,
    /// 3xx responses written by the HTTP frontend.
    pub http_responses_3xx: Arc<Counter>,
    /// 4xx responses written by the HTTP frontend.
    pub http_responses_4xx: Arc<Counter>,
    /// 5xx responses written by the HTTP frontend.
    pub http_responses_5xx: Arc<Counter>,
    /// Wall time from a request's first parsed byte to its response flush.
    pub http_request_latency: Arc<Histogram>,
    /// Request bytes (head + body) read off accepted connections.
    pub http_bytes_in: Arc<Counter>,
    /// Response bytes written back, headers included.
    pub http_bytes_out: Arc<Counter>,
    /// Connections currently accepted and not yet closed.
    pub http_active_connections: Arc<Gauge>,
    /// Connections refused because the connection limit was reached.
    pub http_rejected_over_limit: Arc<Counter>,
    /// Requests rejected by the incremental parser (malformed, oversized,
    /// timed out mid-request).
    pub http_parse_errors: Arc<Counter>,
    /// Last harvested totals of the process-wide sources, so
    /// [`refresh_system`](Self::refresh_system) bumps the aggregate
    /// counters by delta instead of re-adding cumulative values.
    harvest: Harvest,
}

/// Last-seen cumulative values of the process-wide instrumentation
/// sources (lock sites, trace ring). Facade atomics so the model checker
/// can compile this crate, `fetch_max` so concurrent harvests never
/// double-count a delta.
#[derive(Default)]
struct Harvest {
    lock_acquires: AtomicU64,
    lock_contended: AtomicU64,
    lock_wait_nanos: AtomicU64,
    spans_dropped: AtomicU64,
}

/// Bump `counter` by how far `current` has advanced past the last
/// harvested value. `fetch_max` ensures each unit of the underlying
/// monotonic source is credited exactly once even under concurrent
/// harvesters.
fn bump_delta(counter: &Counter, last: &AtomicU64, current: u64) {
    let prev = last.fetch_max(current, Ordering::SeqCst);
    if current > prev {
        counter.add(current - prev);
    }
}

/// Metric-name-safe rendering of a lock-site label: ASCII alphanumerics
/// are kept (lowercased), everything else becomes `_`.
fn sanitize_site(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

impl ServerMetrics {
    /// Build the catalog on a fresh registry (one per server, so tests and
    /// embedded instances never share counters).
    pub fn new() -> ServerMetrics {
        let r = Arc::new(Registry::new());
        let queue = Arc::new(QueueObs {
            jobs_submitted: r.counter("kgnet_jobs_submitted_total", "Training jobs admitted"),
            jobs_rejected: r
                .counter("kgnet_jobs_rejected_total", "Training submissions refused at admission"),
            jobs_completed: r.counter("kgnet_jobs_completed_total", "Training jobs finished Done"),
            jobs_failed: r.counter("kgnet_jobs_failed_total", "Training jobs finished Failed"),
            jobs_cancelled: r
                .counter("kgnet_jobs_cancelled_total", "Training jobs finished Cancelled"),
            queue_depth: r.gauge("kgnet_queue_depth", "Training jobs waiting for a worker"),
            job_duration: r.histogram(
                "kgnet_job_duration_nanos",
                "Training job wall time, pickup to terminal",
            ),
            train_pool_busy_nanos: r.counter(
                "kgnet_train_pool_busy_nanos_total",
                "Busy worker-nanos of the dedicated training pools",
            ),
            train_pool_jobs: r.counter(
                "kgnet_train_pool_jobs_total",
                "Rayon tasks executed by the training pools",
            ),
            train_pool_steals: r
                .counter("kgnet_train_pool_steals_total", "Steals between training-pool workers"),
            job_epochs: r
                .counter("kgnet_job_epochs_total", "Training epochs completed across jobs"),
            job_triples_sampled: r.counter(
                "kgnet_job_triples_sampled_total",
                "Triples sampled into training subgraphs",
            ),
            job_lock_wait_nanos: r.counter(
                "kgnet_job_lock_wait_nanos_total",
                "Facade-lock wait nanos on job worker threads",
            ),
            job_peak_mem: r
                .histogram("kgnet_job_peak_mem_bytes", "Peak tracked-memory delta per job"),
        });
        let m = ServerMetrics {
            query_latency: r
                .histogram("kgnet_query_latency_nanos", "End-to-end read-session query latency"),
            query_rows: r.histogram("kgnet_query_rows", "Rows returned per read-session query"),
            query_triples_scanned: r.counter(
                "kgnet_query_triples_scanned_total",
                "Triples pulled from index scans by queries",
            ),
            plan_cache_hits: r.counter("kgnet_plan_cache_hits_total", "Shared plan-cache hits"),
            plan_cache_misses: r
                .counter("kgnet_plan_cache_misses_total", "Shared plan-cache misses"),
            commit_latency: r
                .histogram("kgnet_commit_latency_nanos", "Write-session commit latency"),
            store_generation: r
                .gauge("kgnet_store_generation", "Generation of the published store version"),
            retained_versions: r
                .gauge("kgnet_retained_versions", "MVCC store versions currently retained"),
            retained_bytes: r
                .gauge("kgnet_retained_bytes", "Approximate index bytes retained across versions"),
            train_epoch: r
                .histogram("kgnet_train_epoch_nanos", "Wall time of completed training epochs"),
            ann_search_latency: r
                .histogram("kgnet_ann_search_latency_nanos", "ANN similarity-search latency"),
            ann_candidates: r.counter(
                "kgnet_ann_candidates_total",
                "Candidate vectors considered by ANN searches",
            ),
            ann_distance_computations: r.counter(
                "kgnet_ann_distance_computations_total",
                "Distance computations spent by ANN searches",
            ),
            lock_acquires: r
                .counter("kgnet_lock_acquires_total", "Facade-lock acquisitions across sites"),
            lock_contended: r
                .counter("kgnet_lock_contended_total", "Contended facade-lock acquisitions"),
            lock_wait_nanos: r
                .counter("kgnet_lock_wait_nanos_total", "Nanos waiting on contended facade locks"),
            spans_dropped: r
                .counter("kgnet_spans_dropped_total", "Trace spans evicted unread from the ring"),
            slow_queries: r
                .counter("kgnet_slow_queries_total", "Queries over the slow-query threshold"),
            pool_threads: r.gauge("kgnet_pool_global_threads", "Global rayon pool worker threads"),
            pool_jobs: r.gauge("kgnet_pool_global_jobs", "Jobs executed by the global pool"),
            pool_steals: r.gauge("kgnet_pool_global_steals", "Steals between global-pool workers"),
            pool_busy_nanos: r
                .gauge("kgnet_pool_global_busy_nanos", "Busy worker-nanos of the global pool"),
            pool_queue_depth: r
                .gauge("kgnet_pool_global_queue_depth", "Jobs queued in the global pool"),
            http_requests: r
                .counter("kgnet_http_requests_total", "HTTP requests reaching the router"),
            http_responses_2xx: r
                .counter("kgnet_http_responses_2xx_total", "2xx responses written"),
            http_responses_3xx: r
                .counter("kgnet_http_responses_3xx_total", "3xx responses written"),
            http_responses_4xx: r
                .counter("kgnet_http_responses_4xx_total", "4xx responses written"),
            http_responses_5xx: r
                .counter("kgnet_http_responses_5xx_total", "5xx responses written"),
            http_request_latency: r
                .histogram("kgnet_http_request_latency_nanos", "HTTP request wall time"),
            http_bytes_in: r.counter("kgnet_http_bytes_in_total", "Request bytes read"),
            http_bytes_out: r.counter("kgnet_http_bytes_out_total", "Response bytes written"),
            http_active_connections: r
                .gauge("kgnet_http_active_connections", "Open HTTP connections"),
            http_rejected_over_limit: r.counter(
                "kgnet_http_rejected_over_limit_total",
                "Connections refused over the connection limit",
            ),
            http_parse_errors: r
                .counter("kgnet_http_parse_errors_total", "Requests rejected by the parser"),
            harvest: Harvest::default(),
            tracer: Tracer::new(TRACE_CAPACITY),
            queue,
            registry: r,
        };
        debug_assert_eq!(
            {
                let mut names = m.registry.names();
                names.sort();
                names
            },
            {
                let mut names: Vec<String> =
                    METRIC_CATALOG.iter().map(|(n, _)| (*n).to_owned()).collect();
                names.sort();
                names
            },
            "METRIC_CATALOG out of sync with the registered instruments"
        );
        m
    }

    /// The underlying registry (for embedding extra metrics beside the
    /// server's own catalog).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The queue's handle bundle.
    pub fn queue_obs(&self) -> Arc<QueueObs> {
        Arc::clone(&self.queue)
    }

    /// The server tracer; [`crate::KgServer::trace_dump`] drains it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Open a span on the server tracer.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard<'_> {
        self.tracer.span(name)
    }

    /// Harvest the process-wide instrumentation sources into the registry:
    /// facade-lock site counters (the three `kgnet_lock_*_total` aggregates
    /// bumped by delta, plus one lazily registered
    /// `kgnet_lock_site_<site>_{acquires,contended,wait_nanos}` gauge
    /// triple per site), the global rayon pool's scheduler stats, and the
    /// tracer's dropped-span count. [`crate::KgServer::metrics`] calls this
    /// ahead of every render; the per-site gauges appear on first harvest
    /// rather than at construction because the site list is discovered at
    /// runtime (a site registers itself on its first recorded acquire).
    pub fn refresh_system(&self) {
        let totals = kgnet_sync::sites::totals();
        bump_delta(&self.lock_acquires, &self.harvest.lock_acquires, totals.acquires);
        bump_delta(&self.lock_contended, &self.harvest.lock_contended, totals.contended);
        bump_delta(&self.lock_wait_nanos, &self.harvest.lock_wait_nanos, totals.wait_nanos);
        bump_delta(&self.spans_dropped, &self.harvest.spans_dropped, self.tracer.dropped());
        for site in kgnet_sync::sites::all() {
            let base = sanitize_site(site.name);
            let help = format!("Facade-lock site {}", site.name);
            self.registry
                .gauge(&format!("kgnet_lock_site_{base}_acquires"), &help)
                .set(i64::try_from(site.acquires).unwrap_or(i64::MAX));
            self.registry
                .gauge(&format!("kgnet_lock_site_{base}_contended"), &help)
                .set(i64::try_from(site.contended).unwrap_or(i64::MAX));
            self.registry
                .gauge(&format!("kgnet_lock_site_{base}_wait_nanos"), &help)
                .set(i64::try_from(site.wait_nanos).unwrap_or(i64::MAX));
        }
        let pool = rayon::global_pool_stats();
        self.pool_threads.set(i64::try_from(pool.n_threads).unwrap_or(i64::MAX));
        self.pool_jobs.set(i64::try_from(pool.jobs_executed).unwrap_or(i64::MAX));
        self.pool_steals.set(i64::try_from(pool.steals).unwrap_or(i64::MAX));
        self.pool_busy_nanos.set(i64::try_from(pool.busy_nanos).unwrap_or(i64::MAX));
        let queued = pool.injector_depth.saturating_add(pool.deque_depth);
        self.pool_queue_depth.set(i64::try_from(queued).unwrap_or(i64::MAX));
    }

    /// Render the full catalog in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Render the full catalog as one JSON object.
    pub fn render_json(&self) -> String {
        self.registry.render_json()
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("metrics", &self.registry.names().len())
            .field("tracer", &self.tracer)
            .finish_non_exhaustive()
    }
}

/// Nanoseconds since `t0`, saturating at `u64::MAX`.
pub(crate) fn nanos_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_registered_eagerly_with_declared_kinds() {
        let m = ServerMetrics::new();
        let text = m.render_prometheus();
        for (name, kind) in METRIC_CATALOG {
            assert!(
                text.contains(&format!("# TYPE {name} {kind}\n")),
                "missing or miskinded metric {name} ({kind})"
            );
        }
        assert_eq!(m.registry().names().len(), METRIC_CATALOG.len());
    }

    #[test]
    fn two_servers_do_not_share_counters() {
        let a = ServerMetrics::new();
        let b = ServerMetrics::new();
        a.plan_cache_hits.add(5);
        assert_eq!(b.plan_cache_hits.get(), 0);
    }

    #[test]
    fn refresh_system_registers_per_site_gauges_lazily() {
        let m = ServerMetrics::new();
        // Per-site gauges must never be part of the construction-time
        // catalog: the eager-registration invariant stays intact.
        assert_eq!(m.registry().names().len(), METRIC_CATALOG.len());

        static SITE: kgnet_sync::profile::SyncSite =
            kgnet_sync::profile::SyncSite::new("server.metrics-test.site");
        SITE.record_uncontended();
        SITE.record_contended(1_000);
        m.refresh_system();

        assert!(m.registry().names().len() > METRIC_CATALOG.len());
        let text = m.render_prometheus();
        assert!(text.contains("kgnet_lock_site_server_metrics_test_site_acquires 2"), "{text}");
        assert!(text.contains("kgnet_lock_site_server_metrics_test_site_contended 1"), "{text}");
        assert!(text.contains("kgnet_lock_site_server_metrics_test_site_wait_nanos 1000"));
        // Aggregates cover the recorded site (other sites in this process
        // may add more, never less).
        assert!(m.lock_acquires.get() >= 2);
        assert!(m.lock_contended.get() >= 1);
        assert!(m.lock_wait_nanos.get() >= 1_000);
        // A second refresh is delta-based: the aggregates must not
        // re-count the already harvested acquisitions.
        let before = m.lock_acquires.get();
        m.refresh_system();
        assert_eq!(m.lock_acquires.get(), before);
        // Pool gauges are populated from the global pool.
        assert!(m.pool_threads.get() >= 1);
    }

    #[test]
    fn bump_delta_credits_each_unit_once() {
        let c = Counter::new();
        let last = AtomicU64::new(0);
        bump_delta(&c, &last, 10);
        bump_delta(&c, &last, 10);
        bump_delta(&c, &last, 17);
        // A stale (smaller) observation never subtracts or re-adds.
        bump_delta(&c, &last, 12);
        assert_eq!(c.get(), 17);
    }

    #[test]
    fn sanitize_site_maps_to_metric_charset() {
        assert_eq!(sanitize_site("rdf.writer_gate"), "rdf_writer_gate");
        assert_eq!(sanitize_site("Server.Plan-Cache"), "server_plan_cache");
    }

    #[test]
    fn spans_flow_into_the_server_tracer() {
        let m = ServerMetrics::new();
        {
            let _outer = m.span("outer");
            let _inner = m.span("inner");
        }
        let records = m.tracer().drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].name, "outer");
    }
}
